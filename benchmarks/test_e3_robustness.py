"""Bench E3 — §3: recall under random vs targeted registry failures."""

from repro.experiments.e3_robustness import run


def test_e3_robustness(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(lans=4, services_per_lan=3, n_queries=10,
                    fractions=(0.0, 0.25, 0.5, 1.0),
                    strategies=("random", "targeted")),
        rounds=1, iterations=1,
    )
    record(result)
    assert result.single(arch="uddi", attack="targeted",
                         killed_fraction=1.0)["recall"] == 0.0
    fed = result.single(arch="federated", attack="targeted",
                        killed_fraction=1.0)
    assert fed["recall"] > 0.0


def test_e3_recovery(benchmark, record):
    """Self-healing: the same failures, measured after two renew cycles."""
    result = benchmark.pedantic(
        lambda: run(lans=4, services_per_lan=3, n_queries=10,
                    fractions=(0.5,), strategies=("targeted",),
                    recovery=120.0),
        rounds=1, iterations=1,
    )
    result.experiment = "E3-recovery"
    record(result)
    fed = result.single(arch="federated", killed_fraction=0.5)
    assert fed["recall"] >= 0.9  # orphans republished to survivors
