"""Bench E16 — roaming services across LANs."""

from repro.experiments.e16_mobility import run


def test_e16_mobility(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(move_intervals=(None, 30.0, 10.0), n_queries=10),
        rounds=1, iterations=1,
    )
    record(result)
    rows = result.rows
    assert rows[0]["moves"] == 0
    assert rows[2]["moves"] > rows[1]["moves"] > 0
    # Discovery keeps tracking the roamers.
    assert all(row["recall"] >= 0.9 for row in rows)
    # Mobility costs maintenance bandwidth, monotonically.
    upkeep = [row["maintenance_bytes_per_s"] for row in rows]
    assert upkeep == sorted(upkeep)
