"""Routing smoke — the `make routing-smoke` CI gate (E18).

Replays the canonical skewed-flood scenario at a fixed seed and asserts
the *shape* of adaptive load-aware routing rather than exact numbers:
least-loaded routing beats the historical static order on both p99
discovery latency and in-window goodput at 4x single-registry capacity,
adaptive routing stays same-seed deterministic down to the trace bytes,
and — the behavior contract this PR must not break — the default static
strategy is byte-identical regardless of routing tunables.

The full E18 sweep (the results table under ``benchmarks/results/``)
regenerates in :func:`test_e18_routing`.
"""

import pytest

from repro.core.routing import ROUTING_LEAST_LOADED, ROUTING_STATIC, RoutingConfig
from repro.experiments.e18_routing import run, run_routing_smoke


@pytest.fixture(scope="module")
def smoke():
    return run_routing_smoke(seed=0)


def test_least_loaded_beats_static_on_p99_and_goodput(smoke):
    static = smoke["static_4x"]
    loaded = smoke["least_loaded_4x"]
    # The acceptance bound: under a 4x-capacity skewed flood the
    # load-aware strategy must win on the tail AND on useful work.
    assert loaded["p99_latency"] <= static["p99_latency"]
    assert loaded["goodput_qps"] >= static["goodput_qps"]
    # And the win must come from routing, not luck: the adaptive run
    # rerouted queries away from the seeded hot registry, while static
    # (by definition) never did.
    assert loaded["reroutes"] > 0
    assert static["reroutes"] == 0
    # Static pays for the skew in the protocol's failure currency —
    # BUSY round-trips and tracker failovers — which load-aware routing
    # largely avoids by moving queries *before* they are shed.
    assert static["busy"] > loaded["busy"]
    assert static["failovers"] >= loaded["failovers"]
    # The hot registry sheds far less once queries spread.
    assert loaded["hot_shed"] < static["hot_shed"]


def test_adaptive_routing_is_deterministic(smoke):
    # Same seed, same skewed flood, same adaptive strategy -> identical
    # row, down to every counter.
    assert smoke["least_loaded_4x"] == smoke["least_loaded_4x_repeat"]
    # ...and identical trace bytes on the small capture scenario.
    assert smoke["trace_least_loaded"] == smoke["trace_least_loaded_repeat"]


def test_static_default_is_byte_identical_across_tunables(smoke):
    # The behavior contract: with the static strategy selected, every
    # routing tunable is inert — a run with non-default EWMA/cooldown
    # parameters exports the same trace bytes as the default config.
    assert smoke["trace_default"] == smoke["trace_static_tuned"]


def test_adaptive_routing_actually_changes_behavior(smoke):
    # Guard against a vacuous identity check: the same scenario under
    # least-loaded routing must NOT match the static trace, otherwise
    # the byte-identity assertions above prove nothing.
    assert smoke["trace_least_loaded"] != smoke["trace_default"]


def test_default_config_is_static():
    assert RoutingConfig().strategy == ROUTING_STATIC
    assert ROUTING_LEAST_LOADED != ROUTING_STATIC


def test_e18_routing(benchmark, record):
    result = benchmark.pedantic(lambda: run(), rounds=1, iterations=1)
    record(result)
    peak_p99 = result.metrics["p99_at_peak"]
    peak_goodput = result.metrics["goodput_at_peak"]
    assert peak_p99["least_loaded"] <= peak_p99["static"]
    assert peak_goodput["least_loaded"] >= peak_goodput["static"]
    # Every adaptive strategy at every multiplier sheds less on the hot
    # registry than static does at the same multiplier.
    for row in result.rows:
        if row["strategy"] == ROUTING_STATIC:
            continue
        static_row = result.single(strategy=ROUTING_STATIC, load=row["load"])
        assert row["hot_shed"] <= static_row["hot_shed"]
