"""Bench E12 — §4.6: the registry network as ontology repository."""

from repro.experiments.e12_repository import run


def test_e12_repository(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(n_services=3, n_queries=5),
        rounds=1, iterations=1,
    )
    record(result)
    assert result.single(variant="sync=off")["recall"] == 0.0
    assert result.single(variant="sync=on")["recall"] == 1.0
    assert result.single(variant="thin-client")["recall"] == 1.0
