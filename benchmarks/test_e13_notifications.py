"""Bench E13 — notifications (optional feature) vs polling."""

from repro.experiments.e13_notifications import run


def test_e13_notifications(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(n_arrivals=5, spacing=10.0, poll_periods=(2.0, 10.0)),
        rounds=1, iterations=1,
    )
    record(result)
    push = result.single(mode="subscribe")
    fast_poll = result.single(mode="poll@2s")
    slow_poll = result.single(mode="poll@10s")
    assert push["detected"] == push["of"]
    assert push["mean_detection_s"] < fast_poll["mean_detection_s"]
    assert push["bytes"] < fast_poll["bytes"]
    assert slow_poll["mean_detection_s"] > fast_poll["mean_detection_s"]
