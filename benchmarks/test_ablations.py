"""Bench — ablation sweeps over the deployment knobs DESIGN.md §4 lists."""

from repro.experiments.ablations import run


def test_ablations(benchmark, record):
    result = benchmark.pedantic(lambda: run(), rounds=1, iterations=1)
    record(result)

    lease_rows = [r for r in result.rows if r["sweep"] == "A-lease"]
    renew_rates = [r["renew_bytes_per_s"] for r in lease_rows]
    assert renew_rates == sorted(renew_rates, reverse=True)  # 1/lease scaling

    beacon_rows = [r for r in result.rows if r["sweep"] == "A-beacon"]
    latencies = [r["reattach_latency"] for r in beacon_rows]
    assert latencies == sorted(latencies)  # recovery tracks the interval

    ttl_rows = [r for r in result.rows if r["sweep"] == "A-ttl"]
    recalls = [r["recall"] for r in ttl_rows]
    assert recalls == sorted(recalls)       # reach grows with TTL
    assert recalls[-1] == 1.0               # full chain covered

    zip_rows = [r for r in result.rows if r["sweep"] == "A-zip"]
    publish = [r["publish_msg_bytes"] for r in zip_rows]
    assert publish == sorted(publish, reverse=True)  # bytes track the ratio


def test_narrowband_sweep(benchmark, record):
    from repro.experiments.ablations import narrowband_sweep

    result = benchmark.pedantic(lambda: narrowband_sweep(), rounds=1,
                                iterations=1)
    record(result)
    at_64k = {row["model"]: row["query_latency_ms"]
              for row in result.rows if row["bandwidth_kbps"] == 64.0}
    assert at_64k["semantic"] > 3 * at_64k["uri"]
    assert at_64k["semantic+zip"] < at_64k["semantic"] / 2
