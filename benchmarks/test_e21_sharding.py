"""Bench E21 — sharded, replicated federation.

Gates the PR's acceptance criteria:

* **Load** — per-node store size tracks the ideal ``K*R/S`` at every
  sweep size (max/mean < 1.35 at 100k ads / 16 registries), and the
  scoped partner digest shrinks anti-entropy bytes by roughly the
  sharding factor against the full-store digest.
* **Churn** — one join or leave moves no more than ``K*R/S`` replica
  assignments (1.25x virtual-node slack): consistent hashing's minimal
  movement, measured on the production ring.
* **Availability** — in the 16-registry live scenario, R−1 replicas of
  one shard fail-stop at t=20 and stay down; the steady probe stream
  keeps finding every reachable service (success >= 0.99) because the
  read cover routes around the dead replicas.
* **Self-healing** — the faulted run ends with zero shard-placement and
  zero replica-convergence violations: hinted handoff and per-shard
  anti-entropy re-fill the surviving replicas.
* **Determinism** — two same-seed faulted runs export byte-identical
  trace JSONL.
* **Inertness** — sharding knobs present-but-disabled produce the exact
  trace bytes of a config that never mentions sharding, and every shard
  counter stays zero: the default-off contract.
"""

from repro.experiments.e21_sharding import R, run, run_shard_smoke


def test_e21_sharding(benchmark, record, results_dir):
    result = benchmark.pedantic(lambda: run(seed=0), rounds=1, iterations=1)
    record(result)
    for row in result.where(run="ring-sweep"):
        assert row["max_over_mean"] < 1.35, row
        assert row["join_moved"] <= row["join_bound"], row
        assert row["leave_moved"] <= row["leave_bound"], row
        assert row["digest_ratio"] < 2.2 * R / row["registries"], row
    live = result.single(run="replica-kill")
    assert live["success"] >= 0.99
    assert live["victims"]


def test_e21_smoke_gates():
    smoke = run_shard_smoke(seed=0)

    # Availability through the replica kill, and a clean end state.
    faulted = smoke["faulted"]
    assert len(faulted["victims"]) == R - 1
    assert faulted["success"] >= 0.99
    assert faulted["placement_violations"] == []
    assert faulted["convergence_violations"] == []
    assert faulted["shard_counters"]["quorum_writes"] > 0

    # Load and churn bounds on the analytic 100k-ad sweep.
    for row in smoke["sweep"]:
        assert row["max_over_mean"] < 1.35, row
        assert row["join_moved"] <= row["join_bound"], row
        assert row["leave_moved"] <= row["leave_bound"], row
    # Digest economics at the headline size: scoped partner digests are
    # a small fraction of the full-store digest an unsharded federation
    # would gossip each round.
    largest = smoke["sweep"][-1]
    assert largest["digest_ratio"] < 2.2 * R / largest["registries"]

    # Determinism: same seed, same trace bytes.
    assert faulted["trace"] == smoke["repeat_trace"]
    assert faulted["trace"]

    # Inertness: tuned-but-disabled sharding is byte-identical to a
    # config that never mentions sharding, and touches no shard counter.
    assert smoke["off_trace_tuned"] == smoke["off_trace_plain"]
    assert smoke["off_trace_tuned"]
    assert all(v == 0 for v in smoke["off_counters"].values())
