"""Bench E11 — survivability metrics of the three topologies (MILCOM)."""

from repro.experiments.e11_survivability import run


def test_e11_survivability(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(lans=6, services_per_lan=3,
                    removal_fractions=(0.1, 0.3)),
        rounds=1, iterations=1,
    )
    record(result)
    central = result.single(arch="centralized", attack="targeted")
    distributed = result.single(arch="distributed", attack="targeted")
    assert central["reach@10%"] < distributed["reach@10%"]
    assert distributed["path_length"] > 0
