"""Bench E9 — §4.5/§4.9: registry signalling vs multicast re-bootstrap."""

from repro.experiments.e9_signalling import run


def test_e9_signalling(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(lans=3, services_per_lan=2, n_queries=6),
        rounds=1, iterations=1,
    )
    record(result)
    on = result.single(signalling="on")
    off = result.single(signalling="off")
    assert on["probes_after_crash"] == 0
    assert off["probes_after_crash"] >= 1
    assert on["recall"] >= off["recall"]
