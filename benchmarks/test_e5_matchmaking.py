"""Bench E5 — §4.2: semantic vs syntactic matchmaking quality and cost.

Includes micro-benchmarks for the per-evaluation cost claim ("it can
become more costly to evaluate queries, since reasoning … may be
necessary").
"""

from repro.descriptions.semantic import SemanticModel
from repro.descriptions.uri import UriModel
from repro.experiments.e5_matchmaking import run
from repro.semantics.generator import ProfileGenerator, battlefield_ontology


def test_e5_matchmaking(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(n_profiles=60, n_requests=40,
                    generalize_levels=(0, 1, 2)),
        rounds=1, iterations=1,
    )
    record(result)
    for row in result.where(model="semantic"):
        assert row["f1"] == 1.0
    for row in result.where(model="uri", generalize=2):
        assert row["f1"] < 0.5


def _matcher_workload(model):
    ontology = battlefield_ontology()
    generator = ProfileGenerator(ontology, seed=0)
    profiles = generator.profiles(50)
    descriptions = [model.describe(p, "svc://x") for p in profiles]
    query = model.query_from(generator.request_for(profiles[0], generalize=1))

    def evaluate_all():
        return sum(1 for d in descriptions if model.evaluate(d, query).matched)

    return evaluate_all


def test_e5_cost_semantic_evaluation(benchmark):
    model = SemanticModel(battlefield_ontology())
    benchmark(_matcher_workload(model))


def test_e5_cost_uri_evaluation(benchmark):
    benchmark(_matcher_workload(UriModel()))
