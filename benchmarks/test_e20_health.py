"""Bench E20 — runtime health under injected faults.

Gates the PR's acceptance criteria:

* **Precision** — the no-fault control run raises zero alarms and
  captures zero dumps: the health layer never cries wolf on a healthy
  deployment.
* **Recall** — every injected fault class raises at least one matched
  alarm inside its detection window: ``shed-step`` under the overload
  flood, ``antientropy-stale`` for the crashed registry (plus a crash
  dump), ``lease-expiry-spike`` when the partition starves replica
  lease refreshes — and every alarm carries a flight-recorder dump.
* **Determinism** — two same-seed faulted runs produce byte-identical
  alarm timelines and dump JSONL.
* **Inertness** — two health-*disabled* runs of the same faulted
  scenario export byte-identical trace JSONL and raise nothing: the
  default-off configuration changes no behavior.
"""

from repro.experiments.e20_health import PHASES, run, run_health_smoke


def test_e20_health(benchmark, record, results_dir):
    result = benchmark.pedantic(
        lambda: run(seed=0, report_dir=str(results_dir)),
        rounds=1, iterations=1,
    )
    record(result)
    clean = result.single(run="clean")
    assert clean["alarms"] == 0 and clean["dumps"] == 0
    assert clean["detected"]
    assert clean["probe_success"] == 1.0
    for name, _start, _end, _expected in PHASES:
        assert result.single(run="faulted", phase=name)["detected"], name
    overall = result.single(run="faulted", phase="overall")
    assert overall["detected"] and overall["dumps"] > 0
    report = results_dir / "health_e20_seed0.json"
    assert report.exists()


def test_e20_smoke_gates():
    smoke = run_health_smoke(seed=0)

    # Precision: the clean run is silent.
    assert smoke["clean_alarms"] == []
    assert smoke["clean_dumps"] == []

    # Recall: each fault class trips its matched detector in-window.
    for phase, expected in smoke["expected"].items():
        observed = smoke["phase_alarms"][phase]
        assert any(alarm in observed for alarm in expected), (phase, observed)

    # Every alarm captured a dump, and the crash captured its own.
    reasons = [reason for reason, _node, _t, _records in smoke["faulted_dumps"]]
    assert "crash" in reasons
    assert len(smoke["faulted_dumps"]) == len(smoke["faulted_alarms"]) + 1
    assert all(records > 0 for _r, _n, _t, records in smoke["faulted_dumps"])

    # Determinism: same seed, same alarms, same dump bytes.
    assert smoke["faulted_alarm_json"] == smoke["repeat_alarm_json"]
    assert smoke["faulted_dump_jsonl"] == smoke["repeat_dump_jsonl"]
    assert smoke["faulted_dump_jsonl"]

    # Inertness: health off raises nothing and changes no trace byte.
    assert smoke["off_alarms"] == []
    assert smoke["off_trace_a"] == smoke["off_trace_b"]
    assert smoke["off_trace_a"]
