"""Perf benchmark: indexed vs. linear semantic matchmaking (tier-2 smoke).

Measures queries/sec and matchmaker evaluations-per-query at store sizes
{100, 1k, 10k} for the index-pruned and linear-scan query paths, writes
the perf trajectory to ``BENCH_matchmaking.json`` at the repo root, and
enforces the regression floor: the indexed path must never evaluate more
descriptions than the linear path, and at 10k advertisements selective
requests must see at least a 5x evaluation reduction.

A second, indexed-only sweep scales the store to 100k advertisements and
writes ``BENCH_query_100k.json`` (build seconds, queries/sec, and
evaluations-per-query per size). Its CI gates are **count-based only** —
deterministic across machines: the fitted log-log growth exponent of
evaluations-per-query vs. store size must stay below 1.0 (sub-linear),
and the absolute evaluations-per-query at 100k must stay under a hard
cap. Wall-clock numbers are recorded for the trajectory but never gated.

Run directly (no pytest-benchmark dependency)::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_matchmaking.py -q
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import pytest

from repro.descriptions.base import ModelRegistry
from repro.descriptions.semantic import SemanticModel
from repro.registry.advertisements import Advertisement
from repro.registry.matching import QueryEvaluator
from repro.registry.store import AdvertisementStore
from repro.semantics.generator import OntologyGenerator, ProfileGenerator

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_matchmaking.json"
BENCH_100K_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_query_100k.json"

STORE_SIZES = (100, 1_000, 10_000)
QUERIES_PER_SIZE = 25
MAX_RESULTS = 5
SEED = 42
#: Required evaluations-per-query reduction at the largest store size.
MIN_REDUCTION_AT_10K = 5.0

#: Indexed-only scaling sweep: the linear baseline is hopeless at 100k
#: (tens of seconds per measurement), and correctness equivalence is
#: already pinned at <=10k above and in the property suite.
SCALING_SIZES = (1_000, 10_000, 100_000)
#: Sub-linear gate: fitted slope of log(evaluations/query) over
#: log(store size) across the scaling sweep.
MAX_EVALUATIONS_GROWTH_EXPONENT = 1.0
#: Absolute ceiling on evaluations-per-query at 100k advertisements
#: (a linear scan would be 100_000).
MAX_EVALUATIONS_PER_QUERY_AT_100K = 5_000.0


def _advertise(profile, index: int) -> Advertisement:
    return Advertisement(
        ad_id=f"ad-{index:06d}",
        service_node=f"svc-node-{index}",
        service_name=profile.service_name,
        endpoint=f"svc://{profile.service_name}",
        model_id="semantic",
        description=profile,
    )


def _measure(ontology, profiles, requests, *, use_indexes: bool) -> dict:
    """One query-path measurement over a freshly built store."""
    store = AdvertisementStore()
    model = SemanticModel(ontology)
    evaluator = QueryEvaluator(store, ModelRegistry([model]), use_indexes=use_indexes)
    build_start = time.perf_counter()
    for i, profile in enumerate(profiles):
        store.put(_advertise(profile, i))
    build_seconds = time.perf_counter() - build_start

    # Warm-up pass: populate degree/ancestor caches so both paths are
    # measured steady-state (the production-relevant regime).
    for request in requests:
        evaluator.evaluate("semantic", request, max_results=MAX_RESULTS)

    evals_before = model.matchmaker.evaluations
    scored_before = evaluator.descriptions_evaluated
    hits_digest = []
    query_start = time.perf_counter()
    for request in requests:
        hits = evaluator.evaluate("semantic", request, max_results=MAX_RESULTS)
        hits_digest.append(tuple(
            (h.advertisement.ad_id, h.degree, round(h.score, 12)) for h in hits
        ))
    elapsed = time.perf_counter() - query_start
    n = len(requests)
    return {
        "build_seconds": round(build_seconds, 6),
        "queries_per_sec": round(n / elapsed, 2) if elapsed > 0 else float("inf"),
        "evaluations_per_query": (model.matchmaker.evaluations - evals_before) / n,
        "descriptions_scored_per_query": (evaluator.descriptions_evaluated - scored_before) / n,
        "_hits_digest": hits_digest,
    }


@pytest.fixture(scope="module")
def bench_results():
    ontology = OntologyGenerator(SEED).random_ontology()
    generator = ProfileGenerator(ontology, seed=SEED)
    rows = []
    for size in STORE_SIZES:
        profiles = generator.profiles(size)
        # Selective anchored requests (generalize one step): the common
        # query-response-control shape the paper's registries serve.
        requests = [
            generator.request_for(
                profiles[(i * 37) % size], generalize=1, max_results=MAX_RESULTS
            )
            for i in range(QUERIES_PER_SIZE)
        ]
        linear = _measure(ontology, profiles, requests, use_indexes=False)
        indexed = _measure(ontology, profiles, requests, use_indexes=True)
        assert indexed.pop("_hits_digest") == linear.pop("_hits_digest"), \
            f"indexed and linear hits diverged at store size {size}"
        reduction = (
            linear["evaluations_per_query"] / indexed["evaluations_per_query"]
            if indexed["evaluations_per_query"] else float("inf")
        )
        rows.append({
            "store_size": size,
            "queries": QUERIES_PER_SIZE,
            "linear": linear,
            "indexed": indexed,
            "evaluation_reduction": round(reduction, 2),
            "query_speedup": round(
                indexed["queries_per_sec"] / linear["queries_per_sec"], 2
            ),
        })
    return rows


def test_perf_trajectory_written(bench_results, results_dir):
    payload = {
        "benchmark": "indexed vs linear semantic matchmaking",
        "config": {
            "seed": SEED,
            "queries_per_size": QUERIES_PER_SIZE,
            "max_results": MAX_RESULTS,
            "ontology": "OntologyGenerator(42).random_ontology()  # 40+60 classes",
            "requests": "anchored, generalize=1 (selective)",
        },
        "sizes": bench_results,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [
        f"{'store':>7} {'lin q/s':>9} {'idx q/s':>9} {'lin ev/q':>9} "
        f"{'idx ev/q':>9} {'reduction':>10}"
    ]
    for row in bench_results:
        lines.append(
            f"{row['store_size']:>7} {row['linear']['queries_per_sec']:>9} "
            f"{row['indexed']['queries_per_sec']:>9} "
            f"{row['linear']['evaluations_per_query']:>9.1f} "
            f"{row['indexed']['evaluations_per_query']:>9.1f} "
            f"{row['evaluation_reduction']:>9.1f}x"
        )
    table = "\n".join(lines)
    (results_dir / "perf_matchmaking.txt").write_text(table + "\n")
    print()
    print(table)


@pytest.fixture(scope="module")
def scaling_results():
    """Indexed-path-only sweep to 100k advertisements."""
    ontology = OntologyGenerator(SEED).random_ontology()
    generator = ProfileGenerator(ontology, seed=SEED)
    rows = []
    profiles: list = []
    for size in SCALING_SIZES:
        # Grow the profile set incrementally so the 100k row reuses the
        # 10k row's profiles (same generator stream as a fresh call).
        profiles.extend(
            generator.random_profile(i) for i in range(len(profiles), size)
        )
        requests = [
            generator.request_for(
                profiles[(i * 37) % size], generalize=1, max_results=MAX_RESULTS
            )
            for i in range(QUERIES_PER_SIZE)
        ]
        indexed = _measure(ontology, profiles, requests, use_indexes=True)
        indexed.pop("_hits_digest")
        rows.append({"store_size": size, "queries": QUERIES_PER_SIZE, **indexed})
    return rows


def _fitted_exponent(rows) -> float:
    """Least-squares slope of log(evaluations/query) vs. log(store size)."""
    points = [
        (math.log(row["store_size"]), math.log(max(row["evaluations_per_query"], 1e-9)))
        for row in rows
    ]
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    return sum((x - mean_x) * (y - mean_y) for x, y in points) / sum(
        (x - mean_x) ** 2 for x, _ in points
    )


def test_query_100k_trajectory_written(scaling_results, results_dir):
    exponent = _fitted_exponent(scaling_results)
    payload = {
        "benchmark": "indexed semantic query path, scaling to 100k ads",
        "config": {
            "seed": SEED,
            "queries_per_size": QUERIES_PER_SIZE,
            "max_results": MAX_RESULTS,
            "ontology": "OntologyGenerator(42).random_ontology()  # 40+60 classes",
            "requests": "anchored, generalize=1 (selective)",
            "gates": "count-based only: growth exponent + absolute cap",
        },
        "sizes": scaling_results,
        "fitted_evaluations_exponent": round(exponent, 4),
        "max_allowed_exponent": MAX_EVALUATIONS_GROWTH_EXPONENT,
    }
    BENCH_100K_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [
        f"{'store':>7} {'build s':>9} {'idx q/s':>10} {'idx ev/q':>9} "
        f"{'scored/q':>9}"
    ]
    for row in scaling_results:
        lines.append(
            f"{row['store_size']:>7} {row['build_seconds']:>9.3f} "
            f"{row['queries_per_sec']:>10} {row['evaluations_per_query']:>9.1f} "
            f"{row['descriptions_scored_per_query']:>9.1f}"
        )
    lines.append(f"fitted evaluations-growth exponent: {exponent:.3f} "
                 f"(gate: < {MAX_EVALUATIONS_GROWTH_EXPONENT})")
    table = "\n".join(lines)
    (results_dir / "perf_query_100k.txt").write_text(table + "\n")
    print()
    print(table)


def test_scaling_is_sublinear_through_100k(scaling_results):
    """ISSUE gate: evaluations/query must grow sub-linearly in store size."""
    largest = scaling_results[-1]
    assert largest["store_size"] == 100_000
    exponent = _fitted_exponent(scaling_results)
    assert exponent < MAX_EVALUATIONS_GROWTH_EXPONENT, scaling_results
    assert largest["evaluations_per_query"] \
        <= MAX_EVALUATIONS_PER_QUERY_AT_100K, largest


def test_indexed_never_scores_more_than_linear(bench_results):
    """Regression floor: pruning must only ever shrink the candidate set."""
    for row in bench_results:
        assert row["indexed"]["descriptions_scored_per_query"] \
            <= row["linear"]["descriptions_scored_per_query"], row
        # The linear path scores the whole store, every query.
        assert row["linear"]["descriptions_scored_per_query"] == row["store_size"]


def test_reduction_floor_at_10k(bench_results):
    """ISSUE acceptance: >= 5x fewer matchmaker evaluations at 10k ads."""
    largest = bench_results[-1]
    assert largest["store_size"] == 10_000
    assert largest["evaluation_reduction"] >= MIN_REDUCTION_AT_10K, largest


def test_indexed_throughput_wins_at_10k(bench_results):
    """Pruning must translate into wall-clock wins where scans are costly."""
    largest = bench_results[-1]
    assert largest["indexed"]["queries_per_sec"] \
        > largest["linear"]["queries_per_sec"], largest
