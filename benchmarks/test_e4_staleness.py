"""Bench E4 — §4.8: stale advertisements under churn, leasing vs none."""

from repro.experiments.e4_staleness import run


def test_e4_staleness(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(n_services=10, churn_rates=(0.05, 0.2),
                    churn_window=120.0, n_queries=10),
        rounds=1, iterations=1,
    )
    record(result)
    for rate in (0.05, 0.2):
        assert result.single(arch="leasing", churn_per_s=rate)[
            "registry_staleness"] == 0.0
        assert result.single(arch="uddi", churn_per_s=rate)[
            "registry_staleness"] > 0.0
