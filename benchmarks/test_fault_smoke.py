"""Fault smoke — the `make fault-smoke` CI gate.

Replays the canonical E3/E11 fault scenarios (crash + partition + loss
burst mid-workload) and the anti-entropy convergence sweep, asserting the
recovery properties the self-healing machinery promises: bookkeeping
invariants clean, replicated stores reconverged within bounded rounds,
and recovery counters actually moving.
"""

from repro.experiments.e11_survivability import (
    run_fault_scenario as e11_fault_scenario,
)
from repro.experiments.e3_robustness import (
    run_convergence_scenario,
    run_degraded_latency,
    run_fault_scenario as e3_fault_scenario,
)


def test_e3_fault_scenario_recovers():
    row = e3_fault_scenario()
    assert row["faults"]["crash"] == 1
    assert row["faults"]["heal"] == 1
    assert row["completed"] == row["queries"]
    assert row["alive_registries"] == 3
    assert isinstance(row["recoveries"], dict)


def test_e11_fault_scenario_reconnects():
    row = e11_fault_scenario()
    assert row["faults"]["partition"] == 1
    assert row["connected_during"] < row["connected_before"]
    assert row["connected_after"] >= row["connected_before"]
    assert isinstance(row["recoveries"], dict)


def test_convergence_within_bounded_rounds():
    row = run_convergence_scenario(max_rounds=6)
    assert row["diverged_after_heal"]
    assert row["rounds_to_converge"] <= row["max_rounds"]
    assert row["antientropy"]["ads_applied"] >= 1
    assert row["recoveries"].get("antientropy-round", 0) >= 1


def test_breaker_keeps_degraded_latency_low():
    row = run_degraded_latency()
    assert row["after_open_mean"] < row["aggregation_timeout"]
    assert row["recoveries"].get("breaker-open", 0) >= 1
