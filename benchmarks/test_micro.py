"""Micro-benchmarks for the hot paths under the experiments.

Not tied to a paper figure; these guard the substrate's throughput so the
experiment runtimes stay tractable (and quantify the reasoning-cost story
behind E5 at the primitive level).
"""

from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.semantics.generator import ProfileGenerator, battlefield_ontology
from repro.semantics.matchmaker import Matchmaker
from repro.semantics.reasoner import Reasoner


def test_simulator_event_throughput(benchmark):
    def run_events():
        sim = Simulator(seed=0)
        counter = [0]

        def tick():
            counter[0] += 1

        for i in range(10_000):
            sim.schedule(i * 0.001, tick)
        sim.run()
        return counter[0]

    assert benchmark(run_events) == 10_000


def test_multicast_delivery_throughput(benchmark):
    def run_multicasts():
        sim = Simulator(seed=0)
        net = Network(sim)
        net.add_lan("lan")
        nodes = [net.add_node(Node(f"n{i}"), "lan") for i in range(20)]
        for _ in range(100):
            nodes[0].multicast("beacon", payload="b" * 64)
        sim.run(until=10.0)
        return net.stats.messages_delivered

    assert benchmark(run_multicasts) == 100 * 19


def test_reasoner_subsumption_warm_cache(benchmark):
    reasoner = Reasoner(battlefield_ontology())
    classes = reasoner.ontology.classes()
    pairs = [(a, b) for a in classes[:20] for b in classes[:20]]

    def check_all():
        return sum(1 for a, b in pairs if reasoner.subsumes(a, b))

    check_all()  # warm
    benchmark(check_all)


def test_matchmaker_rank_100_profiles(benchmark):
    ontology = battlefield_ontology()
    generator = ProfileGenerator(ontology, seed=0)
    matchmaker = Matchmaker(Reasoner(ontology))
    profiles = generator.profiles(100)
    request = generator.request_for(profiles[0], generalize=1)
    benchmark(lambda: matchmaker.rank(profiles, request, limit=10))
