"""Bench E15 — §4.9: registry-role negotiation via standby promotion."""

from repro.experiments.e15_standby import run


def test_e15_standby(benchmark, record):
    result = benchmark.pedantic(lambda: run(n_queries=30), rounds=1,
                                iterations=1)
    record(result)
    without = result.single(standby="no")
    with_standby = result.single(standby="yes")
    assert with_standby["registry_mode_frac"] > without["registry_mode_frac"]
    assert with_standby["promotions"] >= 1
    assert with_standby["served"] == with_standby["queries"]
