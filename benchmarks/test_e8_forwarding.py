"""Bench E8 — §4.9: flooding vs expanding ring vs random walk."""

from repro.experiments.e8_forwarding import run


def test_e8_forwarding(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(lans=6, services_per_lan=2, n_queries=12),
        rounds=1, iterations=1,
    )
    record(result)
    flood = result.single(strategy="flooding")
    ring = result.single(strategy="expanding-ring")
    walk = result.single(strategy="random-walk")
    assert flood["recall"] == 1.0
    assert flood["forward_bytes"] >= ring["forward_bytes"]
    assert walk["query_bytes_per_q"] < flood["query_bytes_per_q"]


def test_e8_forwarding_with_response_control(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(lans=6, services_per_lan=2, n_queries=12, max_results=3),
        rounds=1, iterations=1,
    )
    result.experiment = "E8-capped"
    record(result)
    for row in result.rows:
        assert row["completed"] == 12
