"""Bench E7 — Figures 2/4: WAN federation, cooperation, gateway election."""

from repro.experiments.e7_wan_federation import run


def test_e7_wan_federation(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(lans=4, services_per_lan=3, n_queries=10),
        rounds=1, iterations=1,
    )
    record(result)
    assert result.single(study="seeding", variant="none")["recall"] < 0.6
    assert result.single(study="seeding", variant="ring")["recall"] == 1.0
    forward = result.single(study="cooperation", variant="forward-queries")
    replicate = result.single(study="cooperation", variant="replicate-ads")
    assert replicate["query_bytes_per_q"] < forward["query_bytes_per_q"]
    elected = result.single(study="gateway", variant="elected")
    flooded = result.single(study="gateway", variant="all-forward")
    assert elected["wan_bytes"] < flooded["wan_bytes"]
