"""Bench E1 — Figure 1/§3: topology comparison (bandwidth, load, recall)."""

from repro.experiments.e1_topology import run


def test_e1_topology(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(service_counts=(4, 8, 16), n_clients=3, n_queries=12),
        rounds=1, iterations=1,
    )
    record(result)
    # The paper's §3 shape must hold at bench scale too.
    for services in (4, 8, 16):
        rows = {r["arch"]: r for r in result.where(services=services)}
        assert rows["decentralized"]["upkeep_bytes_per_s"] < \
            rows["distributed"]["upkeep_bytes_per_s"]
        assert rows["decentralized"]["mean_responses"] >= 1.0
        assert rows["centralized"]["mean_responses"] == 1.0
