"""Bench E6 — Figure 3: LAN discovery modes across a registry outage."""

from repro.experiments.e6_lan_fallback import run


def test_e6_lan_fallback(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(n_services=4, queries_per_phase=8),
        rounds=1, iterations=1,
    )
    record(result)
    assert result.single(phase="registry")["via"] == "registry"
    outage = result.single(phase="outage")
    assert outage["via"] == "fallback"
    assert outage["recall"] == 1.0
    assert result.single(phase="recovered")["via"] == "registry"
