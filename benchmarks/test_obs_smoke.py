"""Observability smoke — the `make obs-smoke` CI gate.

Asserts the two contracts the obs layer promises:

* **Determinism** — two same-seed traced runs of the canonical E7 WAN
  scenario export byte-identical trace JSONL (the
  ``repro.obs.tracing`` module docstring's contract, checked end-to-end
  through the full protocol stack rather than on the recorder alone);
* **Coverage** — the experiment tables carry interpolated latency
  percentiles (E1/E5/E7 acceptance columns) and the metrics registry
  sees WAN forwarding hops.
"""

from __future__ import annotations

import json

from repro.obs.capture import run_traced


def test_same_seed_trace_exports_are_byte_identical(results_dir):
    first = run_traced("e7", seed=0)
    second = run_traced("e7", seed=0)
    blob = first.recorder.export_jsonl()
    assert blob == second.recorder.export_jsonl()
    assert blob  # non-vacuous: the run actually traced something
    (results_dir / "obs_trace_e7.jsonl").write_text(blob + "\n")


def test_trace_covers_the_query_path_end_to_end():
    run = run_traced("e7", seed=0)
    assert run.sample_trace is not None
    names = {span.name for span in run.recorder.spans_of(run.sample_trace)}
    assert {"client.query", "client.attempt", "registry.query"} <= names
    assert "registry.fanout" in names or "registry.forward" in names
    rendered = run.recorder.render(run.sample_trace)
    assert "client.query" in rendered
    # Every record parses back as JSON (the export really is JSONL).
    for line in run.recorder.export_jsonl().splitlines():
        json.loads(line)


def test_wan_forwarding_hops_reach_the_histogram():
    run = run_traced("e7", seed=0)
    hops = run.metrics.histogram("hops.query-forward")
    assert hops.count >= 1
    assert hops.vmin >= 1  # a forwarded query always crossed >= 1 hop


def test_e2e_latency_histogram_is_sane():
    run = run_traced("e7", seed=0)
    summary = run.metrics.histogram("query.e2e_latency").summary()
    assert summary["count"] >= 1
    assert summary["min"] <= summary["p50"] <= summary["p95"]
    assert summary["p95"] <= summary["p99"] <= summary["max"]


def test_e1_rows_carry_latency_percentiles():
    from repro.experiments.e1_topology import run

    result = run(service_counts=(4,), n_clients=2, n_queries=6,
                 maintenance_window=10.0, seed=0)
    for row in result.rows:
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(row)
    assert result.metrics  # per-arch summaries attached


def test_e5_rows_carry_latency_percentiles():
    from repro.experiments.e5_matchmaking import run

    result = run(n_profiles=20, n_requests=10, generalize_levels=(1,),
                 seed=0)
    for row in result.rows:
        assert {"p50_us", "p95_us", "p99_us"} <= set(row)
    assert result.metrics


def test_e7_rows_carry_latency_percentiles():
    from repro.experiments.e7_wan_federation import run

    result = run(lans=3, services_per_lan=2, n_queries=6, seed=0)
    for row in result.rows:
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(row)
    assert result.metrics
