"""Bench E2 — §3.1: response implosion vs registry response control."""

from repro.experiments.e2_response_control import run


def test_e2_response_control(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(n_services=16, caps=(None, 1, 3, 5)),
        rounds=1, iterations=1,
    )
    record(result)
    for cap in (1, 3, 5):
        dec = result.single(arch="decentralized", max_results=cap)
        reg = result.single(arch="registry", max_results=cap)
        assert dec["response_messages"] == 16   # implosion, cap or not
        assert reg["response_messages"] == 1
        assert reg["hits_returned"] == cap
