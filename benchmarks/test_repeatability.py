"""Bench — shape robustness across seeds.

Single-seed experiment shapes could be flukes; this bench re-runs the two
most variance-sensitive experiments (E4 staleness, E8 forwarding) across
several seeds, aggregates mean ± sd, and asserts the paper's shapes on the
*means*.
"""

from repro.experiments.common import repeat_runs
from repro.experiments.e4_staleness import run as e4
from repro.experiments.e8_forwarding import run as e8

SEEDS = (0, 1, 2)


def test_e4_shape_across_seeds(benchmark, record):
    result = benchmark.pedantic(
        lambda: repeat_runs(
            e4, seeds=SEEDS, group_by=["arch", "churn_per_s"],
            n_services=8, churn_rates=(0.1,), churn_window=80.0, n_queries=6,
        ),
        rounds=1, iterations=1,
    )
    record(result)
    leased = result.single(arch="leasing", churn_per_s=0.1)
    uddi = result.single(arch="uddi", churn_per_s=0.1)
    assert leased["registry_staleness"] == 0.0
    assert uddi["registry_staleness"] > 0.0
    assert leased["n"] == len(SEEDS)


def test_e8_shape_across_seeds(benchmark, record):
    result = benchmark.pedantic(
        lambda: repeat_runs(
            e8, seeds=SEEDS, group_by=["strategy"],
            lans=4, services_per_lan=2, n_queries=8,
        ),
        rounds=1, iterations=1,
    )
    record(result)
    flood = result.single(strategy="flooding")
    walk = result.single(strategy="random-walk")
    informed = result.single(strategy="informed")
    assert flood["recall"] == 1.0                    # deterministic coverage
    assert walk["recall"] < 1.0                      # misses on average
    assert walk["forward_bytes"] < flood["forward_bytes"]
    assert informed["recall"] > walk["recall"]