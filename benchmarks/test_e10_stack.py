"""Bench E10 — Figure 5: description models on one generic stack."""

from repro.experiments.e10_stack import run


def test_e10_stack(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(n_services=6, n_queries=6),
        rounds=1, iterations=1,
    )
    record(result)
    uri = result.single(model="uri")
    semantic = result.single(model="semantic")
    zipped = result.single(model="semantic+zip")
    assert semantic["ad_payload_bytes"] > 10 * uri["ad_payload_bytes"]
    assert zipped["publish_msg_bytes"] < semantic["publish_msg_bytes"]
    assert semantic["recall_proxy"] == 1.0
