"""Bench E19 — durable crash recovery: WAL + snapshot vs memory-only.

Gates the PR's acceptance criteria:

* **Recovery** — after a whole-LAN blackout the durable registries
  restore >= 99% of non-expired advertisements from local replay alone,
  with zero re-publish traffic, and reach full query success at least
  5x faster than the memory-only baseline.
* **Disk faults** — torn tail writes and record corruption never crash
  recovery: the damage is counted and anti-entropy repairs the loss
  back to full replica convergence.
* **Determinism** — two same-seed runs produce identical result rows.
* **Inertness** — the default (durability off) configuration attaches
  no disks at all, so the memory-only baseline really is untouched.
"""

from repro.experiments.e19_recovery import _build, run, run_disk_faults


def test_e19_recovery(benchmark, record):
    result = benchmark.pedantic(lambda: run(seed=0), rounds=1, iterations=1)
    record(result)
    memory = result.single(durability="memory-only")
    durable = result.single(durability="wal+snapshot")
    assert durable["recovered_frac"] >= 0.99
    assert durable["recovery_violations"] == 0
    assert durable["republishes"] == 0
    assert durable["replayed"] > 0
    assert memory["republishes"] > 0
    assert memory["ttfs"] >= 5 * durable["ttfs"]


def test_e19_disk_faults(results_dir):
    result = run_disk_faults(seed=0)
    (results_dir / "e19_faults.txt").write_text(result.table() + "\n")
    row = result.single()
    assert row["faults"] == 6  # 2x (crash, disk fault, restart)
    assert row["torn_writes"] == 1 and row["corruptions"] == 1
    assert row["corrupt_skipped"] >= 1
    assert row["recoveries"] == 2
    assert row["hits_after"] == row["expected"]
    assert row["convergence_violations"] == 0


def test_e19_same_seed_rows_are_identical():
    assert run(seed=3).rows == run(seed=3).rows


def test_default_config_attaches_no_disks():
    system, _client = _build(False, seed=0)
    system.run(until=20.0)
    assert system.network.disks == {}
    assert all(r.durability.counters()["wal_appends"] == 0
               for r in system.registries)
