"""Overload smoke — the `make overload-smoke` CI gate (E17, §3.1).

Replays the canonical query-flood scenario at a fixed seed and asserts
the *shape* of overload protection rather than exact numbers: the
priority queue keeps lease renewals alive through saturation while the
shed-less FIFO baseline collapses, BUSY back-pressure carries a
retry-after hint that grows monotonically with queue depth, goodput
plateaus instead of cliffing, and the whole flood is deterministic.

The full E17 sweep (the results table under ``benchmarks/results/``)
regenerates in :func:`test_e17_overload`.
"""

import pytest

from repro.core.admission import AdmissionPolicy
from repro.experiments.e17_overload import (
    run,
    run_overload_smoke,
    shedding_policy,
)


@pytest.fixture(scope="module")
def smoke():
    return run_overload_smoke(seed=0)


def test_shedding_protects_renewals_through_saturation(smoke):
    shedding = smoke["shedding_4x"]
    baseline = smoke["baseline_4x"]
    # The acceptance bound: priority shedding sustains lease-renew
    # survival at 4x capacity; the FIFO baseline queues renews behind
    # the flood until leases expire and the store collapses.
    assert shedding["renew_survival"] >= 0.9
    assert baseline["renew_survival"] < 0.5
    # Renews outrank queries, so renew survival must dominate query
    # survival inside the flood window.
    assert shedding["renew_survival"] >= shedding["window_survival"]
    # Shedding actually happened, and every shed was answered with
    # exactly one BUSY instead of a silent drop.
    assert shedding["shed"] > 0
    assert shedding["busy"] == shedding["shed"]
    assert baseline["shed"] == 0 and baseline["busy"] == 0


def test_busy_retry_after_monotone_in_queue_depth(smoke):
    pairs = smoke["shed_pairs"]
    assert pairs, "the 4x flood must shed work"
    base = smoke["retry_after_base"]
    for depth, retry_after in pairs:
        assert retry_after == pytest.approx(base * (1 + depth))
    # Monotone: a deeper queue never promises a *shorter* retry-after.
    by_depth = sorted(pairs)
    for (d1, r1), (d2, r2) in zip(by_depth, by_depth[1:]):
        assert d1 > d2 or r1 <= r2
    # The unbounded baseline never sheds, hence never sends BUSY.
    assert smoke["baseline_shed_pairs"] == []


def test_goodput_plateaus_and_queue_stays_bounded(smoke):
    shedding_1x = smoke["shedding_1x"]
    shedding_4x = smoke["shedding_4x"]
    # Goodput at 4x saturation stays on a plateau (no cliff): at least
    # 60% of the at-capacity goodput.
    assert shedding_4x["goodput_qps"] >= 0.6 * shedding_1x["goodput_qps"]
    # The bounded queue is actually bounded: depth never exceeds the
    # configured limit plus the one ticket in service.
    limit = shedding_policy().queue_limit
    assert shedding_4x["max_depth"] <= limit + 1
    # Degraded mode engaged: the saturated registry served local-only
    # answers instead of fanning out over the WAN.
    assert shedding_4x["degraded"] > 0


def test_overload_smoke_is_deterministic(smoke):
    again = run_overload_smoke(seed=0)
    assert again == smoke


def test_policy_defaults_are_inert():
    # The default config must not change behavior for every other
    # experiment: no cost -> admission control stands aside entirely.
    assert AdmissionPolicy().active() is False
    assert shedding_policy().active() is True


def test_e17_overload(benchmark, record):
    result = benchmark.pedantic(
        lambda: run(multipliers=(0.5, 1.0, 4.0)), rounds=1, iterations=1
    )
    record(result)
    peak = result.metrics["renew_survival_at_peak"]
    assert peak["shedding"] >= 0.9
    assert peak["baseline"] < 0.5
    shedding_rows = result.where(mode="shedding")
    assert all(row["renew_survival"] >= 0.9 for row in shedding_rows)
