"""Bench E14 — §4.3: mediator selection (two-step discovery)."""

from repro.experiments.e14_mediation import run


def test_e14_mediation(benchmark, record):
    result = benchmark.pedantic(lambda: run(), rounds=1, iterations=1)
    record(result)
    assert result.single(mode="plain")["satisfied"] == 0
    mediated = result.single(mode="mediated")
    assert mediated["satisfied"] == mediated["needs"]
    assert mediated["mean_extra_queries"] >= 2.0
    assert result.single(mode="mediated-no-translators")["satisfied"] == 0
