"""Shared benchmark plumbing.

Every benchmark regenerates one experiment (DESIGN.md §3) and writes its
result table to ``benchmarks/results/<experiment>.txt`` so the regenerated
"figures" survive pytest's output capture. Run with ``-s`` to also see the
tables inline.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Persist an ExperimentResult table and echo it to stdout."""

    def _record(result) -> None:
        text = result.table()
        (results_dir / f"{result.experiment.lower()}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
