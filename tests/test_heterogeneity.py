"""Heterogeneous deployments: mixed description models on one stack.

"Primitive devices using only a lightweight URI-matching service discovery
… can use the same service discovery infrastructure as the more
heavyweight ones based on semantic service descriptions."
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


@pytest.fixture
def mixed_system():
    system = DiscoverySystem(seed=61, ontology=battlefield_ontology())
    system.add_lan("lan-0")
    system.add_registry("lan-0")  # supports all three models
    # A primitive device: URI-only advertisement.
    system.add_service("lan-0", ServiceProfile.build(
        "legacy-radar", "ncw:RadarService", outputs=["ncw:AirTrack"]),
        model_ids=("uri",))
    # A heavyweight device: semantic-only advertisement.
    system.add_service("lan-0", ServiceProfile.build(
        "smart-radar", "ncw:AirSurveillanceRadarService",
        outputs=["ncw:AirTrack"]),
        model_ids=("semantic",))
    system.run(until=2.0)
    return system


def test_registry_stores_both_models(mixed_system):
    registry = mixed_system.registries[0]
    assert len(registry.store.of_model("uri")) == 1
    assert len(registry.store.of_model("semantic")) == 1


def test_uri_client_sees_only_exact_uri_matches(mixed_system):
    client = mixed_system.add_client("lan-0", model_ids=("uri",))
    mixed_system.run_for(1.0)
    exact = mixed_system.discover(
        client, ServiceRequest.build("ncw:RadarService"), model_id="uri")
    assert exact.service_names() == ["legacy-radar"]
    general = mixed_system.discover(
        client, ServiceRequest.build("ncw:SensorService"), model_id="uri")
    assert general.hits == []  # no subsumption in the URI model


def test_semantic_client_sees_only_semantic_ads(mixed_system):
    client = mixed_system.add_client("lan-0", model_ids=("semantic",))
    mixed_system.run_for(1.0)
    call = mixed_system.discover(
        client, ServiceRequest.build("ncw:SensorService"))
    # The legacy device's capability is invisible to semantic queries —
    # the per-model trade the layered stack makes explicit.
    assert call.service_names() == ["smart-radar"]


def test_dual_model_client_can_query_both(mixed_system):
    client = mixed_system.add_client("lan-0")
    mixed_system.run_for(1.0)
    names = set()
    for model_id, category in (("uri", "ncw:RadarService"),
                               ("semantic", "ncw:SensorService")):
        call = mixed_system.discover(
            client, ServiceRequest.build(category), model_id=model_id)
        names |= set(call.service_names())
    assert names == {"legacy-radar", "smart-radar"}


def test_uri_only_registry_discards_semantic_publishes():
    system = DiscoverySystem(seed=62, ontology=battlefield_ontology())
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0", model_ids=("uri",))
    system.add_service("lan-0", ServiceProfile.build(
        "smart", "ncw:RadarService", outputs=["ncw:AirTrack"]),
        model_ids=("semantic",))
    system.run(until=2.0)
    assert len(registry.store) == 0
    assert registry.models.discarded_payloads >= 1


# -- property-based: whole-system determinism -----------------------------------

@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_full_system_deterministic_for_any_seed(seed):
    """The same seed must always produce byte-identical traffic and results."""

    def run_once():
        config = DiscoveryConfig(beacon_interval=2.0, lease_duration=6.0,
                                 purge_interval=1.0)
        system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                                 config=config)
        for i in range(2):
            system.add_lan(f"lan-{i}")
            system.add_registry(f"lan-{i}")
        system.federate_chain()
        system.add_service("lan-1", ServiceProfile.build(
            "radar", "ncw:RadarService", outputs=["ncw:AirTrack"]))
        client = system.add_client("lan-0")
        system.run(until=4.0)
        call = system.discover(client, ServiceRequest.build("ncw:SensorService"))
        return (system.traffic(), tuple(call.service_names()),
                round(call.latency, 9))

    assert run_once() == run_once()


@settings(max_examples=15, deadline=None)
@given(
    text=st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                               whitelist_characters=":-_ "),
        max_size=60,
    )
)
def test_tokenize_properties(text):
    """Tokens are lowercase, non-empty, and tokenizing is idempotent."""
    from repro.descriptions.template import tokenize

    tokens = tokenize(text)
    assert all(t == t.lower() and t for t in tokens)
    retokenized = frozenset().union(*(tokenize(t) for t in tokens)) \
        if tokens else frozenset()
    assert retokenized == tokens
