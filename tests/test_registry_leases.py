"""Unit tests for the lease manager — the §4.8 aliveness mechanism."""

from __future__ import annotations

import pytest

from repro.errors import LeaseError
from repro.registry.leases import DEFAULT_LEASE_DURATION, Lease, LeaseManager


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def leases(clock):
    return LeaseManager(clock, default_duration=10.0)


def test_grant_sets_expiry(leases, clock):
    lease = leases.grant("ad-1")
    assert lease.expires_at == 10.0
    assert not lease.expired(clock())
    assert len(leases) == 1


def test_grant_custom_duration(leases):
    lease = leases.grant("ad-1", duration=3.0)
    assert lease.expires_at == 3.0


def test_grant_rejects_nonpositive_duration(leases):
    with pytest.raises(LeaseError):
        leases.grant("ad-1", duration=0.0)


def test_default_duration_validation():
    with pytest.raises(LeaseError):
        LeaseManager(lambda: 0.0, default_duration=-1.0)


def test_regrant_replaces_old_lease(leases):
    first = leases.grant("ad-1")
    second = leases.grant("ad-1")
    assert len(leases) == 1
    assert leases.lease_for_ad("ad-1") is second
    with pytest.raises(LeaseError):
        leases.renew(first.lease_id)


def test_renew_extends_from_now(leases, clock):
    lease = leases.grant("ad-1")
    clock.now = 7.0
    leases.renew(lease.lease_id)
    assert lease.expires_at == 17.0
    assert lease.renewals == 1


def test_renew_unknown_raises(leases):
    with pytest.raises(LeaseError):
        leases.renew("lease-nonexistent")


def test_renew_after_expiry_raises_and_drops(leases, clock):
    lease = leases.grant("ad-1")
    clock.now = 11.0
    with pytest.raises(LeaseError):
        leases.renew(lease.lease_id)
    # The lapsed lease is gone even before a purge sweep.
    assert leases.lease_for_ad("ad-1") is None


def test_expired_ads_returns_and_removes(leases, clock):
    leases.grant("ad-1", duration=5.0)
    leases.grant("ad-2", duration=20.0)
    clock.now = 6.0
    assert leases.expired_ads() == ["ad-1"]
    assert leases.expired_ads() == []  # already purged
    assert len(leases) == 1
    assert leases.expired_total == 1


def test_never_serves_expired_entry(leases, clock):
    """Invariant: an expired lease is indistinguishable from no lease."""
    lease = leases.grant("ad-1", duration=5.0)
    clock.now = 5.0  # boundary is inclusive expiry
    assert lease.expired(clock())
    with pytest.raises(LeaseError):
        leases.renew(lease.lease_id)


def test_cancel_for_ad(leases):
    leases.grant("ad-1")
    leases.cancel_for_ad("ad-1")
    assert leases.lease_for_ad("ad-1") is None
    assert len(leases) == 0
    leases.cancel_for_ad("ad-unknown")  # no-op, no raise


def test_renewal_keeps_ad_alive_across_sweeps(leases, clock):
    lease = leases.grant("ad-1", duration=5.0)
    for step in range(1, 6):
        clock.now = step * 4.0
        leases.renew(lease.lease_id)
        assert leases.expired_ads() == []
    assert lease.renewals == 5


def test_clear(leases):
    leases.grant("ad-1")
    leases.clear()
    assert len(leases) == 0


def test_default_module_duration_positive():
    assert DEFAULT_LEASE_DURATION > 0


def test_republish_retires_replaced_lease(leases):
    old = leases.grant("ad-1")
    new = leases.grant("ad-1")
    assert new.lease_id != old.lease_id
    # The replaced lease is fully retired: renewing it raises like any
    # unknown lease, and the new lease is untouched by the attempt.
    with pytest.raises(LeaseError):
        leases.renew(old.lease_id)
    assert leases.lease_for_ad("ad-1") is new
    leases.renew(new.lease_id)
    assert len(leases) == 1
    assert leases._by_ad == {"ad-1": new.lease_id}
    assert list(leases._by_lease) == [new.lease_id]


def test_republish_then_cancel_leaves_no_residue(leases):
    leases.grant("ad-1")
    leases.grant("ad-1")
    leases.cancel_for_ad("ad-1")
    assert len(leases) == 0
    assert leases._by_ad == {}
    assert leases._by_lease == {}
