"""Durable crash recovery: WAL codec, storage ports, replay, fencing.

Covers the durability subsystem end to end: record framing (CRC skip,
torn-tail stop), the SimDisk/FileDisk storage-port parity, snapshot
compaction, restart replay (original lease ids, expired-lease drop,
tombstone restoration), incarnation fencing, disk-fault survival, the
default-off inertness guarantee, and the crash→restart timer-leak
regression.
"""

from __future__ import annotations

import pytest

from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.durability import (
    DurabilityConfig,
    FileDisk,
    INCARNATION_HEADER,
    SNAPSHOT_FILE,
    WAL_FILE,
    frame_record,
    scan_records,
)
from repro.core.invariants import assert_recovery, check_recovery, store_snapshot
from repro.core.system import DiscoverySystem
from repro.errors import ReproError
from repro.netsim.disk import SimDisk
from repro.netsim.messages import Envelope
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name):
    return ServiceProfile.build(name, "ncw:RadarService",
                                outputs=["ncw:AirTrack"])


def _durable_config(**overrides):
    defaults = dict(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=2.0, lease_duration=30.0, purge_interval=2.0,
        query_timeout=2.0, aggregation_timeout=0.3,
        durability=DurabilityConfig(enabled=True),
    )
    defaults.update(overrides)
    return DiscoveryConfig(**defaults)


def _single_lan(config, *, seed=7, services=2):
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    for i in range(services):
        system.add_service("lan-0", _radar(f"radar-{i}"))
    client = system.add_client("lan-0")
    return system, registry, client


# -- record framing --------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        data = b"".join(frame_record(("tag", i)) for i in range(5))
        records, corrupt, torn = scan_records(data)
        assert records == [("tag", i) for i in range(5)]
        assert corrupt == 0 and not torn

    def test_empty_and_none(self):
        assert scan_records(b"") == ([], 0, False)
        assert scan_records(None) == ([], 0, False)

    def test_crc_failure_skips_one_record(self):
        good = frame_record(("a", 1))
        bad = bytearray(frame_record(("b", 2)))
        bad[-1] ^= 0xFF  # flip a payload byte: CRC mismatch
        tail = frame_record(("c", 3))
        records, corrupt, torn = scan_records(good + bytes(bad) + tail)
        assert records == [("a", 1), ("c", 3)]
        assert corrupt == 1 and not torn

    def test_torn_tail_stops_scan(self):
        good = frame_record(("a", 1))
        partial = frame_record(("b", 2))[:-3]
        records, corrupt, torn = scan_records(good + partial)
        assert records == [("a", 1)]
        assert torn

    def test_destroyed_length_prefix_is_corrupt_tail(self):
        good = frame_record(("a", 1))
        garbage = b"\xff" * 12  # length prefix far beyond _MAX_RECORD
        records, corrupt, torn = scan_records(good + garbage)
        assert records == [("a", 1)]
        assert corrupt == 1 and torn


# -- storage ports ---------------------------------------------------------


def _port_contract(disk):
    assert disk.read("wal") is None
    disk.append("wal", b"abc")
    disk.append("wal", b"def")
    assert disk.read("wal") == b"abcdef"
    assert disk.size("wal") == 6
    disk.write("wal", b"xyz")
    assert disk.read("wal") == b"xyz"
    disk.write("snap", b"s")
    assert disk.names() == ["snap", "wal"]
    disk.delete("snap")
    assert disk.names() == ["wal"]
    disk.delete("missing")  # no-op


class TestSimDisk:
    def test_port_contract(self):
        _port_contract(SimDisk())

    def test_tear_tail_chops_half_the_last_write(self):
        disk = SimDisk()
        disk.append("wal", b"A" * 10)
        disk.append("wal", b"B" * 8)
        cut = disk.tear_tail("wal")
        assert cut == 4  # half of the 8-byte append, rounded up
        assert disk.read("wal") == b"A" * 10 + b"B" * 4
        assert disk.torn_writes == 1

    def test_tear_tail_empty_is_noop(self):
        disk = SimDisk()
        assert disk.tear_tail("wal") == 0
        disk.write("wal", b"")
        assert disk.tear_tail("wal") == 0
        assert disk.torn_writes == 0

    def test_corrupt_flips_middle_byte(self):
        disk = SimDisk()
        disk.write("wal", b"\x00" * 9)
        assert disk.corrupt("wal")
        assert disk.read("wal") == b"\x00" * 4 + b"\xff" + b"\x00" * 4
        assert disk.corruptions == 1

    def test_corrupt_empty_is_noop(self):
        disk = SimDisk()
        assert not disk.corrupt("wal")
        assert disk.corruptions == 0


class TestFileDisk:
    def test_port_contract(self, tmp_path):
        _port_contract(FileDisk(str(tmp_path / "node")))

    def test_fault_parity_with_simdisk(self, tmp_path):
        sim, real = SimDisk(), FileDisk(str(tmp_path / "node"))
        for disk in (sim, real):
            disk.append("wal", b"A" * 10)
            disk.append("wal", b"B" * 8)
            disk.tear_tail("wal")
            disk.corrupt("wal")
        assert sim.read("wal") == real.read("wal")

    def test_write_leaves_no_tmp_files(self, tmp_path):
        disk = FileDisk(str(tmp_path / "node"))
        disk.write("snap", b"state")
        assert disk.names() == ["snap"]


# -- configuration ---------------------------------------------------------


class TestDurabilityConfig:
    def test_default_is_disabled(self):
        assert not DurabilityConfig().enabled
        assert not DiscoveryConfig().durability.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [{"snapshot_interval": 0.0}, {"snapshot_interval": -1.0},
         {"max_wal_records": 0}],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ReproError):
            DurabilityConfig(**kwargs)

    def test_tombstone_cap_validated(self):
        with pytest.raises(ReproError):
            DiscoveryConfig(antientropy_tombstone_cap=0)


# -- default-off inertness -------------------------------------------------


class TestInertDefault:
    def test_no_disk_attached_and_no_headers(self, ontology):
        system = DiscoverySystem(seed=7, ontology=ontology)
        system.add_lan("lan-0")
        registry = system.add_registry("lan-0")
        system.add_service("lan-0", _radar("radar-0"))
        system.run(until=5.0)
        assert system.network.disks == {}
        assert registry.durability.counters()["wal_appends"] == 0
        env = registry.send(registry.node_id, "ad-forward")
        assert INCARNATION_HEADER not in env.headers


# -- recovery end to end ---------------------------------------------------


class TestRecovery:
    def test_replay_restores_store_and_original_lease_ids(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=5.0)
        pre = store_snapshot(registry)
        assert pre
        lease_ids = {ad_id: registry.leases.lease_for_ad(ad_id).lease_id
                     for ad_id in pre}
        registry.crash()
        system.run_for(1.0)
        registry.restart()
        assert_recovery(registry, pre)
        for ad_id, lease_id in lease_ids.items():
            restored = registry.leases.lease_for_ad(ad_id)
            assert restored is not None and restored.lease_id == lease_id
        assert registry.durability.incarnation == 1

    def test_renewals_succeed_after_recovery_without_republish(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=5.0)
        registry.crash()
        system.run_for(1.0)
        registry.restart()
        before = system.network.stats.snapshot()
        # Two renew intervals (30 * 0.4 = 12s each): every service renews
        # its original lease; none is NACKed into republishing.
        system.run_for(25.0)
        delta = system.network.stats.delta_since(before)
        assert delta["by_type"].get("publish", {}).get("count", 0) == 0
        assert delta["by_type"].get("renew-nack", {}).get("count", 0) == 0
        call = system.discover(client, REQUEST, timeout=3.0)
        assert len(call.hits) > 0

    def test_leases_expired_during_outage_are_dropped(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=5.0)
        pre = store_snapshot(registry)
        registry.crash()
        for service in system.services:
            service.crash()  # nobody renews during the long outage
        system.run_for(2.0 * system.config.lease_duration)
        registry.restart()
        assert len(registry.store) == 0
        assert len(registry.leases) == 0
        # The invariant agrees: every pre-crash lease expired by now.
        assert check_recovery(registry, pre) == []

    def test_remove_tombstone_survives_restart(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=5.0)
        victim = system.services[0]
        ad_ids = [ad.ad_id for ad in registry.store.all()
                  if ad.service_node == victim.node_id]
        assert ad_ids
        victim.deregister()
        system.run_for(1.0)
        assert all(ad_id in registry.antientropy.tombstones
                   for ad_id in ad_ids)
        registry.crash()
        system.run_for(1.0)
        registry.restart()
        for ad_id in ad_ids:
            assert ad_id in registry.antientropy.tombstones
            assert ad_id not in registry.store

    def test_snapshot_compaction_truncates_wal(self):
        config = _durable_config(
            durability=DurabilityConfig(enabled=True, max_wal_records=5),
        )
        system, registry, client = _single_lan(config, services=3)
        system.run(until=20.0)
        disk = system.network.disk(registry.node_id)
        assert registry.durability.snapshots >= 1
        records, _corrupt, _torn = scan_records(disk.read(WAL_FILE))
        assert len(records) < 5
        snap_records, _c, _t = scan_records(disk.read(SNAPSHOT_FILE))
        assert snap_records and snap_records[0][0] == "snapshot"

    def test_recovery_replays_snapshot_plus_wal(self):
        config = _durable_config(
            durability=DurabilityConfig(enabled=True, max_wal_records=4),
        )
        system, registry, client = _single_lan(config, services=3)
        system.run(until=20.0)
        pre = store_snapshot(registry)
        registry.crash()
        system.run_for(0.5)
        registry.restart()
        assert_recovery(registry, pre)

    def test_same_seed_runs_are_identical(self):
        # Ad/lease ids come from a process-global counter, so two runs in
        # one process differ in ids; everything else — event timing, WAL
        # record mix, replay outcome — must be bit-identical.
        def one():
            system, registry, client = _single_lan(_durable_config())
            system.run(until=5.0)
            registry.crash()
            system.run_for(1.0)
            registry.restart()
            system.run_for(5.0)
            disk = system.network.disk(registry.node_id)
            wal, _c, _t = scan_records(disk.read(WAL_FILE))
            snap, _c2, _t2 = scan_records(disk.read(SNAPSHOT_FILE))
            return (
                sorted((ad.service_name, ad.version)
                       for ad in registry.store.all()),
                [record[0] for record in wal],
                len(snap[0][1]) if snap else 0,
                registry.durability.counters(),
                system.sim.now,
            )

        assert one() == one()

    def test_file_disk_backend_recovers(self, tmp_path):
        config = _durable_config(
            durability=DurabilityConfig(enabled=True,
                                        directory=str(tmp_path)),
        )
        system, registry, client = _single_lan(config)
        system.run(until=5.0)
        pre = store_snapshot(registry)
        assert pre
        registry.crash()
        system.run_for(1.0)
        registry.restart()
        assert_recovery(registry, pre)
        assert system.network.disks == {}  # the real-file port was used


# -- disk-fault survival ---------------------------------------------------


class TestDiskFaults:
    def test_torn_wal_tail_never_crashes_recovery(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=5.0)
        registry.crash()
        disk = system.network.disk(registry.node_id)
        assert disk.tear_tail(WAL_FILE) > 0
        system.run_for(0.5)
        registry.restart()  # must not raise
        system.run_for(2.0)
        call = system.discover(client, REQUEST, timeout=3.0)
        assert call.completed

    def test_corrupt_snapshot_skipped_and_counted(self):
        config = _durable_config(
            durability=DurabilityConfig(enabled=True, max_wal_records=4),
        )
        system, registry, client = _single_lan(config, services=3)
        system.run(until=20.0)
        registry.crash()
        disk = system.network.disk(registry.node_id)
        assert disk.corrupt(SNAPSHOT_FILE)
        system.run_for(0.5)
        registry.restart()  # must not raise
        assert registry.durability.corrupt_skipped >= 1


# -- incarnation fencing ---------------------------------------------------


class TestFencing:
    def test_send_stamps_fenced_types_only(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=2.0)
        stamped = registry.send(registry.node_id, "ad-forward")
        assert stamped.headers[INCARNATION_HEADER] == 0
        plain = registry.send(registry.node_id, "publish")
        assert INCARNATION_HEADER not in plain.headers

    def test_stale_incarnation_dropped_and_counted(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=2.0)

        def envelope(stamp):
            return Envelope(msg_type="ad-forward", src="peer-x",
                            dst=registry.node_id,
                            headers={INCARNATION_HEADER: stamp})

        assert not registry._fence_stale(envelope(3))  # learn epoch 3
        assert registry._fence_stale(envelope(2))      # stale: fenced
        assert registry.durability.fenced == 1
        assert not registry._fence_stale(envelope(3))
        assert not registry._fence_stale(envelope(4))
        unstamped = Envelope(msg_type="ad-forward", src="peer-x",
                             dst=registry.node_id)
        assert not registry._fence_stale(unstamped)

    def test_restart_bumps_advertised_incarnation(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=2.0)
        assert registry.send(registry.node_id, "ad-forward") \
            .headers[INCARNATION_HEADER] == 0
        registry.crash()
        system.run_for(0.5)
        registry.restart()
        assert registry.send(registry.node_id, "ad-forward") \
            .headers[INCARNATION_HEADER] == 1


# -- timer-leak regression (crash → restart cycles) ------------------------


class TestTimerLeaks:
    def test_registry_periodics_stable_across_restart_cycles(self):
        system, registry, client = _single_lan(_durable_config())
        system.run(until=3.0)
        baseline = len(registry._periodics)
        assert baseline > 0
        for _ in range(3):
            registry.crash()
            system.run_for(0.5)
            registry.restart()
            system.run_for(0.5)
            assert len(registry._periodics) == baseline
            assert len(registry._timers) <= baseline + len(system.services)

    def test_standby_periodics_stable_across_promote_demote(self):
        config = DiscoveryConfig(
            beacon_interval=1.0, lease_duration=10.0, purge_interval=1.0,
            query_timeout=2.0, aggregation_timeout=0.3,
        )
        system = DiscoverySystem(seed=7, ontology=battlefield_ontology(),
                                 config=config)
        system.add_lan("lan-0")
        primary = system.add_registry("lan-0")
        standby = system.add_standby_registry("lan-0", lan_target=1)
        system.run(until=3.0)
        dormant_baseline = len(standby._periodics)
        for _ in range(3):
            primary.crash()
            deadline = system.sim.now + 20.0
            while system.sim.now < deadline and not standby.active:
                system.run_for(0.5)
            assert standby.active
            promoted = len(standby._periodics)
            primary.restart()
            deadline = system.sim.now + 20.0
            while system.sim.now < deadline and standby.active:
                system.run_for(0.5)
            assert not standby.active
            assert len(standby._periodics) == dormant_baseline
        # Promotion count stayed flat too: each cycle armed the same set.
        assert promoted >= dormant_baseline
