"""Tests for the runtime health layer: recorders, SLOs, watchdogs.

Covers the instruments in isolation (flight-recorder ring semantics,
time-weighted gauge means, Prometheus rendering, SLO burn-rate edges,
each watchdog's rising-edge behavior) and the wired monitor on a real
deployment: inert-by-default, crash dumps, and same-seed byte-identity
of dumps — including across a crash/restart with durability enabled.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.durability import DurabilityConfig
from repro.core.forwarding import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.core.system import DiscoverySystem
from repro.errors import ReproError
from repro.obs.health import (
    DEFAULT_OBJECTIVES,
    FlightRecorder,
    HealthConfig,
    HealthMonitor,
)
from repro.obs.metrics import Gauge, MetricsRegistry
from repro.obs.slo import SLOObjective, SLOTracker
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _monitor(**overrides):
    """A manually clocked monitor over a fresh metrics registry."""
    state = {"t": 0.0}
    metrics = MetricsRegistry()
    config = HealthConfig(enabled=True, **overrides)
    monitor = HealthMonitor(lambda: state["t"], metrics, config=config)
    return state, metrics, monitor


def _system(health: HealthConfig, *, seed: int = 0,
            durability: DurabilityConfig | None = None) -> DiscoverySystem:
    """A one-LAN deployment: registry + one service + one client."""
    config = DiscoveryConfig(
        health=health,
        durability=durability or DurabilityConfig(),
        beacon_interval=1.0,
        lease_duration=4.0,
        purge_interval=0.5,
    )
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    system.add_service("lan-0", ServiceProfile.build(
        "radar-0", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    system.add_client("lan-0")
    return system


# -- config validation -------------------------------------------------------


def test_health_config_rejects_bad_capacity():
    with pytest.raises(ReproError):
        HealthConfig(recorder_capacity=0)


def test_health_config_rejects_bad_interval():
    with pytest.raises(ReproError):
        HealthConfig(watchdog_interval=0.0)


def test_health_config_rejects_empty_objectives():
    with pytest.raises(ReproError):
        HealthConfig(objectives=())


def test_health_config_rejects_bad_window():
    with pytest.raises(ReproError):
        HealthConfig(lease_window=-1.0)


def test_default_health_config_is_disabled():
    assert HealthConfig().enabled is False
    assert DiscoveryConfig().health.enabled is False


# -- flight recorder ---------------------------------------------------------


def test_flight_recorder_evicts_oldest_first():
    recorder = FlightRecorder("n1", capacity=3)
    for i in range(5):
        recorder.note({"t": float(i), "kind": "mark", "seq": i})
    assert recorder.appended == 5
    assert recorder.evicted == 2
    assert [r["seq"] for r in recorder.records] == [2, 3, 4]


def test_flight_recorder_dump_is_byte_stable():
    recorder = FlightRecorder("n1", capacity=4)
    recorder.note({"b": 2, "a": 1, "t": 0.5})
    recorder.note({"t": 1.0, "kind": "event"})
    dump = recorder.dump_jsonl()
    assert dump == recorder.dump_jsonl()
    lines = dump.splitlines()
    assert lines[0] == '{"a":1,"b":2,"t":0.5}'  # sorted keys, no spaces
    assert [json.loads(line) for line in lines]


def test_flight_recorder_truncated_dump_holds_newest():
    recorder = FlightRecorder("n1", capacity=2)
    for i in range(4):
        recorder.note({"seq": i})
    assert recorder.dump_jsonl() == '{"seq":2}\n{"seq":3}'


# -- gauge time-weighted mean ------------------------------------------------


def test_gauge_mean_over_weights_by_time_held():
    gauge = Gauge("depth")
    gauge.set(0.0, now=0.0)
    gauge.set(10.0, now=5.0)
    assert gauge.mean_over(10.0, now=10.0) == pytest.approx(5.0)
    assert gauge.mean_over(5.0, now=10.0) == pytest.approx(10.0)


def test_gauge_mean_over_is_zero_weighted_before_first_set():
    gauge = Gauge("depth")
    gauge.set(4.0, now=8.0)
    # [2, 8) carries the initial 0, [8, 10) carries 4 -> 8/8 = 1.
    assert gauge.mean_over(8.0, now=10.0) == pytest.approx(1.0)


def test_gauge_mean_over_without_history_returns_current_value():
    gauge = Gauge("depth")
    gauge.set(5.0)  # untimed: snapshot-only behavior
    assert gauge.last_set is None
    assert gauge.mean_over(3.0, now=10.0) == 5.0


def test_gauge_mean_over_rejects_bad_window():
    with pytest.raises(ReproError):
        Gauge("depth").mean_over(0.0, now=1.0)


def test_gauge_add_feeds_history():
    gauge = Gauge("depth")
    gauge.add(2.0, now=1.0)
    gauge.add(2.0, now=2.0)
    assert gauge.value == 4.0
    assert gauge.last_set == 2.0


# -- prometheus rendering ----------------------------------------------------


def test_render_prom_exact_format():
    registry = MetricsRegistry()
    registry.counter("admission.shed").inc(3)
    registry.gauge("registry.queue_depth").set(2.0)
    histogram = registry.histogram("query.lat", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    assert registry.render_prom() == (
        "# TYPE admission_shed counter\n"
        "admission_shed 3\n"
        "# TYPE registry_queue_depth gauge\n"
        "registry_queue_depth 2\n"
        "# TYPE query_lat histogram\n"
        'query_lat_bucket{le="0.1"} 1\n'
        'query_lat_bucket{le="1"} 2\n'
        'query_lat_bucket{le="+Inf"} 3\n'
        "query_lat_sum 5.55\n"
        "query_lat_count 3\n"
    )


def test_render_prom_empty_registry_is_empty():
    assert MetricsRegistry().render_prom() == ""


# -- SLO tracker -------------------------------------------------------------


def _tracker(state, **kw):
    defaults = dict(
        objectives=(SLOObjective("query", success_target=0.9,
                                 latency_target=1.0),),
        fast_window=5.0, slow_window=10.0, burn_threshold=2.0, min_samples=5,
    )
    defaults.update(kw)
    return SLOTracker(lambda: state["t"], **defaults)


def test_slo_burn_breaches_in_both_windows():
    state = {"t": 0.0}
    tracker = _tracker(state)
    for i in range(6):
        state["t"] = 1.0 + i * 0.5
        tracker.record("query", ok=False)
    (status,) = tracker.check()
    assert status.burn_breached and status.breached
    assert status.fast_burn >= 2.0 and status.slow_burn >= 2.0


def test_slo_needs_min_samples_to_breach():
    state = {"t": 1.0}
    tracker = _tracker(state)
    for _ in range(3):
        tracker.record("query", ok=False)
    (status,) = tracker.check()
    assert not status.breached and status.fast_samples == 3


def test_slo_slow_window_suppresses_blips():
    state = {"t": 0.0}
    tracker = _tracker(state)
    for i in range(40):  # a healthy slow window first
        state["t"] = 1.0 + (i % 4)
        tracker.record("query", ok=True)
    state["t"] = 10.0
    for _ in range(6):  # then a short error blip
        tracker.record("query", ok=False)
    (status,) = tracker.check()
    assert status.fast_burn >= 2.0  # the fast window is all errors
    assert status.slow_burn < 2.0  # but the slow window absorbs it
    assert not status.burn_breached


def test_slo_latency_breach_is_independent_of_errors():
    state = {"t": 1.0}
    tracker = _tracker(state)
    for _ in range(6):
        tracker.record("query", ok=True, latency=3.0)
    (status,) = tracker.check()
    assert status.latency_breached and not status.burn_breached


def test_slo_empty_windows_are_healthy():
    state = {"t": 5.0}
    tracker = _tracker(state)
    assert tracker.success_rate("query", 5.0) == 1.0
    assert tracker.burn_rate("query", 5.0) == 0.0
    (status,) = tracker.check()
    assert not status.breached


def test_slo_rejects_slow_window_shorter_than_fast():
    with pytest.raises(ReproError):
        _tracker({"t": 0.0}, fast_window=5.0, slow_window=1.0)


# -- watchdogs (through the monitor's tick) ----------------------------------


def _alarm_names(monitor):
    return [a.name for a in monitor.alarms]


def test_shed_step_fires_on_rising_edge_only():
    state, metrics, monitor = _monitor(shed_step_threshold=10)
    state["t"] = 1.0
    monitor.tick()  # baseline sample: counter at 0
    metrics.counter("admission.shed").inc(12)
    state["t"] = 2.0
    monitor.tick()
    assert _alarm_names(monitor) == ["shed-step"]
    state["t"] = 3.0
    monitor.tick()  # condition persists: no second alarm
    assert _alarm_names(monitor) == ["shed-step"]
    state["t"] = 9.0
    monitor.tick()  # window drained: edge re-arms
    metrics.counter("admission.shed").inc(12)
    state["t"] = 10.0
    monitor.tick()
    assert _alarm_names(monitor) == ["shed-step", "shed-step"]


def test_queue_growth_uses_time_weighted_mean():
    state, metrics, monitor = _monitor(queue_depth_threshold=8.0)
    metrics.gauge("registry.queue_depth").set(10.0, now=0.0)
    state["t"] = 4.0
    monitor.tick()
    assert _alarm_names(monitor) == ["queue-growth"]
    # Queue drains: the mean decays and the edge clears.
    metrics.gauge("registry.queue_depth").set(0.0, now=4.5)
    state["t"] = 12.0
    monitor.tick()
    assert _alarm_names(monitor) == ["queue-growth"]


def test_antientropy_staleness_per_node_and_rearms():
    state, _metrics, monitor = _monitor(antientropy_stale_after=30.0)
    monitor.feed_liveness("antientropy-round", "r1")
    state["t"] = 30.0
    monitor.tick()
    assert _alarm_names(monitor) == ["antientropy-stale"]
    assert monitor.alarms[0].node == "r1"
    monitor.feed_liveness("antientropy-round", "r1")  # the node came back
    state["t"] = 31.0
    monitor.tick()
    assert len(monitor.alarms) == 1
    state["t"] = 61.0
    monitor.tick()  # silent again: the edge re-fires
    assert _alarm_names(monitor) == ["antientropy-stale"] * 2


def test_lease_expiry_spike_names_single_source_node():
    state, _metrics, monitor = _monitor(lease_expiry_spike=3)
    state["t"] = 1.0
    for _ in range(3):
        monitor.feed_lease("expire", "r1")
    state["t"] = 2.0
    monitor.tick()
    (alarm,) = monitor.alarms
    assert alarm.name == "lease-expiry-spike"
    assert alarm.node == "r1"
    assert alarm.details["expiries_in_window"] == 3


def test_breaker_flap_watchdog_reads_flap_counter():
    state, metrics, monitor = _monitor(breaker_flap_threshold=2)
    state["t"] = 1.0
    monitor.tick()
    metrics.counter("breaker.flaps").inc(2)
    state["t"] = 2.0
    monitor.tick()
    assert _alarm_names(monitor) == ["breaker-flap"]


def test_alarm_raises_counters_trace_event_and_dump():
    state, metrics, monitor = _monitor(shed_step_threshold=1)
    state["t"] = 1.0
    monitor.tick()
    metrics.counter("admission.shed").inc(5)
    state["t"] = 2.0
    monitor.tick()
    assert metrics.counters["health.alarms"].value == 1
    assert metrics.counters["health.alarm.shed-step"].value == 1
    assert len(monitor.dumps) == 1
    assert monitor.dumps[0].reason == "shed-step"


def test_invariant_violation_counts_and_dumps():
    _state, metrics, monitor = _monitor()
    monitor.on_invariant_violation("stale wire id")
    assert metrics.counters["health.invariant_violations"].value == 1
    assert monitor.dumps[0].reason == "invariant-violation: stale wire id"


def test_dump_inventory_is_bounded():
    _state, _metrics, monitor = _monitor(max_dumps=3)
    for i in range(5):
        monitor.capture_dump(f"manual-{i}")
    assert len(monitor.dumps) == 3
    assert [d.reason for d in monitor.dumps] == [
        "manual-2", "manual-3", "manual-4",
    ]


def test_inactive_monitor_is_inert():
    metrics = MetricsRegistry()
    monitor = HealthMonitor(lambda: 0.0, metrics)
    assert not monitor.active
    monitor.note("n1", "anything")
    monitor.record_request("query", ok=False)
    monitor.tick()
    monitor.on_node_crash("n1")
    assert monitor.recorders == {} and monitor.alarms == []
    assert monitor.dumps == [] and metrics.counters == {}


# -- wired into a deployment -------------------------------------------------


def test_default_config_registers_no_observers_or_instruments():
    system = _system(HealthConfig())
    system.run(until=6.0)
    assert not system.health.active
    assert system.sim.trace.observers == []
    assert system.health.recorders == {}
    assert not any(name.startswith("health.")
                   for name in system.network.metrics.counters)


def test_enabled_monitor_mirrors_trace_into_rings():
    system = _system(HealthConfig(enabled=True))
    system.run(until=6.0)
    assert system.health.active
    assert len(system.sim.trace.observers) == 1
    registry = system.registries[0].node_id
    recorder = system.health.recorders[registry]
    assert recorder.appended > 0
    names = {r.get("name") for r in recorder.records}
    assert "registry.publish" in names or "lease.grant" in names


def test_crash_dump_captured_and_byte_identical_across_runs():
    def crash_run() -> tuple[list, str]:
        system = _system(HealthConfig(enabled=True), seed=2)
        registry = system.registries[0]
        system.sim.schedule_at(6.0, registry.crash)
        system.sim.schedule_at(8.0, registry.restart)
        system.run(until=12.0)
        dumps = [(d.reason, d.node, d.time, d.records)
                 for d in system.health.dumps]
        return dumps, "\n".join(d.jsonl for d in system.health.dumps)

    dumps_a, jsonl_a = crash_run()
    dumps_b, jsonl_b = crash_run()
    assert any(reason == "crash" for reason, *_rest in dumps_a)
    assert dumps_a == dumps_b
    assert jsonl_a == jsonl_b and jsonl_a


def test_dumps_byte_identical_across_durable_crash_restart():
    def durable_run() -> str:
        system = _system(
            HealthConfig(enabled=True), seed=3,
            durability=DurabilityConfig(enabled=True),
        )
        registry = system.registries[0]
        system.sim.schedule_at(6.0, registry.crash)
        system.sim.schedule_at(8.0, registry.restart)
        system.run(until=14.0)
        # The ring records both the crash mark and the restart mark.
        marks = {r["name"] for r in
                 system.health.recorders[registry.node_id].records
                 if r.get("kind") == "mark"}
        assert {"node.crash", "node.restart"} <= marks
        return "\n".join(d.jsonl for d in system.health.dumps)

    assert durable_run() == durable_run()


def test_small_ring_truncates_deterministically():
    def windowed_run() -> str:
        system = _system(HealthConfig(enabled=True, recorder_capacity=8),
                         seed=4)
        system.run(until=10.0)
        registry = system.registries[0].node_id
        recorder = system.health.recorders[registry]
        assert recorder.evicted > 0
        assert len(recorder.records) == 8
        return recorder.dump_jsonl()

    dump = windowed_run()
    assert dump == windowed_run()
    assert len(dump.splitlines()) == 8


# -- breaker state gauge + flap counter (core/forwarding satellite) ----------


def test_circuit_breaker_reports_transitions_and_flaps():
    state = {"t": 0.0}
    seen: list[tuple[str, str]] = []
    breaker = CircuitBreaker(
        lambda: state["t"], failure_threshold=2, reset_timeout=5.0,
        on_transition=lambda old, new: seen.append((old, new)),
    )
    breaker.record_failure()
    breaker.record_failure()  # trips open
    state["t"] = 6.0
    assert breaker.allows()  # half-open probe admitted
    breaker.record_failure()  # probe failed: a flap
    state["t"] = 12.0
    assert breaker.allows()
    breaker.record_success()
    assert seen == [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_CLOSED),
    ]
    assert breaker.flaps == 1


def test_breaker_observer_silent_without_state_change():
    seen: list[tuple[str, str]] = []
    breaker = CircuitBreaker(lambda: 0.0, failure_threshold=3,
                             on_transition=lambda o, n: seen.append((o, n)))
    breaker.record_failure()  # below threshold: still closed
    breaker.record_success()  # closed -> closed
    assert seen == []


def test_federation_breaker_gauge_and_flap_counter():
    config = DiscoveryConfig(
        breaker_failure_threshold=3,
        breaker_reset_timeout=5.0,
        ping_interval=500.0,  # keep ping rounds out of the test window
        signalling_interval=None,
    )
    system = DiscoverySystem(seed=0, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    left = system.add_registry("lan-0")
    right = system.add_registry("lan-1")
    system.federate(left, right)
    system.run(until=3.0)

    metrics = system.network.metrics
    gauge_name = f"breaker.state.{left.node_id}:{right.node_id}"
    for _ in range(3):
        left.federation.record_neighbor_failure(right.node_id)
    assert metrics.gauges[gauge_name].value == 2.0  # open

    system.run_for(6.0)  # past the reset timeout
    assert left.federation.breaker_allows(right.node_id)
    assert metrics.gauges[gauge_name].value == 1.0  # half-open

    left.federation.record_neighbor_failure(right.node_id)  # probe fails
    assert metrics.gauges[gauge_name].value == 2.0  # flapped back open
    assert metrics.counters["breaker.flaps"].value == 1

    left.federation.record_neighbor_success(right.node_id)
    assert metrics.gauges[gauge_name].value == 0.0  # closed
