"""Tests for registry discovery: probes, beacons, seeding, failover cache."""

from __future__ import annotations

import pytest

from repro.core import protocol
from repro.core.bootstrap import RegistryTracker
from repro.core.config import DiscoveryConfig
from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.registry.rim import RegistryDescription


def _desc(registry_id, lan="lan-a"):
    return RegistryDescription(
        registry_id=registry_id, lan_name=lan, supported_models=("uri",),
        advertisement_count=0, neighbor_count=0,
    )


class Host(Node):
    """Minimal node owning a tracker."""

    def __init__(self, node_id, config):
        super().__init__(node_id)
        self.attached_to: list[str] = []
        self.detached = 0
        self.tracker = RegistryTracker(
            self, config,
            on_attached=self.attached_to.append,
            on_detached=lambda: setattr(self, "detached", self.detached + 1),
        )


@pytest.fixture
def env():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_lan("lan-a")
    net.add_lan("lan-b")
    config = DiscoveryConfig(probe_timeout=0.5, signalling_interval=None)
    host = net.add_node(Host("host", config), "lan-a")
    return sim, net, host


def test_seed_attaches_immediately(env):
    _sim, _net, host = env
    host.tracker.seed("registry-9", _desc("registry-9"))
    assert host.tracker.current == "registry-9"
    assert host.attached_to == ["registry-9"]


def test_probe_sends_multicast_and_times_out_empty(env):
    sim, net, host = env
    host.tracker.probe()
    sim.run(until=1.0)
    assert host.tracker.current is None
    assert net.stats.by_type_count[protocol.REGISTRY_PROBE] == 1
    assert host.tracker.probes_sent == 1


def test_probe_collects_replies_then_attaches(env):
    sim, _net, host = env
    host.tracker.probe()
    host.tracker.observe_registry(_desc("registry-1", lan="lan-a"))
    assert host.tracker.current is None  # window still open
    sim.run(until=1.0)
    assert host.tracker.current == "registry-1"


def test_probe_waits_for_window_on_remote_only_replies(env):
    sim, _net, host = env
    host.tracker.probe()
    host.tracker.observe_registry(_desc("remote-reg", lan="lan-b"))
    assert host.tracker.current is None  # not local: wait out the window
    sim.run(until=1.0)
    assert host.tracker.current == "remote-reg"


def test_passive_beacon_attaches_when_unattached(env):
    _sim, _net, host = env
    host.tracker.observe_registry(_desc("registry-2"))
    assert host.tracker.current == "registry-2"


def test_observe_does_not_switch_when_attached(env):
    _sim, _net, host = env
    host.tracker.seed("registry-1", _desc("registry-1"))
    host.tracker.observe_registry(_desc("registry-0"))
    assert host.tracker.current == "registry-1"
    assert "registry-0" in host.tracker.known


def test_local_preferred_over_remote(env):
    sim, _net, host = env
    host.tracker.probe()
    host.tracker.known["remote"] = _desc("remote", lan="lan-b")
    sim.run(until=1.0)
    host.tracker.current = None
    host.tracker.observe_registry(_desc("local", lan="lan-a"))
    assert host.tracker.current == "local"


def test_failover_prefers_cached_alternative(env):
    _sim, _net, host = env
    host.tracker.seed("registry-1", _desc("registry-1"))
    host.tracker.known["registry-2"] = _desc("registry-2")
    replacement = host.tracker.registry_failed()
    assert replacement == "registry-2"
    assert host.tracker.current == "registry-2"
    assert "registry-1" not in host.tracker.known
    assert host.tracker.failovers == 1


def test_failover_without_alternatives_probes(env):
    sim, net, host = env
    host.tracker.seed("registry-1", _desc("registry-1"))
    assert host.tracker.registry_failed() is None
    assert host.detached == 1
    sim.run(until=1.0)
    assert net.stats.by_type_count[protocol.REGISTRY_PROBE] == 1


def test_alternatives_order_local_first(env):
    _sim, _net, host = env
    host.tracker.seed("current", _desc("current"))
    host.tracker.known["z-local"] = _desc("z-local", lan="lan-a")
    host.tracker.known["a-remote"] = _desc("a-remote", lan="lan-b")
    assert host.tracker.alternatives() == ["z-local", "a-remote"]


def test_registry_list_reply_merges_without_overwrite(env):
    _sim, _net, host = env
    original = _desc("registry-1", lan="lan-a")
    host.tracker.seed("registry-1", original)
    payload = protocol.RegistryListPayload(
        registries=(_desc("registry-1", lan="lan-b"), _desc("registry-3")),
    )
    from repro.netsim.messages import Envelope

    host.tracker.handle_registry_list_reply(
        Envelope(msg_type=protocol.REGISTRY_LIST_REPLY, src="registry-1",
                 dst="host", payload=payload)
    )
    assert host.tracker.known["registry-1"] is original  # setdefault semantics
    assert "registry-3" in host.tracker.known


def test_load_balancing_spreads_clients_over_local_registries():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_lan("lan-a")
    config = DiscoveryConfig(signalling_interval=None)
    hosts = [net.add_node(Host(f"client-{i:03d}", config), "lan-a")
             for i in range(20)]
    chosen = set()
    for host in hosts:
        for rid in ("registry-0", "registry-1", "registry-2"):
            host.tracker.known[rid] = _desc(rid, lan="lan-a")
        host.tracker.observe_registry(_desc("registry-0", lan="lan-a"))
        chosen.add(host.tracker.current)
    assert len(chosen) > 1  # hashed spread, not everyone on registry-0
