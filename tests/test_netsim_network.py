"""Unit tests for the network: LANs, WAN, partitions, transport."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError, UnknownNodeError
from repro.netsim.messages import Envelope
from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator


class Recorder(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Envelope] = []

    def handle_message(self, envelope):
        self.received.append(envelope)


@pytest.fixture
def net():
    sim = Simulator(seed=1)
    network = Network(sim)
    network.add_lan("lan-a")
    network.add_lan("lan-b")
    return network


def _add(net, node_id, lan):
    return net.add_node(Recorder(node_id), lan)


def test_duplicate_lan_rejected(net):
    with pytest.raises(NetworkError):
        net.add_lan("lan-a")


def test_duplicate_node_rejected(net):
    _add(net, "n1", "lan-a")
    with pytest.raises(NetworkError):
        _add(net, "n1", "lan-b")


def test_unknown_lan_rejected(net):
    with pytest.raises(NetworkError):
        _add(net, "n1", "lan-zzz")


def test_unknown_node_lookup(net):
    with pytest.raises(UnknownNodeError):
        net.node("ghost")


def test_same_lan_unicast_delivers(net):
    a = _add(net, "a", "lan-a")
    b = _add(net, "b", "lan-a")
    a.send("b", "hello", payload="hi")
    net.sim.run(until=1.0)
    assert len(b.received) == 1
    assert b.received[0].payload == "hi"
    assert net.stats.bytes_wan == 0


def test_cross_lan_unicast_counts_as_wan(net):
    a = _add(net, "a", "lan-a")
    b = _add(net, "b", "lan-b")
    a.send("b", "hello")
    net.sim.run(until=1.0)
    assert len(b.received) == 1
    assert net.stats.bytes_wan > 0


def test_wan_latency_exceeds_lan_latency(net):
    a = _add(net, "a", "lan-a")
    local = _add(net, "local", "lan-a")
    remote = _add(net, "remote", "lan-b")
    arrival = {}

    local.handle_message = lambda env: arrival.setdefault("local", net.sim.now)
    remote.handle_message = lambda env: arrival.setdefault("remote", net.sim.now)
    a.send("local", "m")
    a.send("remote", "m")
    net.sim.run(until=1.0)
    assert arrival["local"] < arrival["remote"]


def test_multicast_reaches_whole_lan_only(net):
    a = _add(net, "a", "lan-a")
    peer1 = _add(net, "p1", "lan-a")
    peer2 = _add(net, "p2", "lan-a")
    other = _add(net, "o", "lan-b")
    a.multicast("beacon")
    net.sim.run(until=1.0)
    assert len(peer1.received) == 1
    assert len(peer2.received) == 1
    assert other.received == []
    # Broadcast medium: one transmission regardless of receiver count.
    assert net.stats.messages_sent == 1


def test_multicast_does_not_loop_back(net):
    a = _add(net, "a", "lan-a")
    a.multicast("beacon")
    net.sim.run(until=1.0)
    assert a.received == []


def test_crashed_receiver_drops(net):
    a = _add(net, "a", "lan-a")
    b = _add(net, "b", "lan-a")
    b.crash()
    a.send("b", "hello")
    net.sim.run(until=1.0)
    assert b.received == []
    assert net.stats.messages_dropped == 1


def test_crash_while_in_flight_drops(net):
    a = _add(net, "a", "lan-a")
    b = _add(net, "b", "lan-a")
    a.send("b", "hello")
    b.crash()  # before delivery event fires
    net.sim.run(until=1.0)
    assert b.received == []
    assert net.stats.messages_dropped == 1


def test_partition_blocks_cross_group_traffic(net):
    a = _add(net, "a", "lan-a")
    b = _add(net, "b", "lan-b")
    net.partition([["lan-a"], ["lan-b"]])
    a.send("b", "hello")
    net.sim.run(until=1.0)
    assert b.received == []
    assert net.stats.messages_dropped == 1


def test_partition_spec_must_cover_all_lans(net):
    with pytest.raises(NetworkError):
        net.partition([["lan-a"]])


def test_partition_spec_rejects_duplicates(net):
    with pytest.raises(NetworkError):
        net.partition([["lan-a", "lan-a"], ["lan-b"]])


def test_heal_partition_restores_traffic(net):
    a = _add(net, "a", "lan-a")
    b = _add(net, "b", "lan-b")
    net.partition([["lan-a"], ["lan-b"]])
    net.heal_partition()
    a.send("b", "hello")
    net.sim.run(until=1.0)
    assert len(b.received) == 1


def test_same_lan_traffic_survives_partition(net):
    a = _add(net, "a", "lan-a")
    b = _add(net, "b", "lan-a")
    net.partition([["lan-a"], ["lan-b"]])
    a.send("b", "hello")
    net.sim.run(until=1.0)
    assert len(b.received) == 1


def test_wan_disconnected_lan_is_isolated():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_lan("connected")
    net.add_lan("island", wan_connected=False)
    a = net.add_node(Recorder("a"), "connected")
    b = net.add_node(Recorder("b"), "island")
    a.send("b", "hello")
    sim.run(until=1.0)
    assert b.received == []


def test_loss_rate_drops_some_messages():
    sim = Simulator(seed=3)
    net = Network(sim, loss_rate=0.5)
    net.add_lan("lan")
    a = net.add_node(Recorder("a"), "lan")
    b = net.add_node(Recorder("b"), "lan")
    for _ in range(100):
        a.send("b", "m")
    sim.run(until=5.0)
    assert 0 < len(b.received) < 100
    assert net.stats.messages_dropped == 100 - len(b.received)


def test_invalid_loss_rate_rejected():
    with pytest.raises(NetworkError):
        Network(Simulator(), loss_rate=1.5)


def test_remove_node_departs_permanently(net):
    a = _add(net, "a", "lan-a")
    _add(net, "b", "lan-a")
    net.remove_node("b")
    assert "b" not in net.nodes
    a.send("b", "hello")
    net.sim.run(until=1.0)
    assert net.stats.messages_dropped == 1


def test_nodes_on_lan_sorted(net):
    _add(net, "z", "lan-a")
    _add(net, "a", "lan-a")
    assert [n.node_id for n in net.nodes_on_lan("lan-a")] == ["a", "z"]


def test_byte_accounting_send_vs_delivered(net):
    a = _add(net, "a", "lan-a")
    _add(net, "b", "lan-a")
    a.send("b", "hello", payload="x" * 100)
    net.sim.run(until=1.0)
    assert net.stats.bytes_sent == net.stats.bytes_delivered > 0


def test_bandwidth_adds_transmission_delay():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_lan("radio", bandwidth_bps=8_000)  # 1 kB/s
    a = net.add_node(Recorder("a"), "radio")
    b = net.add_node(Recorder("b"), "radio")
    arrival = {}
    b.handle_message = lambda env: arrival.setdefault("t", sim.now)
    a.send("b", "m", payload="x" * 1000)  # ~1.5 kB message -> ~1.5 s on air
    sim.run(until=10.0)
    assert arrival["t"] > 1.0


def test_unbounded_lan_has_no_transmission_delay():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_lan("fast")
    a = net.add_node(Recorder("a"), "fast")
    b = net.add_node(Recorder("b"), "fast")
    arrival = {}
    b.handle_message = lambda env: arrival.setdefault("t", sim.now)
    a.send("b", "m", payload="x" * 100000)
    sim.run(until=1.0)
    assert arrival["t"] == pytest.approx(net.lan_latency)


def test_shared_medium_serializes_fifo():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_lan("radio", bandwidth_bps=80_000)  # 10 kB/s
    a = net.add_node(Recorder("a"), "radio")
    b = net.add_node(Recorder("b"), "radio")
    c = net.add_node(Recorder("c"), "radio")
    arrivals = []
    c.handle_message = lambda env: arrivals.append((env.src, sim.now))
    # Two ~1 kB messages sent at the same instant from different senders:
    # the second must wait for the first to clear the medium.
    a.send("c", "m", payload="x" * 500)
    b.send("c", "m", payload="x" * 500)
    sim.run(until=5.0)
    assert len(arrivals) == 2
    gap = arrivals[1][1] - arrivals[0][1]
    assert gap > 0.05  # roughly one transmission time apart


def test_bigger_payloads_take_longer_on_narrowband():
    def arrival_time(payload_size):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_lan("radio", bandwidth_bps=64_000)
        a = net.add_node(Recorder("a"), "radio")
        b = net.add_node(Recorder("b"), "radio")
        arrival = {}
        b.handle_message = lambda env: arrival.setdefault("t", sim.now)
        a.send("b", "m", payload="x" * payload_size)
        sim.run(until=60.0)
        return arrival["t"]

    assert arrival_time(8000) > 4 * arrival_time(100)


def test_multicast_occupies_medium_once():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_lan("radio", bandwidth_bps=8_000)
    a = net.add_node(Recorder("a"), "radio")
    receivers = [net.add_node(Recorder(f"r{i}"), "radio") for i in range(5)]
    arrivals = []
    for r in receivers:
        r.handle_message = lambda env, r=r: arrivals.append(sim.now)
    a.multicast("beacon", payload="x" * 500)
    sim.run(until=10.0)
    assert len(arrivals) == 5
    assert len(set(arrivals)) == 1  # one transmission, simultaneous delivery


def test_invalid_bandwidth_rejected():
    net = Network(Simulator(seed=1))
    with pytest.raises(NetworkError):
        net.add_lan("bad", bandwidth_bps=0.0)


def test_multicast_delivers_per_receiver_copies(net):
    a = _add(net, "a", "lan-a")
    b = _add(net, "b", "lan-a")
    c = _add(net, "c", "lan-a")
    a.multicast("announce", payload="hi", headers={"ttl": 3})
    net.sim.run()
    (eb,), (ec,) = b.received, c.received
    # One distinct Envelope per receiver, addressed to that receiver.
    assert eb is not ec
    assert eb.envelope_id != ec.envelope_id
    assert eb.dst == "b" and ec.dst == "c"
    # Mutating one delivery's metadata must not leak into the sibling's.
    eb.headers["ttl"] = 0
    eb.hops += 1
    assert ec.headers == {"ttl": 3}
    assert ec.hops != eb.hops
