"""Smoke + shape tests for every experiment runner (E1–E12).

Each experiment runs with deliberately small parameters; assertions check
the *shape* the paper predicts, not absolute values.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult
from repro.experiments import common as exp_common
from repro.experiments.e1_topology import run as e1
from repro.experiments.e2_response_control import run as e2
from repro.experiments.e3_robustness import run as e3
from repro.experiments.e4_staleness import run as e4
from repro.experiments.e5_matchmaking import run as e5
from repro.experiments.e6_lan_fallback import run as e6
from repro.experiments.e7_wan_federation import run as e7
from repro.experiments.e8_forwarding import run as e8
from repro.experiments.e9_signalling import run as e9
from repro.experiments.e10_stack import run as e10
from repro.experiments.e11_survivability import run as e11
from repro.experiments.e12_repository import run as e12


# -- the common result-table plumbing -----------------------------------------

def test_experiment_result_table_and_queries():
    result = ExperimentResult(experiment="EX", description="demo")
    result.add(arch="a", value=1.0)
    result.add(arch="b", value=2.0)
    result.note("hello")
    assert result.columns() == ["arch", "value"]
    assert result.column("value") == [1.0, 2.0]
    assert result.where(arch="a") == [{"arch": "a", "value": 1.0}]
    assert result.single(arch="b")["value"] == 2.0
    text = result.table()
    assert "EX" in text and "hello" in text


def test_experiment_result_single_raises_on_ambiguity():
    result = ExperimentResult(experiment="EX", description="demo")
    result.add(arch="a")
    result.add(arch="a")
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        result.single(arch="a")


def test_mean_helper():
    assert exp_common.mean([]) == 0.0
    assert exp_common.mean([1.0, 3.0]) == 2.0


# -- E1 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e1_result():
    return e1(service_counts=(4, 8), n_clients=2, n_queries=6,
              maintenance_window=20.0)


def test_e1_full_recall_everywhere(e1_result):
    assert all(row["recall"] == 1.0 for row in e1_result.rows)


def test_e1_decentralized_implosion_grows_with_services(e1_result):
    small = e1_result.single(arch="decentralized", services=4)
    large = e1_result.single(arch="decentralized", services=8)
    assert large["mean_responses"] >= small["mean_responses"] > 1.0


def test_e1_registry_answers_with_one_response(e1_result):
    for arch in ("centralized", "distributed"):
        for row in e1_result.where(arch=arch):
            assert row["mean_responses"] == 1.0


def test_e1_decentralized_cheapest_upkeep(e1_result):
    for services in (4, 8):
        rows = {row["arch"]: row for row in e1_result.where(services=services)}
        assert rows["decentralized"]["upkeep_bytes_per_s"] < \
            rows["centralized"]["upkeep_bytes_per_s"]


def test_e1_centralized_concentrates_load(e1_result):
    row = e1_result.single(arch="centralized", services=8)
    assert row["max_node"].startswith("registry")
    spread = e1_result.single(arch="decentralized", services=8)
    assert row["max_node_load_bytes"] > spread["max_node_load_bytes"]


# -- E2 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e2_result():
    return e2(n_services=8, caps=(None, 2))


def test_e2_decentralized_implosion_ignores_cap(e2_result):
    uncapped = e2_result.single(arch="decentralized", max_results="none")
    capped = e2_result.single(arch="decentralized", max_results=2)
    assert uncapped["response_messages"] == capped["response_messages"] == 8


def test_e2_registry_caps_hits_in_one_message(e2_result):
    capped = e2_result.single(arch="registry", max_results=2)
    assert capped["response_messages"] == 1
    assert capped["hits_returned"] == 2
    uncapped = e2_result.single(arch="registry", max_results="none")
    assert uncapped["hits_returned"] == 8
    assert capped["response_bytes"] < uncapped["response_bytes"]


# -- E3 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e3_result():
    return e3(lans=3, services_per_lan=2, n_queries=5,
              fractions=(0.0, 1.0), strategies=("targeted",))


def test_e3_uddi_single_point_of_failure(e3_result):
    healthy = e3_result.single(arch="uddi", killed_fraction=0.0)
    dead = e3_result.single(arch="uddi", killed_fraction=1.0)
    assert healthy["recall"] == 1.0
    assert dead["recall"] == 0.0


def test_e3_federated_degrades_not_collapses(e3_result):
    dead = e3_result.single(arch="federated", killed_fraction=1.0)
    assert dead["recall"] > 0.0  # LAN fallback keeps local discovery alive
    assert dead["completed"] == dead["queries"]


def test_e3_wsd_is_registry_free(e3_result):
    rows = e3_result.where(arch="wsd-adhoc")
    recalls = {row["recall"] for row in rows}
    assert len(recalls) == 1  # registry failures cannot affect it


# -- E4 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e4_result():
    return e4(n_services=8, churn_rates=(0.1,), churn_window=60.0, n_queries=5)


def test_e4_leasing_drains_staleness(e4_result):
    leased = e4_result.single(arch="leasing")
    assert leased["registry_staleness"] == 0.0
    assert leased["response_staleness"] == 0.0


def test_e4_no_leasing_accumulates_staleness(e4_result):
    for arch in ("no-leasing", "uddi", "wsd-proxy"):
        row = e4_result.single(arch=arch)
        assert row["registry_staleness"] > 0.0
        assert row["response_staleness"] > 0.0


def test_e4_adhoc_always_fresh(e4_result):
    row = e4_result.single(arch="wsd-adhoc")
    assert row["response_staleness"] == 0.0


# -- E5 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e5_result():
    return e5(n_profiles=30, n_requests=15, generalize_levels=(0, 1))


def test_e5_semantic_recovers_truth(e5_result):
    for row in e5_result.where(model="semantic"):
        assert row["f1"] == 1.0


def test_e5_syntactic_models_lose_on_generalization(e5_result):
    for ontology in set(e5_result.column("ontology")):
        for model in ("uri", "template"):
            row = e5_result.single(ontology=ontology, model=model, generalize=1)
            semantic = e5_result.single(ontology=ontology, model="semantic",
                                        generalize=1)
            assert row["f1"] < semantic["f1"]


def test_e5_semantic_costs_more(e5_result):
    for ontology in set(e5_result.column("ontology")):
        semantic = e5_result.single(ontology=ontology, model="semantic",
                                    generalize=1)
        uri = e5_result.single(ontology=ontology, model="uri", generalize=1)
        assert semantic["us_per_eval"] > uri["us_per_eval"]


# -- E6 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e6_result():
    return e6(n_services=3, queries_per_phase=4)


def test_e6_timeline_modes(e6_result):
    registry_phase = e6_result.single(phase="registry")
    outage = e6_result.single(phase="outage")
    recovered = e6_result.single(phase="recovered")
    assert registry_phase["via"] == "registry"
    assert outage["via"] == "fallback"
    assert recovered["via"] == "registry"


def test_e6_fallback_keeps_local_availability(e6_result):
    outage = e6_result.single(phase="outage")
    assert outage["recall"] == 1.0
    assert outage["completed"] == outage["queries"]


def test_e6_outage_latency_higher(e6_result):
    outage = e6_result.single(phase="outage")
    normal = e6_result.single(phase="registry")
    assert outage["mean_latency"] > normal["mean_latency"]


# -- E7 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e7_result():
    return e7(lans=3, services_per_lan=2, n_queries=5)


def test_e7_unseeded_is_lan_local(e7_result):
    none_row = e7_result.single(study="seeding", variant="none")
    ring_row = e7_result.single(study="seeding", variant="ring")
    assert none_row["recall"] < 0.7
    assert ring_row["recall"] == 1.0
    assert none_row["wan_bytes"] == 0


def test_e7_replication_shifts_cost_to_maintenance(e7_result):
    forward = e7_result.single(study="cooperation", variant="forward-queries")
    replicate = e7_result.single(study="cooperation", variant="replicate-ads")
    assert replicate["query_bytes_per_q"] < forward["query_bytes_per_q"]
    assert replicate["maintenance_bytes"] > forward["maintenance_bytes"]
    assert replicate["mean_latency"] < forward["mean_latency"]


def test_e7_gateway_election_cuts_wan_traffic(e7_result):
    elected = e7_result.single(study="gateway", variant="elected")
    flooded = e7_result.single(study="gateway", variant="all-forward")
    assert elected["wan_bytes"] < flooded["wan_bytes"]
    assert elected["recall"] == flooded["recall"] == 1.0


# -- E8 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e8_result():
    return e8(lans=4, services_per_lan=2, n_queries=8)


def test_e8_flooding_full_recall_most_bytes(e8_result):
    flood = e8_result.single(strategy="flooding")
    assert flood["recall"] == 1.0
    for row in e8_result.rows:
        assert flood["forward_bytes"] >= row["forward_bytes"]


def test_e8_walk_cheaper_but_lossy(e8_result):
    flood = e8_result.single(strategy="flooding")
    walk = e8_result.single(strategy="random-walk")
    assert walk["query_bytes_per_q"] < flood["query_bytes_per_q"]
    assert walk["recall"] <= flood["recall"]


# -- E9 ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def e9_result():
    return e9(lans=3, services_per_lan=2, n_queries=5)


def test_e9_signalling_avoids_probe_and_beats_fallback(e9_result):
    on = e9_result.single(signalling="on")
    off = e9_result.single(signalling="off")
    assert on["probes_after_crash"] == 0
    assert off["probes_after_crash"] >= 1
    assert on["recall"] >= off["recall"]
    assert on["completed"] == on["queries"] if "queries" in on else True


# -- E10 -----------------------------------------------------------------------

@pytest.fixture(scope="module")
def e10_result():
    return e10(n_services=4, n_queries=4)


def test_e10_semantic_order_of_magnitude_larger(e10_result):
    uri = e10_result.single(model="uri")
    semantic = e10_result.single(model="semantic")
    assert semantic["ad_payload_bytes"] > 10 * uri["ad_payload_bytes"]


def test_e10_compression_recovers_bytes(e10_result):
    semantic = e10_result.single(model="semantic")
    zipped = e10_result.single(model="semantic+zip")
    assert zipped["publish_msg_bytes"] < semantic["publish_msg_bytes"]
    assert zipped["recall_proxy"] == semantic["recall_proxy"] == 1.0


def test_e10_same_stack_constant_renew_cost(e10_result):
    renew_costs = {
        row["model"]: row["renew_msg_bytes"]
        for row in e10_result.rows if row["model"] in ("uri", "template", "semantic")
    }
    # Renewals carry only lease ids: identical across description models.
    assert len(set(renew_costs.values())) == 1


# -- E11 -----------------------------------------------------------------------

@pytest.fixture(scope="module")
def e11_result():
    return e11(lans=4, services_per_lan=2)


def test_e11_targeted_kills_centralized_star(e11_result):
    row = e11_result.single(arch="centralized", attack="targeted")
    assert row["reach@10%"] < 0.2


def test_e11_distributed_beats_centralized_under_attack(e11_result):
    central = e11_result.single(arch="centralized", attack="targeted")
    distributed = e11_result.single(arch="distributed", attack="targeted")
    assert distributed["reach@10%"] > central["reach@10%"]


def test_e11_decentralized_never_spans_wan(e11_result):
    rows = e11_result.where(arch="decentralized")
    assert all(row["connected_frac"] < 0.5 for row in rows)


# -- E12 -----------------------------------------------------------------------

@pytest.fixture(scope="module")
def e12_result():
    return e12(n_services=2, n_queries=3)


def test_e12_sync_restores_semantic_evaluation(e12_result):
    off = e12_result.single(variant="sync=off")
    on = e12_result.single(variant="sync=on")
    assert not off["registry_b_can_evaluate"]
    assert off["recall"] == 0.0
    assert off["discarded_queries"] > 0
    assert on["registry_b_can_evaluate"]
    assert on["recall"] == 1.0
    assert on["artifact_bytes"] > 0


def test_e12_thin_client_delegates_selection(e12_result):
    thin = e12_result.single(variant="thin-client")
    assert thin["recall"] == 1.0


# -- cross-seed aggregation and charts ------------------------------------------

def test_repeat_runs_aggregates_means_and_sd():
    from repro.experiments.common import ExperimentResult, repeat_runs

    def fake_run(*, seed=0):
        result = ExperimentResult(experiment="FAKE", description="d")
        result.add(arch="a", value=float(seed), label="x")
        result.add(arch="b", value=10.0 + seed, label="y")
        return result

    aggregated = repeat_runs(fake_run, seeds=(0, 1, 2), group_by=["arch"])
    row_a = aggregated.single(arch="a")
    assert row_a["value"] == pytest.approx(1.0)
    assert row_a["value_sd"] > 0.0
    assert row_a["n"] == 3
    assert "label" not in row_a  # non-numeric, non-key columns dropped
    assert aggregated.experiment == "FAKExN"


def test_repeat_runs_requires_seeds():
    from repro.errors import ExperimentError
    from repro.experiments.common import ExperimentResult, repeat_runs

    with pytest.raises(ExperimentError):
        repeat_runs(lambda *, seed=0: ExperimentResult("X", "d"),
                    seeds=(), group_by=["arch"])


def test_bar_chart_renders_scaled_bars():
    from repro.experiments.common import ExperimentResult, bar_chart

    result = ExperimentResult(experiment="CHART", description="d")
    result.add(arch="big", bytes=1000)
    result.add(arch="small", bytes=250)
    chart = bar_chart(result, label="arch", value="bytes", width=20)
    lines = chart.splitlines()
    assert "CHART" in lines[0]
    big_bar = lines[1].count("#")
    small_bar = lines[2].count("#")
    assert big_bar == 20
    assert small_bar == 5


def test_bar_chart_handles_non_numeric():
    from repro.experiments.common import ExperimentResult, bar_chart

    result = ExperimentResult(experiment="CHART", description="d")
    result.add(arch="a", bytes="n/a")
    assert "no numeric values" in bar_chart(result, label="arch", value="bytes")


def test_stdev_helper():
    from repro.experiments.common import stdev

    assert stdev([]) == 0.0
    assert stdev([5.0]) == 0.0
    assert stdev([1.0, 3.0]) == pytest.approx(1.0)
