"""Unit tests for the subsumption reasoner."""

from __future__ import annotations

import pytest

from repro.semantics.ontology import Ontology, THING
from repro.semantics.reasoner import Reasoner


@pytest.fixture
def ont():
    o = Ontology("vehicles")
    o.add_subtree("Vehicle", {
        "LandVehicle": {"Car": {"Sedan": {}, "SUV": {}}, "Truck": {}},
        "WaterVehicle": {"Boat": {}},
    })
    return o


@pytest.fixture
def r(ont):
    return Reasoner(ont)


def test_subsumes_reflexive(r):
    assert r.subsumes("Car", "Car")


def test_subsumes_direct_and_transitive(r):
    assert r.subsumes("LandVehicle", "Car")
    assert r.subsumes("Vehicle", "Sedan")
    assert r.subsumes(THING, "Boat")


def test_subsumes_direction_matters(r):
    assert not r.subsumes("Car", "Vehicle")
    assert not r.subsumes("Sedan", "Car")


def test_unrelated_not_subsumed(r):
    assert not r.subsumes("Car", "Boat")
    assert not r.subsumes("Boat", "Car")


def test_paper_example():
    """'a Radar is a kind of Sensor' — the paper's own inference case."""
    from repro.semantics.generator import battlefield_ontology

    r = Reasoner(battlefield_ontology())
    assert r.subsumes("ncw:Sensor", "ncw:Radar")
    assert not r.subsumes("ncw:Radar", "ncw:Sensor")


def test_related_symmetric(r):
    assert r.related("Car", "Vehicle")
    assert r.related("Vehicle", "Car")
    assert not r.related("Car", "Boat")


def test_lca_of_siblings(r):
    assert r.lca_set("Sedan", "SUV") == frozenset({"Car"})


def test_lca_across_branches(r):
    assert r.lca_set("Car", "Boat") == frozenset({"Vehicle"})


def test_lca_with_self(r):
    assert r.lca_set("Car", "Car") == frozenset({"Car"})


def test_lca_with_ancestor(r):
    assert r.lca_set("Sedan", "LandVehicle") == frozenset({"LandVehicle"})


def test_distance_zero_for_identical(r):
    assert r.distance("Car", "Car") == 0


def test_distance_counts_edges(r):
    assert r.distance("Sedan", "SUV") == 2
    assert r.distance("Sedan", "Car") == 1
    assert r.distance("Sedan", "Boat") == 5  # Sedan(4)+Boat(3)-2*Vehicle(1)... depths


def test_distance_symmetric(r):
    assert r.distance("Car", "Boat") == r.distance("Boat", "Car")


def test_similarity_bounds(r):
    assert r.similarity("Car", "Car") == 1.0
    assert 0.0 < r.similarity("Sedan", "Boat") < 1.0


def test_similarity_monotone_with_closeness(r):
    assert r.similarity("Sedan", "SUV") > r.similarity("Sedan", "Boat")


def test_cache_invalidation_on_ontology_change(ont, r):
    assert not r.subsumes("Vehicle", "Hovercraft") if "Hovercraft" in ont else True
    # warm the cache
    assert r.subsumes("Vehicle", "Car")
    ont.add_class("Hovercraft", parents=["LandVehicle", "WaterVehicle"])
    assert r.subsumes("Vehicle", "Hovercraft")
    assert r.subsumes("WaterVehicle", "Hovercraft")


def test_depth_cache_matches_ontology(ont, r):
    for cls in ont.classes():
        assert r.depth_of(cls) == ont.depth(cls)


def test_subsumption_counter_increments(r):
    before = r.subsumption_checks
    r.subsumes("Vehicle", "Car")
    assert r.subsumption_checks == before + 1


def test_sync_is_noop_on_stable_ontology(ont, r):
    r.subsumes("Vehicle", "Car")  # warm
    cached = dict(r._ancestor_cache)
    r.sync()
    assert dict(r._ancestor_cache) == cached  # nothing dropped


# -- cache-regression guards --------------------------------------------------
#
# The query path relies on two memoization layers staying effective: the
# reasoner's ancestor caches and the matchmaker's per-ontology-version
# degree cache. These counter assertions fail if either silently stops
# caching (e.g. an accidental per-call invalidation).

def test_repeated_match_does_not_rerun_subsumption(ont, r):
    from repro.semantics.matchmaker import Matchmaker
    from repro.semantics.profiles import ServiceProfile, ServiceRequest

    mm = Matchmaker(r)
    profile = ServiceProfile.build("svc", "Car", outputs=["Sedan"])
    request = ServiceRequest.build("LandVehicle", outputs=["Car"])  # PLUGIN-ish
    mm.match(profile, request)
    warm_checks = r.subsumption_checks
    warm_evals = mm.evaluations
    assert warm_checks > 0  # the first pass really did reason
    for _ in range(5):
        assert mm.match(profile, request).matched
    assert mm.evaluations == warm_evals + 5
    # Every concept degree was memoized: zero new subsumption checks.
    assert r.subsumption_checks == warm_checks


def test_degree_cache_invalidated_by_version_bump(ont, r):
    from repro.semantics.matchmaker import Matchmaker
    from repro.semantics.profiles import ServiceProfile, ServiceRequest

    mm = Matchmaker(r)
    profile = ServiceProfile.build("svc", "Car", outputs=["Sedan"])
    request = ServiceRequest.build("LandVehicle", outputs=["Car"])
    mm.match(profile, request)
    warm_checks = r.subsumption_checks
    ont.add_class("Hovercraft", parents=["LandVehicle", "WaterVehicle"])
    mm.match(profile, request)  # must re-reason against the new version
    assert r.subsumption_checks > warm_checks


# -- closure bitsets ----------------------------------------------------------
#
# Subsumption is backed by precomputed ancestor-or-self bitsets over the
# ontology's dense concept-id space. The bitsets must agree with the
# set-based closure exactly, and must be rebuilt (not served stale) after
# the ontology's version counter advances.

def test_closure_bits_match_ancestor_sets(ont, r):
    for uri in ont.classes():
        expected = set(ont.ancestors(uri)) | {uri}
        expanded = set(ont.uris_from_bits(r.closure_bits(uri)))
        assert expanded == expected, uri


def test_closure_bits_are_ancestor_or_self(r, ont):
    bits = r.closure_bits("Sedan")
    assert bits >> ont.concept_id("Sedan") & 1
    assert bits >> ont.concept_id("Car") & 1
    assert bits >> ont.concept_id("Vehicle") & 1
    assert bits >> ont.concept_id(THING) & 1
    assert not bits >> ont.concept_id("Boat") & 1


def test_subsumes_unknown_general_is_false_not_error(r):
    assert not r.subsumes("NotAClass", "Car")


def test_subsumes_unknown_specific_raises(r):
    from repro.errors import UnknownClassError

    with pytest.raises(UnknownClassError):
        r.subsumes("Car", "NotAClass")


def test_closure_bits_refresh_on_version_bump(ont, r):
    before = r.closure_bits("Car")
    ont.add_class("RaceCar", parents=["Car"])
    after = r.closure_bits("RaceCar")
    assert before == r.closure_bits("Car")  # old class closure unchanged
    assert set(ont.uris_from_bits(after)) == {"RaceCar", "Car", "LandVehicle",
                                              "Vehicle", THING}
    # Multi-parent growth reaches existing classes too: a new edge must
    # invalidate the memo, not extend a stale bitset.
    ont.add_class("Amphibian", parents=["Car", "Boat"])
    bits = r.closure_bits("Amphibian")
    assert set(ont.uris_from_bits(bits)) >= {"Car", "Boat", "Amphibian"}
    assert r.subsumes("WaterVehicle", "Amphibian")


def test_closure_bits_multiple_inheritance_unions_parents(ont, r):
    ont.add_class("Hybrid", parents=["Car", "Boat"])
    bits = r.closure_bits("Hybrid")
    expected = set(ont.ancestors("Hybrid")) | {"Hybrid"}
    assert set(ont.uris_from_bits(bits)) == expected
