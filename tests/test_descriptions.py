"""Unit tests for the pluggable description models."""

from __future__ import annotations

import pytest

from repro.descriptions.base import DescriptionModel, ModelMatch, ModelRegistry
from repro.descriptions.semantic import SemanticModel
from repro.descriptions.template import TemplateModel, tokenize
from repro.descriptions.uri import UriModel
from repro.errors import UnsupportedModelError
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


@pytest.fixture
def profile():
    return ServiceProfile.build(
        "ground-radar", "ncw:GroundSurveillanceRadarService",
        outputs=["ncw:GroundTrack"], text="surveillance of ground movement",
    )


# -- registry/dispatch ---------------------------------------------------------

def test_model_registry_register_and_get():
    registry = ModelRegistry([UriModel(), TemplateModel()])
    assert registry.supports("uri")
    assert registry.model_ids() == ["template", "uri"]
    assert isinstance(registry.get("uri"), UriModel)


def test_model_registry_unknown_raises():
    registry = ModelRegistry()
    with pytest.raises(UnsupportedModelError):
        registry.get("semantic")


def test_model_registry_discard_counts():
    registry = ModelRegistry([UriModel()])
    assert registry.get_or_discard("nope") is None
    assert registry.get_or_discard(None) is None
    assert registry.discarded_payloads == 2
    assert registry.get_or_discard("uri") is not None
    assert registry.discarded_payloads == 2


def test_model_registry_rejects_empty_id():
    class Bad(DescriptionModel):
        model_id = ""

        def describe(self, profile, endpoint):
            return None

        def query_from(self, request):
            return None

        def evaluate(self, description, query):
            return ModelMatch.no_match()

    with pytest.raises(UnsupportedModelError):
        ModelRegistry([Bad()])


def test_model_registry_replace_plugin():
    registry = ModelRegistry([UriModel()])
    replacement = UriModel()
    registry.register(replacement)
    assert registry.get("uri") is replacement


# -- URI model ------------------------------------------------------------------

def test_uri_exact_match(profile):
    model = UriModel()
    description = model.describe(profile, "svc://x")
    query = model.query_from(
        ServiceRequest.build("ncw:GroundSurveillanceRadarService")
    )
    assert model.evaluate(description, query).matched


def test_uri_no_subsumption(profile):
    """The model's defining weakness: a broader request misses."""
    model = UriModel()
    description = model.describe(profile, "svc://x")
    query = model.query_from(ServiceRequest.build("ncw:RadarService"))
    assert not model.evaluate(description, query).matched


def test_uri_query_falls_back_to_output():
    model = UriModel()
    query = model.query_from(
        ServiceRequest.build(None, outputs=["ncw:GroundTrack"])
    )
    assert query.type_uri == "ncw:GroundTrack"


def test_uri_sizes_are_tiny(profile):
    model = UriModel()
    description = model.describe(profile, "svc://x")
    assert description.size_bytes() < 100


# -- template model ----------------------------------------------------------------

def test_tokenize_camel_case():
    assert tokenize("ncw:GroundTrackService") == \
        frozenset({"ncw", "ground", "track", "service"})


def test_tokenize_punctuation_and_case():
    assert tokenize("Fire-Truck dispatch") == frozenset({"fire", "truck", "dispatch"})


def test_template_all_tokens_must_match(profile):
    model = TemplateModel()
    description = model.describe(profile, "svc://x")
    hit = model.query_from(ServiceRequest.build(None, keywords=["ground", "radar"]))
    miss = model.query_from(ServiceRequest.build(None, keywords=["ground", "naval"]))
    assert model.evaluate(description, hit).matched
    assert not model.evaluate(description, miss).matched


def test_template_empty_query_never_matches(profile):
    model = TemplateModel()
    description = model.describe(profile, "svc://x")
    from repro.descriptions.template import TemplateQuery

    assert not model.evaluate(description, TemplateQuery(frozenset())).matched


def test_template_score_prefers_tight_records(profile):
    model = TemplateModel()
    tight = model.describe(
        ServiceProfile.build("a", "ncw:RadarService"), "svc://a"
    )
    loose = model.describe(
        ServiceProfile.build(
            "b", "ncw:RadarService",
            text="many extra words diluting the keyword bag here",
        ),
        "svc://b",
    )
    query = model.query_from(ServiceRequest.build("ncw:RadarService"))
    assert model.evaluate(tight, query).score > model.evaluate(loose, query).score


def test_template_namespace_prefixes_stripped():
    model = TemplateModel()
    query = model.query_from(ServiceRequest.build("ncw:RadarService"))
    assert "ncw" not in query.tokens


# -- semantic model -----------------------------------------------------------------

def test_semantic_requires_ontology(profile):
    model = SemanticModel()
    assert not model.can_evaluate()
    query = model.query_from(ServiceRequest.build("ncw:RadarService"))
    assert not model.evaluate(profile, query).matched
    assert model.missing_ontology_failures == 1


def test_semantic_attach_ontology_enables(profile):
    model = SemanticModel()
    model.attach_ontology(battlefield_ontology())
    assert model.can_evaluate()
    query = model.query_from(ServiceRequest.build("ncw:RadarService"))
    assert model.evaluate(profile, query).matched


def test_semantic_degree_and_score_populated(profile):
    model = SemanticModel(battlefield_ontology())
    query = model.query_from(
        ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])
    )
    verdict = model.evaluate(profile, query)
    assert verdict.matched
    assert verdict.degree >= 1
    assert 0.0 < verdict.score <= 1.0


def test_semantic_description_is_the_profile(profile):
    model = SemanticModel(battlefield_ontology())
    assert model.describe(profile, "svc://x") is profile


def test_same_capability_three_models_size_ordering(profile):
    """E10's core claim at unit scale: uri << template << semantic."""
    from repro.netsim.messages import estimate_payload_size

    uri = UriModel().describe(profile, "svc://x")
    template = TemplateModel().describe(profile, "svc://x")
    semantic = SemanticModel(battlefield_ontology()).describe(profile, "svc://x")
    sizes = [estimate_payload_size(d) for d in (uri, template, semantic)]
    assert sizes[0] < sizes[1] < sizes[2]
    assert sizes[2] > 10 * sizes[0]
