"""Tests for federation maintenance and forwarding machinery."""

from __future__ import annotations

import pytest

from repro.core import protocol
from repro.core.config import DiscoveryConfig
from repro.core.forwarding import (
    PendingAggregation,
    RingController,
    SeenQueries,
    WalkCoordinator,
)
from repro.core.registry_node import RegistryNode
from repro.core.system import DiscoverySystem, make_models
from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.registry.advertisements import Advertisement
from repro.registry.matching import QueryHit


def _hit(ad_id, degree=1, score=0.5):
    ad = Advertisement(ad_id=ad_id, service_node="n", service_name=ad_id,
                       endpoint="e", model_id="uri", description="d")
    return QueryHit(advertisement=ad, degree=degree, score=score)


@pytest.fixture
def host():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_lan("lan")
    return net.add_node(Node("host"), "lan")


# -- SeenQueries ---------------------------------------------------------------

def test_seen_queries_dedup():
    clock = [0.0]
    seen = SeenQueries(lambda: clock[0])
    assert seen.check_and_mark("q1")
    assert not seen.check_and_mark("q1")
    assert seen.check_and_mark("q2")
    assert "q1" in seen


def test_seen_queries_prunes_old_entries():
    clock = [0.0]
    seen = SeenQueries(lambda: clock[0], retention=10.0)
    for i in range(1100):
        seen.check_and_mark(f"q{i}")
    clock[0] = 100.0
    seen.check_and_mark("fresh")
    assert len(seen) < 1100


# -- PendingAggregation -----------------------------------------------------------

def test_pending_completes_when_all_respond(host):
    done = []
    pending = PendingAggregation(
        host, query_id="q", local_hits=[_hit("ad-local")], outstanding=2,
        timeout=5.0, max_results=None,
        on_complete=lambda hits, responders: done.append((hits, responders)),
    )
    pending.add_response(protocol.ResponsePayload("q", (_hit("ad-a"),), 1))
    assert not pending.done
    pending.add_response(protocol.ResponsePayload("q", (_hit("ad-b"),), 2))
    assert pending.done
    hits, responders = done[0]
    assert {h.advertisement.ad_id for h in hits} == {"ad-local", "ad-a", "ad-b"}
    assert responders == 4  # self + 1 + 2


def test_pending_timeout_completes_with_partial(host):
    done = []
    PendingAggregation(
        host, query_id="q", local_hits=[_hit("ad-local")], outstanding=3,
        timeout=1.0, max_results=None,
        on_complete=lambda hits, responders: done.append(hits),
    )
    host.sim.run(until=2.0)
    assert len(done) == 1
    assert [h.advertisement.ad_id for h in done[0]] == ["ad-local"]


def test_pending_completes_exactly_once(host):
    done = []
    pending = PendingAggregation(
        host, query_id="q", local_hits=[], outstanding=1,
        timeout=1.0, max_results=None,
        on_complete=lambda hits, responders: done.append(1),
    )
    pending.add_response(protocol.ResponsePayload("q", (), 1))
    host.sim.run(until=2.0)  # the timeout must not re-fire
    pending.add_response(protocol.ResponsePayload("q", (), 1))  # stray late reply
    assert done == [1]


def test_pending_applies_response_control(host):
    done = []
    pending = PendingAggregation(
        host, query_id="q", local_hits=[_hit(f"ad-{i}") for i in range(5)],
        outstanding=1, timeout=1.0, max_results=2,
        on_complete=lambda hits, responders: done.append(hits),
    )
    pending.add_response(protocol.ResponsePayload("q", (_hit("ad-x", 3),), 1))
    assert len(done[0]) == 2
    assert done[0][0].advertisement.ad_id == "ad-x"  # highest degree first


# -- RingController ------------------------------------------------------------------

def test_ring_round_ids_differ_per_round():
    payload = protocol.QueryPayload(query_id="q", model_id="uri", query="x")
    ring = RingController(payload=payload, ttls=(0, 1, 2))
    first = ring.round_query_id()
    ring.advance()
    assert ring.round_query_id() != first


def test_ring_satisfied_by_max_results():
    payload = protocol.QueryPayload(query_id="q", model_id="uri", query="x",
                                    max_results=2)
    ring = RingController(payload=payload, ttls=(0, 1))
    ring.record_round([_hit("ad-1")])
    assert not ring.satisfied()
    ring.record_round([_hit("ad-2")])
    assert ring.satisfied()


def test_ring_default_target_is_one_hit():
    payload = protocol.QueryPayload(query_id="q", model_id="uri", query="x")
    ring = RingController(payload=payload, ttls=(0, 1))
    assert not ring.satisfied()
    ring.record_round([_hit("ad-1")])
    assert ring.satisfied()


def test_ring_advance_exhausts():
    payload = protocol.QueryPayload(query_id="q", model_id="uri", query="x")
    ring = RingController(payload=payload, ttls=(0, 2))
    assert ring.advance()
    assert ring.current_ttl() == 2
    assert not ring.advance()


def test_ring_merged_dedupes_across_rounds():
    payload = protocol.QueryPayload(query_id="q", model_id="uri", query="x")
    ring = RingController(payload=payload, ttls=(0, 1))
    ring.record_round([_hit("ad-1")])
    ring.record_round([_hit("ad-1"), _hit("ad-2")])
    assert len(ring.merged()) == 2


# -- WalkCoordinator ---------------------------------------------------------------------

def test_walk_collects_until_end(host):
    done = []
    walk = WalkCoordinator(
        host, query_id="q", local_hits=[_hit("ad-0")], timeout=10.0,
        max_results=None,
        on_complete=lambda hits, responders: done.append((hits, responders)),
    )
    walk.add_hits((_hit("ad-1"),))
    walk.add_hits((_hit("ad-2"),))
    walk.walk_ended()
    hits, responders = done[0]
    assert {h.advertisement.ad_id for h in hits} == {"ad-0", "ad-1", "ad-2"}
    assert responders == 3


def test_walk_timeout_completes(host):
    done = []
    WalkCoordinator(
        host, query_id="q", local_hits=[], timeout=1.0, max_results=None,
        on_complete=lambda hits, responders: done.append(hits),
    )
    host.sim.run(until=2.0)
    assert done == [[]]


def test_walk_ignores_hits_after_done(host):
    done = []
    walk = WalkCoordinator(
        host, query_id="q", local_hits=[], timeout=10.0, max_results=None,
        on_complete=lambda hits, responders: done.append(hits),
    )
    walk.walk_ended()
    walk.add_hits((_hit("ad-late"),))
    walk.walk_ended()
    assert done == [[]]


# -- Federation behaviour (integration-ish, via real registries) ---------------------------

def _two_registries(config=None):
    system = DiscoverySystem(seed=3, config=config)
    system.add_lan("lan-a")
    system.add_lan("lan-b")
    ra = system.add_registry("lan-a")
    rb = system.add_registry("lan-b")
    return system, ra, rb


def test_join_is_bidirectional():
    system, ra, rb = _two_registries()
    system.federate(ra, rb)
    system.run(until=1.0)
    assert rb.node_id in ra.federation.neighbors
    assert ra.node_id in rb.federation.neighbors


def test_same_lan_registries_auto_federate():
    system = DiscoverySystem(seed=3)
    system.add_lan("lan-a")
    r1 = system.add_registry("lan-a")
    r2 = system.add_registry("lan-a")
    system.run(until=2.0)
    assert r2.node_id in r1.federation.neighbors
    assert r1.federation.gateway() == min(r1.node_id, r2.node_id)
    assert r1.federation.is_gateway() or r2.federation.is_gateway()


def test_ping_failure_detector_drops_dead_neighbor():
    config = DiscoveryConfig(ping_interval=1.0, ping_failure_threshold=2)
    system, ra, rb = _two_registries(config)
    system.federate(ra, rb)
    system.run(until=2.0)
    rb.crash()
    system.run_for(10.0)
    assert rb.node_id not in ra.federation.neighbors


def test_reconnect_after_neighbor_loss_keeps_network_connected():
    config = DiscoveryConfig(ping_interval=1.0, ping_failure_threshold=2,
                             signalling_interval=2.0)
    system = DiscoverySystem(seed=3, config=config)
    for i in range(3):
        system.add_lan(f"lan-{i}")
    regs = [system.add_registry(f"lan-{i}") for i in range(3)]
    # Chain: r0 - r1 - r2; killing the middle must trigger r0/r2 to re-wire.
    system.federate_chain()
    system.run(until=6.0)  # let gossip spread knowledge of all three
    regs[1].crash()
    system.run_for(15.0)
    assert regs[2].node_id in regs[0].federation.neighbors \
        or regs[0].node_id in regs[2].federation.neighbors


def test_graceful_leave_removes_link():
    system, ra, rb = _two_registries()
    system.federate(ra, rb)
    system.run(until=1.0)
    ra.federation.leave()
    system.run_for(1.0)
    assert ra.node_id not in rb.federation.neighbors
    assert not ra.federation.neighbors


def test_gossip_spreads_known_registries():
    config = DiscoveryConfig(signalling_interval=1.0)
    system = DiscoverySystem(seed=3, config=config)
    for i in range(3):
        system.add_lan(f"lan-{i}")
    regs = [system.add_registry(f"lan-{i}") for i in range(3)]
    system.federate_chain()  # r0-r1, r1-r2: r0 never directly met r2
    system.run(until=5.0)
    assert regs[2].node_id in regs[0].federation.known


def test_forward_targets_exclude_sender():
    system, ra, rb = _two_registries()
    system.federate(ra, rb)
    system.run(until=1.0)
    assert ra.federation.forward_targets({rb.node_id}) == []
    assert ra.federation.forward_targets(set()) == [rb.node_id]


# -- SeenQueries hard bound ----------------------------------------------------

def test_seen_queries_bounded_by_max_entries():
    clock = [0.0]
    seen = SeenQueries(lambda: clock[0], retention=1000.0, max_entries=10)
    for i in range(25):
        assert seen.check_and_mark(f"q{i}")
    assert len(seen) == 10
    assert seen.evictions == 15
    # The survivors are the most recent ids; the evicted oldest ones
    # would be treated as new again.
    assert "q24" in seen and "q14" not in seen
    assert not seen.check_and_mark("q24")


def test_seen_queries_unbounded_when_disabled():
    clock = [0.0]
    seen = SeenQueries(lambda: clock[0], retention=1000.0, max_entries=None)
    for i in range(2000):
        seen.check_and_mark(f"q{i}")
    assert len(seen) == 2000
    assert seen.evictions == 0


# -- CircuitBreaker flapping ---------------------------------------------------

def test_breaker_flapping_reopens_on_each_failed_probe():
    from repro.core.forwarding import (
        BREAKER_CLOSED,
        BREAKER_HALF_OPEN,
        BREAKER_OPEN,
        CircuitBreaker,
    )

    clock = [0.0]
    breaker = CircuitBreaker(lambda: clock[0], failure_threshold=2,
                             reset_timeout=5.0)
    assert breaker.record_failure() is False
    assert breaker.record_failure() is True  # threshold trips it open
    assert breaker.state == BREAKER_OPEN
    for round_ in range(1, 4):
        # Before the reset timeout nothing gets through.
        clock[0] += 4.9
        assert not breaker.allows()
        # At the timeout one probe is admitted (half-open) ...
        clock[0] += 0.2
        assert breaker.allows()
        assert breaker.state == BREAKER_HALF_OPEN
        # ... and its failure slams the breaker shut again, re-arming
        # the timer from *now* — a flapping neighbor never half-opens
        # its way back to closed.
        assert breaker.record_failure() is True
        assert breaker.state == BREAKER_OPEN
        assert breaker.opened_at == clock[0]
        assert breaker.times_opened == 1 + round_
    # A successful probe finally closes it and clears the count.
    clock[0] += 5.1
    assert breaker.allows()
    assert breaker.record_success() is True
    assert breaker.state == BREAKER_CLOSED
    assert breaker.failures == 0


# -- Federation leave / re-join ------------------------------------------------

def test_leave_and_rejoin_resets_failure_detector_state():
    config = DiscoveryConfig(ping_interval=1.0, ping_failure_threshold=3,
                             breaker_failure_threshold=2)
    system, ra, rb = _two_registries(config)
    system.federate(ra, rb)
    system.run(until=1.0)
    # Accumulate suspicion against rb just short of removal.
    ra.federation._missed_pongs[rb.node_id] = 2
    ra.federation.record_neighbor_failure(rb.node_id)
    assert rb.node_id in ra.federation.breakers
    ra.federation.leave()
    system.run_for(1.0)
    # The links AND the per-neighbor detector state are gone on both
    # sides: nothing stale survives the departure.
    assert not ra.federation.neighbors
    assert rb.node_id not in ra.federation._missed_pongs
    assert not ra.federation.breakers
    assert ra.node_id not in rb.federation.neighbors
    assert ra.node_id not in rb.federation._missed_pongs
    assert ra.node_id not in rb.federation.breakers
    # Re-joining starts from a clean slate ...
    ra.federation.join(rb.node_id)
    system.run_for(1.0)
    assert rb.node_id in ra.federation.neighbors
    assert ra.node_id in rb.federation.neighbors
    # (at most one in-flight ping may be pending at this instant)
    assert ra.federation._missed_pongs.get(rb.node_id, 0) <= 1
    # ... and the link survives pings it would have failed with the
    # stale pre-leave counter still in place.
    system.run_for(3.0)
    assert rb.node_id in ra.federation.neighbors


# -- CircuitBreaker half-open probe stampede -----------------------------------

def test_breaker_half_open_admits_exactly_one_probe():
    from repro.core.forwarding import (
        BREAKER_CLOSED,
        BREAKER_HALF_OPEN,
        BREAKER_OPEN,
        CircuitBreaker,
    )

    clock = [0.0]
    breaker = CircuitBreaker(lambda: clock[0], failure_threshold=2,
                             reset_timeout=5.0)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    clock[0] += 5.0
    # The reset timeout elapses: the FIRST caller gets the probe slot ...
    assert breaker.allows()
    assert breaker.state == BREAKER_HALF_OPEN
    # ... and every concurrent caller is refused while the probe is in
    # flight. The historical bug admitted them all: a fan-out arriving
    # in one batch stampeded a barely-recovered neighbor with N
    # simultaneous "probes".
    assert not breaker.allows()
    assert not breaker.allows()
    # The probe's failure re-opens the breaker and re-arms the timer;
    # the next window again admits exactly one.
    assert breaker.record_failure() is True
    assert breaker.state == BREAKER_OPEN
    clock[0] += 5.0
    assert breaker.allows()
    assert not breaker.allows()
    # A successful probe closes the breaker, clearing the latch: traffic
    # flows freely again.
    assert breaker.record_success() is True
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allows() and breaker.allows()


# -- SeenQueries eviction vs in-flight aggregations ----------------------------

def test_seen_queries_eviction_spares_protected_ids():
    clock = [0.0]
    live = {"q1", "q3"}
    seen = SeenQueries(lambda: clock[0], retention=1000.0, max_entries=4,
                       protected=lambda q: q in live)
    for i in range(1, 5):
        assert seen.check_and_mark(f"q{i}")
    # Table full; the next insert must evict — but the oldest two ids
    # are live aggregations, so the evictor skips to q2. Evicting a
    # live id would let a late duplicate re-enter check_and_mark and
    # double-count into the pending aggregation.
    assert seen.check_and_mark("q5")
    assert "q1" in seen and "q3" in seen
    assert "q2" not in seen
    assert seen.evictions == 1
    # Still-live duplicates stay duplicates even under table pressure.
    assert not seen.check_and_mark("q1")
    assert not seen.check_and_mark("q3")


def test_seen_queries_exceeds_bound_rather_than_evicting_live_ids():
    clock = [0.0]
    seen = SeenQueries(lambda: clock[0], retention=1000.0, max_entries=3,
                       protected=lambda q: True)
    for i in range(6):
        assert seen.check_and_mark(f"q{i}")
    # Every entry is a live aggregation: the hard bound yields (it is
    # transiently exceeded) instead of breaking an in-flight query.
    assert len(seen) == 6
    assert seen.evictions == 0
    assert all(f"q{i}" in seen for i in range(6))


def test_seen_queries_prune_spares_protected_ids():
    clock = [0.0]
    live = {"slow"}
    seen = SeenQueries(lambda: clock[0], retention=10.0, max_entries=None,
                       protected=lambda q: q in live)
    seen.check_and_mark("slow")
    # Enough entries to cross the lazy-prune threshold (the sweep only
    # runs above 1024 entries).
    for i in range(1100):
        seen.check_and_mark(f"fast{i}")
    clock[0] = 60.0  # far past the retention horizon
    seen.check_and_mark("new")
    # The expired-but-live aggregation id survives the prune; the dead
    # ones go.
    assert "slow" in seen
    assert "fast0" not in seen
    assert len(seen) == 2  # slow + new
    assert not seen.check_and_mark("slow")


def test_seen_queries_protected_eviction_at_default_bound():
    # The production configuration: the default 4096-entry bound under a
    # flood, with a handful of in-flight ids scattered through the
    # oldest region of the table.
    clock = [0.0]
    live = {f"live{i}" for i in range(5)}
    seen = SeenQueries(lambda: clock[0], retention=1e9,
                       protected=lambda q: q in live)
    for live_id in sorted(live):
        assert seen.check_and_mark(live_id)
    for i in range(8000):
        assert seen.check_and_mark(f"flood{i}")
    # The bound holds (the evictor takes the oldest *non-protected*
    # entries instead) ...
    assert len(seen) == 4096
    # ... and every live id survived 8000 insertions' worth of eviction
    # pressure; only flood ids were evicted.
    for live_id in live:
        assert live_id in seen
        assert not seen.check_and_mark(live_id)
