"""Quorum-write edge cases for the sharded federation.

Covers the satellite checklist: a publish reaching W acks while one
replica is crashed mid-write, hinted-handoff replay after the replica
restarts (including composition with WAL recovery from the durability
layer), and incarnation fencing of stale shard writes on a rejoining
replica.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import protocol
from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.durability import (
    DurabilityConfig,
    FENCED_MSG_TYPES,
    INCARNATION_HEADER,
)
from repro.core.invariants import (
    assert_invariants,
    check_convergence,
    check_shard_placement,
)
from repro.core.sharding import ShardingConfig
from repro.core.system import DiscoverySystem
from repro.netsim.messages import Envelope
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name):
    return ServiceProfile.build(name, "ncw:RadarService",
                                outputs=["ncw:AirTrack"])


def _cluster(seed=7, *, n=4, r=3, w=2, durable=False, services=4, **overrides):
    """A sharded replicate-ads cluster: one registry per LAN, ring seeds."""
    config = DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=2.0, lease_duration=30.0, purge_interval=2.0,
        query_timeout=2.0, aggregation_timeout=0.3,
        sharding=ShardingConfig(
            enabled=True, replication_factor=r, write_quorum=w,
            quorum_timeout=0.5,
        ),
        durability=DurabilityConfig(enabled=durable),
        **overrides,
    )
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    registries = []
    for i in range(n):
        system.add_lan(f"lan-{i}")
    for i in range(n):
        registries.append(
            system.add_registry(f"lan-{i}", node_id=f"registry-{i:02d}",
                                seeds=(f"registry-{(i + 1) % n:02d}",))
        )
    for i in range(services):
        system.add_service(f"lan-{i % n}", _radar(f"radar-{i}"))
    return system, registries


# -- W acks with a replica crashed mid-publish ------------------------------


def test_publish_reaches_quorum_with_one_replica_down():
    system, registries = _cluster()
    system.run(until=10.0)
    victim = registries[2]
    victim.crash()
    system.run_for(1.0)
    late = system.add_service("lan-0", _radar("late-radar"))
    system.run_for(10.0)
    # W=2 of R=3 is reachable even with the victim in the replica set:
    # every publish must be acked and the service must stay attached.
    assert late._published and all(r.acked for r in late._published.values())
    assert victim.node_id not in late.tracker.excluded
    # The writes the victim missed were buffered as hints.
    assert sum(r.shard.hints_buffered for r in registries) > 0
    assert_invariants(system)


def test_quorum_failure_nacks_and_service_retries():
    # R=3, W=3 with two of four registries down: quorum is unreachable,
    # the publish is NACKed with reason="quorum", and the service keeps
    # retrying on the same coordinator instead of excluding it.
    system, registries = _cluster(w=3)
    system.run(until=10.0)
    registries[2].crash()
    registries[3].crash()
    system.run_for(1.0)
    late = system.add_service("lan-0", _radar("late-radar"))
    system.run_for(6.0)
    coordinator = registries[0]
    assert coordinator.shard.quorum_failed > 0
    assert coordinator.node_id not in late.tracker.excluded
    assert late.publish_retries > 0


# -- hinted handoff replay --------------------------------------------------


def test_hints_replayed_after_replica_restart():
    system, registries = _cluster()
    system.run(until=10.0)
    victim = registries[2]
    victim.crash()
    system.run_for(1.0)
    system.add_service("lan-0", _radar("late-radar"))
    system.run_for(10.0)
    assert sum(r.shard.hints_buffered for r in registries) > 0
    victim.restart()
    system.run_for(15.0)  # pings + anti-entropy rounds trigger the replay
    assert sum(r.shard.hints_replayed for r in registries) > 0
    assert check_shard_placement(system) == []
    assert check_convergence(system) == []
    # The victim holds every advertisement it owns, including the ones
    # published while it was down.
    owned = [
        ad_id
        for other in registries if other is not victim
        for ad_id in (ad.ad_id for ad in other.store.all())
        if victim.shard.owns_local(ad_id)
    ]
    assert owned
    for ad_id in owned:
        assert ad_id in victim.store


def test_hint_replay_composes_with_wal_recovery():
    system, registries = _cluster(durable=True)
    system.run(until=10.0)
    victim = registries[2]
    pre_crash = {ad.ad_id for ad in victim.store.all()}
    assert pre_crash
    victim.crash()
    system.run_for(1.0)
    system.add_service("lan-0", _radar("late-radar"))
    system.run_for(10.0)
    victim.restart()
    # Recovery replays the WAL first (pre-crash ads with live leases come
    # back from disk), then hint replay and anti-entropy deliver only the
    # writes the victim missed while down.
    assert victim.durability.replayed > 0
    system.run_for(15.0)
    assert check_shard_placement(system) == []
    assert check_convergence(system) == []
    # Every ad the victim owns that is still live cluster-wide is back in
    # its store — whether it came from the WAL or a replayed hint.  (Ads
    # whose publisher sat on the victim's own LAN may have lapsed while
    # the registry was down; those legitimately disappear everywhere.)
    held = {ad.ad_id for ad in victim.store.all()}
    live = {
        ad.ad_id
        for other in registries if other is not victim
        for ad in other.store.all()
        if victim.shard.owns_local(ad.ad_id)
    }
    assert live & pre_crash  # pre-crash state actually survived end-to-end
    assert live <= held


def test_remove_tombstone_survives_replica_downtime():
    system, registries = _cluster()
    system.run(until=10.0)
    service = next(
        s for s in system.services if s.lan_name == "lan-0"
    )
    ad_ids = {r.ad_id for r in service._published.values()}
    victim = registries[2]
    victim.crash()
    system.run_for(1.0)
    service.deregister()
    service.crash()  # gone for good: nothing republishes the unacked records
    system.run_for(5.0)
    victim.restart()
    system.run_for(20.0)
    # The remove reached the restarted replica (tombstone hint replay or
    # scoped anti-entropy): nothing resurrects.
    for registry in registries:
        for ad_id in ad_ids:
            assert ad_id not in registry.store


# -- incarnation fencing ----------------------------------------------------


def test_shard_messages_are_fenced_types():
    for msg_type in (
        protocol.SHARD_STORE, protocol.SHARD_STORE_ACK,
        protocol.SHARD_RENEW, protocol.SHARD_RENEW_ACK,
        protocol.SHARD_REMOVE, protocol.SHARD_REMOVE_ACK,
        protocol.SHARD_TRANSFER,
    ):
        assert msg_type in FENCED_MSG_TYPES


def test_stale_epoch_shard_store_fenced_on_rejoining_replica():
    system, registries = _cluster(durable=True)
    system.run(until=10.0)
    receiver = registries[0]
    donor = registries[1]
    ad = next(iter(donor.store.all()))
    stale_entry = protocol.AdForwardPayload(
        advertisement=replace(ad, version=ad.version + 7),
        lease_duration=30.0, epoch=0,
    )

    def shard_store(stamp):
        return Envelope(
            msg_type=protocol.SHARD_STORE, src="registry-09",
            dst=receiver.node_id,
            payload=protocol.ShardStorePayload(request_id="", entry=stale_entry),
            headers={INCARNATION_HEADER: stamp},
        )

    # Learn incarnation 3 from the peer, then replay a pre-crash write
    # stamped 2: it must be dropped before touching the store.
    assert not receiver._fence_stale(shard_store(3))
    fenced_before = receiver.durability.fenced
    version_before = receiver.store.get(ad.ad_id).version \
        if ad.ad_id in receiver.store else None
    receiver.handle_shard_store(shard_store(2))
    assert receiver.durability.fenced == fenced_before + 1
    after = receiver.store.get(ad.ad_id).version \
        if ad.ad_id in receiver.store else None
    assert after == version_before  # the stale write never landed


def test_queries_survive_replica_downtime():
    system, registries = _cluster()
    client = system.add_client("lan-0")
    system.run(until=10.0)
    registries[2].crash()
    call = system.discover(client, REQUEST, timeout=20.0)
    assert call.completed and len(call.hits) == 4
