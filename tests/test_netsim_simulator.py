"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.netsim.simulator import Simulator


def test_time_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_until(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.schedule(2.5, lambda: fired.append(sim.now))
    sim.run(until=2.0)
    assert fired == [1.0]
    assert sim.now == 2.0


def test_run_drains_heap_without_until(sim):
    fired = []
    sim.schedule(3.0, lambda: fired.append("a"))
    sim.schedule(1.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["b", "a"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order(sim):
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, lambda label=label: fired.append(label))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_schedule_with_args(sim):
    got = []
    sim.schedule(0.5, got.append, "value")
    sim.run()
    assert got == ["value"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_firing(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent(sim):
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_events_scheduled_during_run_fire(sim):
    fired = []

    def outer():
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["inner"]
    assert sim.now == 2.0


def test_zero_delay_event_fires_after_current(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, lambda: order.append("chained"))

    sim.schedule(1.0, first)
    sim.schedule(1.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "chained"]


def test_periodic_task_fires_repeatedly(sim):
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_periodic_initial_delay(sim):
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), initial_delay=0.5)
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_stop(sim):
    ticks = []
    handle = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.schedule(2.5, handle.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_periodic_nonpositive_interval_rejected(sim):
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_step_fires_single_event(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert fired == ["a", "b"]
    assert not sim.step()


def test_pending_excludes_cancelled(sim):
    sim.schedule(1.0, lambda: None)
    handle = sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.pending() == 1


def test_max_events_bound(sim):
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_run_advances_to_until_even_without_events(sim):
    sim.run(until=9.0)
    assert sim.now == 9.0


def test_rng_determinism():
    a = Simulator(seed=123)
    b = Simulator(seed=123)
    assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]


def test_clear_drops_pending(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.clear()
    sim.run()
    assert fired == []


def test_reentrant_run_rejected(sim):
    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_step_until_leaves_future_event_queued(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(5.0, lambda: fired.append("b"))
    assert sim.step(until=2.0)
    assert not sim.step(until=2.0)
    assert fired == ["a"]
    assert sim.now == 1.0  # the clock does not jump to the bound
    assert sim.pending() == 1  # the late event is still queued
    assert sim.step()  # and fires once the bound is lifted
    assert fired == ["a", "b"]


def test_step_until_discards_cancelled_events(sim):
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    assert not sim.step(until=2.0)
    assert sim.pending() == 0


def test_advance_to_moves_clock_without_firing(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append("late"))
    sim.advance_to(3.0)
    assert sim.now == 3.0
    assert fired == []


def test_advance_to_refuses_to_skip_pending_event(sim):
    sim.schedule(2.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.advance_to(2.0)


def test_advance_to_refuses_backwards_time(sim):
    sim.run(until=4.0)
    with pytest.raises(SimulationError):
        sim.advance_to(1.0)
