"""Tests for scenario builders, churn wrappers, and query drivers."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.errors import WorkloadError
from repro.workloads.churn import ServiceChurn
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import (
    ScenarioSpec,
    battlefield_scenario,
    build_scenario,
    crisis_scenario,
)
from repro.semantics.generator import battlefield_ontology


def test_crisis_spec_shape():
    spec = crisis_scenario(agencies=3, services_per_lan=2)
    assert len(spec.lan_names) == 3
    assert spec.total_services() == 6
    assert spec.ontology_factory().name == "emergency"


def test_crisis_agency_bounds():
    with pytest.raises(WorkloadError):
        crisis_scenario(agencies=0)
    with pytest.raises(WorkloadError):
        crisis_scenario(agencies=99)


def test_battlefield_spec_shape():
    spec = battlefield_scenario(units=2)
    assert spec.lan_names == ("unit-a", "unit-b")
    assert spec.federation == "chain"


def test_build_scenario_populates_everything():
    spec = crisis_scenario(agencies=2, services_per_lan=2, clients_per_lan=1)
    built = build_scenario(spec)
    assert len(built.registries) == 2
    assert len(built.services) == 4
    assert len(built.clients) == 2
    assert len(built.profiles) == 4
    built.system.run(until=2.0)
    assert all(s.tracker.current for s in built.services)


def test_build_scenario_without_registries():
    spec = crisis_scenario(agencies=1)
    built = build_scenario(spec, with_registries=False)
    assert built.registries == []


def test_build_scenario_unknown_federation():
    spec = ScenarioSpec(
        name="bad", lan_names=("l",), ontology_factory=battlefield_ontology,
        federation="pentagram",
    )
    # A single registry never federates, so the error needs >= 2.
    spec2 = ScenarioSpec(
        name="bad2", lan_names=("l1", "l2"),
        ontology_factory=battlefield_ontology, federation="pentagram",
    )
    with pytest.raises(WorkloadError):
        build_scenario(spec2)


def test_profile_of_lookup():
    built = build_scenario(crisis_scenario(agencies=1, services_per_lan=2))
    name = built.profiles[0].service_name
    assert built.profile_of(name) is built.profiles[0]
    with pytest.raises(WorkloadError):
        built.profile_of("no-such-service")


def test_scenario_determinism():
    a = build_scenario(battlefield_scenario(units=2, seed=5))
    b = build_scenario(battlefield_scenario(units=2, seed=5))
    assert [p.service_name for p in a.profiles] == \
        [p.service_name for p in b.profiles]
    assert [p.category for p in a.profiles] == [p.category for p in b.profiles]


# -- churn ---------------------------------------------------------------------

def test_service_churn_tracks_alive_and_dead():
    built = build_scenario(crisis_scenario(agencies=1, services_per_lan=4))
    system = built.system
    system.run(until=1.0)
    churn = ServiceChurn(system, rate=2.0, permanent=True).start()
    system.run_for(20.0)
    dead = churn.dead_service_names()
    alive = churn.alive_service_names()
    assert dead and alive is not None
    assert dead | alive == {p.service_name for p in built.profiles}
    assert not dead & alive
    assert churn.crash_count() == len(dead)


def test_service_churn_stop_halts_crashes():
    built = build_scenario(crisis_scenario(agencies=1, services_per_lan=4))
    system = built.system
    churn = ServiceChurn(system, rate=5.0, permanent=True).start()
    system.run(until=0.01)
    churn.stop()
    before = churn.crash_count()
    system.run_for(20.0)
    assert churn.crash_count() == before


# -- query workloads ---------------------------------------------------------------

def test_anchored_workload_has_truth():
    built = build_scenario(battlefield_scenario(units=1, services_per_lan=5))
    workload = QueryWorkload.anchored(built.generator, built.profiles, 6)
    assert len(workload) == 6
    assert all(item.relevant for item in workload.labelled)


def test_anchored_workload_applies_cap():
    built = build_scenario(battlefield_scenario(units=1, services_per_lan=5))
    workload = QueryWorkload.anchored(built.generator, built.profiles, 3,
                                      max_results=2)
    assert all(item.request.max_results == 2 for item in workload.labelled)


def test_anchored_workload_requires_profiles():
    built = build_scenario(battlefield_scenario(units=1))
    with pytest.raises(WorkloadError):
        QueryWorkload.anchored(built.generator, [], 3)


def test_driver_plays_and_completes():
    built = build_scenario(battlefield_scenario(units=2, services_per_lan=3))
    workload = QueryWorkload.anchored(built.generator, built.profiles, 5)
    driver = QueryDriver(built.system, workload, interval=0.5, seed=1)
    issued = driver.play(settle=2.0, drain=10.0)
    assert len(issued) == 5
    assert len(driver.completed()) == 5
    assert all(q.call.hits for q in driver.completed())


def test_driver_requires_clients():
    spec = ScenarioSpec(
        name="no-clients", lan_names=("l",),
        ontology_factory=battlefield_ontology, clients_per_lan=0,
        services_per_lan=1,
    )
    built = build_scenario(spec)
    workload = QueryWorkload.anchored(built.generator, built.profiles, 1)
    driver = QueryDriver(built.system, workload)
    with pytest.raises(WorkloadError):
        driver.play()


def test_driver_skips_dead_clients():
    built = build_scenario(battlefield_scenario(units=1, services_per_lan=2,
                                                clients_per_lan=1))
    built.system.run(until=1.0)
    for client in built.clients:
        client.crash()
    workload = QueryWorkload.anchored(built.generator, built.profiles, 3)
    driver = QueryDriver(built.system, workload, interval=0.2, seed=1)
    issued = driver.play(settle=0.5, drain=2.0)
    assert issued == []
