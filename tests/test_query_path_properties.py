"""Property-style correctness battery for the sub-linear query path.

The optimized pipeline — posting-list intersection over closure bitsets,
QoS pre-filtering, and bounded top-k early termination — carries one hard
contract: **bit-identical results to the exhaustive linear scan**. These
tests drive both paths over many seeded random ontologies and stores and
assert, for every request shape the registries serve:

* the intersected candidate set is a superset of the advertisements the
  linear scan accepts (no false negatives, ever);
* capped (top-k early-terminated) rankings equal the exhaustive ranking's
  prefix bit for bit — including QoS-constrained requests, keyword-only
  fallback requests, and requests issued across mid-run ontology growth.
"""

from __future__ import annotations

import random

import pytest

from repro.descriptions.base import ModelRegistry
from repro.descriptions.semantic import SemanticModel
from repro.registry.advertisements import Advertisement
from repro.registry.matching import QueryEvaluator
from repro.registry.store import AdvertisementStore
from repro.semantics.generator import OntologyGenerator, ProfileGenerator
from repro.semantics.ontology import THING
from repro.semantics.profiles import ServiceProfile, ServiceRequest

N_SEEDS = 6
STORE_SIZE = 80


def _ad(index: int, profile: ServiceProfile, version: int = 1) -> Advertisement:
    return Advertisement(
        ad_id=f"ad-{index:06d}",
        service_node=f"svc-node-{index}",
        service_name=profile.service_name,
        endpoint=f"svc://{profile.service_name}",
        model_id="semantic",
        description=profile,
        version=version,
    )


def _request_corpus(gen: ProfileGenerator, profiles, rng: random.Random):
    """Request shapes covering every pipeline branch."""
    anchor = rng.choice(profiles)
    yield gen.request_for(anchor, generalize=0, max_results=3)
    yield gen.request_for(anchor, generalize=1, max_results=5)
    yield gen.request_for(rng.choice(profiles), generalize=2, max_results=1)
    yield gen.random_request(max_results=4)
    # QoS-constrained: some profiles carry the attribute, some do not.
    yield ServiceRequest.build(
        rng.choice(gen.category_pool),
        outputs=[rng.choice(gen.data_pool)],
        qos={"latency_ms": (None, 200.0)},
        max_results=3,
    )
    yield ServiceRequest.build(
        rng.choice(gen.category_pool),
        qos={"confidence": (0.8, None), "coverage_km": (None, 50.0)},
        max_results=5,
    )
    # Keyword-only: the index cannot prune, linear fallback must engage.
    yield ServiceRequest.build(keywords=["service"], max_results=3)
    # Degenerate concept shapes.
    yield ServiceRequest.build(THING, max_results=5)
    yield ServiceRequest.build("gen:NoSuchConcept", outputs=["gen:AlsoMissing"],
                               max_results=2)
    yield ServiceRequest.build(outputs=[rng.choice(gen.data_pool),
                                        rng.choice(gen.data_pool)], max_results=5)


def _rows(hits):
    return [(h.advertisement.ad_id, h.advertisement.version, h.degree, h.score)
            for h in hits]


class _TwinPaths:
    """Indexed and linear evaluators over identical store content."""

    def __init__(self, ontology) -> None:
        self.indexed_store = AdvertisementStore()
        self.linear_store = AdvertisementStore()
        self.indexed_model = SemanticModel(ontology)
        self.linear_model = SemanticModel(ontology)
        self.indexed = QueryEvaluator(
            self.indexed_store, ModelRegistry([self.indexed_model])
        )
        self.linear = QueryEvaluator(
            self.linear_store, ModelRegistry([self.linear_model]), use_indexes=False
        )

    def put(self, ad: Advertisement) -> None:
        self.indexed_store.put(ad)
        self.linear_store.put(ad)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_candidate_superset_and_topk_bit_identical(seed):
    ontology = OntologyGenerator(seed).random_ontology()
    gen = ProfileGenerator(ontology, seed=seed)
    rng = random.Random(1000 + seed)
    paths = _TwinPaths(ontology)
    profiles = gen.profiles(STORE_SIZE)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    index = paths.indexed_store.index_for("semantic")

    for request in _request_corpus(gen, profiles, rng):
        # Superset contract: candidates cover every linear acceptance.
        accepted = {
            f"ad-{i:06d}"
            for i, p in enumerate(profiles)
            if paths.linear_model.matchmaker.match(p, request).matched
        }
        candidates = index.candidate_ids(request)
        if candidates is not None:
            assert accepted <= candidates, (seed, request)
        # Ranked groups agree with the flat candidate set and carry
        # strictly descending upper bounds.
        buckets = index.candidate_buckets(request)
        if candidates is None:
            assert buckets is None
        else:
            seen: list[int] = []
            grouped: set[str] = set()
            for upper_bound, ad_ids in buckets:
                seen.append(upper_bound)
                grouped |= set(ad_ids)
            assert seen == sorted(seen, reverse=True)
            assert grouped == candidates
        # Bit-identical capped ranking, early termination included.
        capped = paths.indexed.evaluate("semantic", request,
                                        max_results=request.max_results)
        exhaustive = paths.linear.evaluate("semantic", request, max_results=None)
        assert _rows(capped) == _rows(exhaustive)[: request.max_results], \
            (seed, request)


@pytest.mark.parametrize("seed", range(3))
def test_topk_identical_under_churn(seed):
    """Removals and version-bump republishes between queries."""
    ontology = OntologyGenerator(30 + seed).random_ontology()
    gen = ProfileGenerator(ontology, seed=30 + seed)
    rng = random.Random(2000 + seed)
    paths = _TwinPaths(ontology)
    profiles = gen.profiles(STORE_SIZE)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    for round_no in range(4):
        for i in rng.sample(range(STORE_SIZE), 10):
            paths.indexed_store.discard(f"ad-{i:06d}")
            paths.linear_store.discard(f"ad-{i:06d}")
        for i in rng.sample(range(STORE_SIZE), 8):
            replacement = gen.random_profile(10_000 * (round_no + 1) + i)
            paths.put(_ad(i, replacement, version=round_no + 2))
        for request in _request_corpus(gen, profiles, rng):
            capped = paths.indexed.evaluate("semantic", request,
                                            max_results=request.max_results)
            exhaustive = paths.linear.evaluate("semantic", request,
                                               max_results=None)
            assert _rows(capped) == _rows(exhaustive)[: request.max_results]


def test_topk_identical_across_mid_run_ontology_growth():
    """Growing the ontology between queries must refresh every cache."""
    ontology = OntologyGenerator(77).random_ontology()
    gen = ProfileGenerator(ontology, seed=77)
    rng = random.Random(77)
    paths = _TwinPaths(ontology)
    profiles = gen.profiles(STORE_SIZE)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    for request in _request_corpus(gen, profiles, rng):
        paths.indexed.evaluate("semantic", request, max_results=request.max_results)
    # Grow: fresh classes under an advertised output and category, then
    # publish ads phrased in the new vocabulary.
    parent_out = profiles[0].outputs[0]
    ontology.add_class("gen:DataGrown", parents=[parent_out])
    ontology.add_class("gen:ServiceGrown", parents=[profiles[0].category])
    grown = ServiceProfile.build("svc-grown", "gen:ServiceGrown",
                                 outputs=["gen:DataGrown"])
    paths.put(_ad(5000, grown))
    probe = ServiceRequest.build(profiles[0].category, outputs=[parent_out],
                                 max_results=10)
    index = paths.indexed_store.index_for("semantic")
    candidates = index.candidate_ids(probe)
    assert candidates is not None and "ad-005000" in candidates
    full_indexed = paths.indexed.evaluate("semantic", probe, max_results=None)
    exhaustive = paths.linear.evaluate("semantic", probe, max_results=None)
    assert _rows(full_indexed) == _rows(exhaustive)
    assert any(h.advertisement.ad_id == "ad-005000" for h in full_indexed)
    capped = paths.indexed.evaluate("semantic", probe, max_results=10)
    assert _rows(capped) == _rows(exhaustive)[:10]
    for request in _request_corpus(gen, profiles, rng):
        capped = paths.indexed.evaluate("semantic", request,
                                        max_results=request.max_results)
        exhaustive = paths.linear.evaluate("semantic", request, max_results=None)
        assert _rows(capped) == _rows(exhaustive)[: request.max_results]


def test_qos_prefilter_rejects_before_scoring():
    """Constraint-failing ads are never semantically scored, hits unchanged."""
    ontology = OntologyGenerator(4).random_ontology()
    gen = ProfileGenerator(ontology, seed=4)
    paths = _TwinPaths(ontology)
    profiles = gen.profiles(40)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    # A constraint no generated profile can satisfy (latency floor above
    # the generator's range) plus one many satisfy.
    impossible = ServiceRequest.build(
        gen.category_pool[0], qos={"latency_ms": (10_000.0, None)}, max_results=5
    )
    evals_before = paths.indexed_model.matchmaker.evaluations
    hits = paths.indexed.evaluate("semantic", impossible, max_results=5)
    assert hits == []
    assert paths.indexed.prefiltered > 0
    assert paths.indexed_model.matchmaker.evaluations == evals_before
    linear_hits = paths.linear.evaluate("semantic", impossible, max_results=5)
    assert linear_hits == []


def test_early_termination_counter_fires():
    """Selective anchored requests must settle before scoring everything."""
    ontology = OntologyGenerator(12).random_ontology()
    gen = ProfileGenerator(ontology, seed=12)
    paths = _TwinPaths(ontology)
    profiles = gen.profiles(400)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    terminated = 0
    for i in range(20):
        request = gen.request_for(profiles[(i * 17) % 400], generalize=1,
                                  max_results=3)
        before = paths.indexed.early_terminations
        capped = paths.indexed.evaluate("semantic", request, max_results=3)
        exhaustive = paths.linear.evaluate("semantic", request, max_results=None)
        assert _rows(capped) == _rows(exhaustive)[:3]
        terminated += paths.indexed.early_terminations - before
    assert terminated > 0
    # Termination must actually save work relative to the linear scan.
    assert paths.indexed.descriptions_evaluated \
        < paths.linear.descriptions_evaluated
