"""Property tests for the consistent-hash ring (sharded federation).

The ring is the contract everything else in :mod:`repro.core.sharding`
leans on: placement must be deterministic across processes and insertion
orders, replica sets must be R distinct members, membership changes must
move only ~K·R/S keys, and load must stay near-uniform. Each property is
asserted over a 10k-key workload at 16 registries — the scale the E21
acceptance criteria quote.
"""

from __future__ import annotations

import pytest

from repro.core.sharding import ConsistentHashRing, ShardingConfig
from repro.errors import ReproError

MEMBERS = tuple(f"registry-{i:02d}" for i in range(16))
KEYS = tuple(f"ad-{k:06d}" for k in range(10_000))
R = 3


def _ring(members=MEMBERS, *, virtual_nodes=64, seed=0):
    ring = ConsistentHashRing(virtual_nodes=virtual_nodes, seed=seed)
    for member in members:
        ring.add(member)
    return ring


def _placement(ring, keys=KEYS, r=R):
    return {key: ring.replicas_for(key, r) for key in keys}


# -- determinism -----------------------------------------------------------


def test_placement_deterministic_across_instances_and_insertion_order():
    a = _ring(MEMBERS)
    b = _ring(tuple(reversed(MEMBERS)))
    assert _placement(a, KEYS[:500]) == _placement(b, KEYS[:500])


def test_seed_changes_placement():
    a = _placement(_ring(seed=0), KEYS[:500])
    b = _placement(_ring(seed=1), KEYS[:500])
    assert a != b


def test_membership_version_bumps_only_on_change():
    ring = _ring(MEMBERS[:2])
    version = ring.version
    assert not ring.add(MEMBERS[0])          # already present, same identity
    assert ring.version == version
    assert ring.add("registry-99")
    assert ring.version == version + 1
    assert ring.remove("registry-99")
    assert not ring.remove("registry-99")    # second removal is a no-op


# -- replica sets ----------------------------------------------------------


def test_replica_sets_are_r_distinct_members():
    ring = _ring()
    for key in KEYS[:2000]:
        replicas = ring.replicas_for(key, R)
        assert len(replicas) == R
        assert len(set(replicas)) == R
        assert set(replicas) <= set(MEMBERS)


def test_small_ring_degrades_to_full_replication():
    ring = _ring(MEMBERS[:2])
    for key in KEYS[:100]:
        assert set(ring.replicas_for(key, R)) == set(MEMBERS[:2])
    assert _ring(()).replicas_for("ad-x", R) == ()


def test_every_replica_set_is_a_replica_group():
    ring = _ring(MEMBERS[:8])
    groups = set(ring.replica_groups(R))
    for key in KEYS[:1000]:
        assert ring.replicas_for(key, R) in groups


def test_partners_are_symmetric():
    ring = _ring(MEMBERS[:8])
    for a in MEMBERS[:8]:
        for b in ring.partners(a, R):
            assert a in ring.partners(b, R)


# -- load uniformity -------------------------------------------------------


def test_uniform_load_at_10k_ads_16_registries():
    ring = _ring()
    counts = dict.fromkeys(MEMBERS, 0)
    for key in KEYS:
        for member in ring.replicas_for(key, R):
            counts[member] += 1
    mean = sum(counts.values()) / len(counts)
    assert max(counts.values()) / mean < 1.35
    assert min(counts.values()) > 0


# -- minimal movement ------------------------------------------------------


def _assignments_gained(before, after):
    """Replica-slot assignments that are new in ``after`` (copies to move)."""
    return sum(len(set(after[k]) - set(before[k])) for k in before)


def test_join_moves_bounded_fraction():
    ring = _ring()
    before = _placement(ring)
    ring.add("registry-16")
    after = _placement(ring)
    bound = len(KEYS) * R / (len(MEMBERS) + 1) * 1.25  # K·R/S plus slack
    assert _assignments_gained(before, after) <= bound


def test_leave_moves_bounded_fraction():
    ring = _ring()
    before = _placement(ring)
    ring.remove(MEMBERS[0])
    after = _placement(ring)
    bound = len(KEYS) * R / len(MEMBERS) * 1.25
    assert _assignments_gained(before, after) <= bound


def test_ring_identity_inheritance_moves_no_other_keys():
    """A member registered under a dead peer's ring identity occupies its
    exact positions: every key the dead member owned is owned by the heir,
    and no key between two *other* members moved (the standby-promotion
    satellite regression)."""
    ring = _ring(MEMBERS[:8])
    before = _placement(ring, KEYS[:2000])
    ring.remove(MEMBERS[3])
    ring.add("standby-77", MEMBERS[3])
    after = _placement(ring, KEYS[:2000])
    renamed = {
        key: tuple("standby-77" if m == MEMBERS[3] else m for m in replicas)
        for key, replicas in before.items()
    }
    assert after == renamed


# -- config validation -----------------------------------------------------


def test_sharding_config_validation():
    with pytest.raises(ReproError):
        ShardingConfig(enabled=True, replication_factor=0)
    with pytest.raises(ReproError):
        ShardingConfig(enabled=True, replication_factor=3, write_quorum=4)
    with pytest.raises(ReproError):
        ShardingConfig(enabled=True, write_quorum=0)
    with pytest.raises(ReproError):
        ShardingConfig(enabled=True, virtual_nodes=0)
    with pytest.raises(ReproError):
        ShardingConfig(enabled=True, quorum_timeout=0.0)
    with pytest.raises(ReproError):
        ShardingConfig(enabled=True, handoff_limit=-1)
    assert not ShardingConfig().enabled  # default off
