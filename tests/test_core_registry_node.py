"""Tests for the registry node: publish/renew/remove/purge/query/replicate."""

from __future__ import annotations

import pytest

from repro.core import protocol
from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.netsim.node import Node
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


class Probe(Node):
    """A bare node capturing everything sent to it."""

    def __init__(self, node_id="probe"):
        super().__init__(node_id)
        self.inbox = []

    def handle_message(self, envelope):
        self.inbox.append(envelope)

    def receive(self, envelope):  # capture typed messages too
        if self.alive:
            self.inbox.append(envelope)

    def of_type(self, msg_type):
        return [e for e in self.inbox if e.msg_type == msg_type]


@pytest.fixture
def setup():
    ontology = battlefield_ontology()
    system = DiscoverySystem(
        seed=11, ontology=ontology,
        config=DiscoveryConfig(lease_duration=10.0, purge_interval=1.0,
                               beacon_interval=None),
    )
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    probe = Probe()
    system.network.add_node(probe, "lan-0")
    system.run(until=0.5)
    return system, registry, probe


def _uri_description(type_uri="ncw:RadarService", name="radar-1"):
    from repro.descriptions.uri import UriDescription

    return UriDescription(type_uri=type_uri, endpoint=f"svc://{name}",
                          service_name=name)


def _publish(probe, registry, *, ad_id="", name="radar-1", model_id="uri",
             description=None):
    if description is None:
        description = _uri_description(name=name)
    probe.send(
        registry.node_id,
        protocol.PUBLISH,
        protocol.PublishPayload(
            service_node=probe.node_id,
            service_name=name,
            endpoint=f"svc://{name}",
            model_id=model_id,
            description=description,
            ad_id=ad_id,
        ),
    )


def test_publish_stores_and_acks_with_lease(setup):
    system, registry, probe = setup
    _publish(probe, registry)
    system.run_for(0.5)
    acks = probe.of_type(protocol.PUBLISH_ACK)
    assert len(acks) == 1
    ack = acks[0].payload
    assert ack.lease_id
    assert ack.model_id == "uri"
    assert len(registry.store) == 1
    assert registry.rim.publishes == 1


def test_republish_with_ad_id_bumps_version(setup):
    system, registry, probe = setup
    _publish(probe, registry)
    system.run_for(0.5)
    ad_id = probe.of_type(protocol.PUBLISH_ACK)[0].payload.ad_id
    updated = _uri_description(type_uri="ncw:SensorService")
    _publish(probe, registry, ad_id=ad_id, description=updated)
    system.run_for(0.5)
    ad = registry.store.get(ad_id)
    assert ad.version == 2
    assert ad.description == updated
    assert len(registry.store) == 1


def test_unsupported_model_publish_discarded(setup):
    system, registry, probe = setup
    _publish(probe, registry, model_id="wsml")
    system.run_for(0.5)
    assert probe.of_type(protocol.PUBLISH_ACK) == []
    assert len(registry.store) == 0
    assert registry.models.discarded_payloads == 1


def test_lease_expiry_purges_advertisement(setup):
    system, registry, probe = setup
    _publish(probe, registry)
    system.run_for(0.5)
    assert len(registry.store) == 1
    system.run_for(12.0)  # lease 10s, no renewals
    assert len(registry.store) == 0
    assert registry.rim.removals == 1


def test_renew_keeps_advertisement_alive(setup):
    system, registry, probe = setup
    _publish(probe, registry)
    system.run_for(0.5)
    ack = probe.of_type(protocol.PUBLISH_ACK)[0].payload
    for _ in range(4):
        system.run_for(4.0)
        probe.send(registry.node_id, protocol.RENEW,
                   protocol.RenewPayload(lease_id=ack.lease_id, ad_id=ack.ad_id))
    system.run_for(1.0)
    assert len(registry.store) == 1
    assert probe.of_type(protocol.RENEW_ACK)


def test_renew_unknown_lease_nacked(setup):
    system, registry, probe = setup
    probe.send(registry.node_id, protocol.RENEW,
               protocol.RenewPayload(lease_id="lease-bogus", ad_id="ad-bogus"))
    system.run_for(0.5)
    assert probe.of_type(protocol.RENEW_NACK)


def test_remove_deletes_and_acks(setup):
    system, registry, probe = setup
    _publish(probe, registry)
    system.run_for(0.5)
    ad_id = probe.of_type(protocol.PUBLISH_ACK)[0].payload.ad_id
    probe.send(registry.node_id, protocol.REMOVE,
               protocol.RemovePayload(ad_id=ad_id))
    system.run_for(0.5)
    assert len(registry.store) == 0
    assert probe.of_type(protocol.REMOVE_ACK)


def test_query_returns_ranked_hits(setup):
    system, registry, probe = setup
    _publish(probe, registry, name="radar-1")
    system.run_for(0.5)
    from repro.descriptions.uri import UriQuery

    probe.send(
        registry.node_id,
        protocol.QUERY,
        protocol.QueryPayload(query_id="q1", model_id="uri",
                              query=UriQuery("ncw:RadarService")),
    )
    system.run_for(0.5)
    responses = probe.of_type(protocol.QUERY_RESPONSE)
    assert len(responses) == 1
    hits = responses[0].payload.hits
    assert [h.advertisement.service_name for h in hits] == ["radar-1"]


def test_duplicate_query_from_client_ignored(setup):
    system, registry, probe = setup
    from repro.descriptions.uri import UriQuery

    payload = protocol.QueryPayload(query_id="q-dup", model_id="uri",
                                    query=UriQuery("x"))
    probe.send(registry.node_id, protocol.QUERY, payload)
    probe.send(registry.node_id, protocol.QUERY, payload)
    system.run_for(0.5)
    assert len(probe.of_type(protocol.QUERY_RESPONSE)) == 1


def test_probe_reply_describes_registry(setup):
    system, registry, probe = setup
    probe.multicast(protocol.REGISTRY_PROBE)
    system.run_for(0.5)
    replies = probe.of_type(protocol.REGISTRY_PROBE_REPLY)
    assert len(replies) == 1
    desc = replies[0].payload
    assert desc.registry_id == registry.node_id
    assert "semantic" in desc.supported_models
    assert "battlefield" in desc.artifact_names


def test_artifact_request_served_and_missing(setup):
    system, registry, probe = setup
    probe.send(registry.node_id, protocol.ARTIFACT_REQUEST,
               protocol.ArtifactRequestPayload(artifact_name="battlefield"))
    probe.send(registry.node_id, protocol.ARTIFACT_REQUEST,
               protocol.ArtifactRequestPayload(artifact_name="nonexistent"))
    system.run_for(0.5)
    replies = probe.of_type(protocol.ARTIFACT_REPLY)
    assert len(replies) == 2
    by_name = {r.payload.artifact_name: r.payload for r in replies}
    assert by_name["battlefield"].found
    assert not by_name["nonexistent"].found
    assert registry.repository.requests_served == 1
    assert registry.repository.requests_missed == 1


def test_registry_crash_loses_soft_state_and_restart_rebootstraps(setup):
    system, registry, probe = setup
    _publish(probe, registry)
    system.run_for(0.5)
    assert len(registry.store) == 1
    registry.crash()
    registry.restart()
    assert len(registry.store) == 0
    assert len(registry.federation.neighbors) == 0


def test_replication_pushes_to_neighbors():
    ontology = battlefield_ontology()
    system = DiscoverySystem(
        seed=12, ontology=ontology,
        config=DiscoveryConfig(cooperation=COOPERATION_REPLICATE_ADS,
                               default_ttl=0),
    )
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    ra = system.add_registry("lan-0")
    rb = system.add_registry("lan-1")
    system.federate(ra, rb)
    profile = ServiceProfile.build("radar", "ncw:RadarService",
                                   outputs=["ncw:AirTrack"])
    system.add_service("lan-0", profile)
    system.run(until=3.0)
    assert len(rb.store) == len(ra.store) > 0


def test_replication_late_joiner_catches_up():
    ontology = battlefield_ontology()
    system = DiscoverySystem(
        seed=13, ontology=ontology,
        config=DiscoveryConfig(cooperation=COOPERATION_REPLICATE_ADS,
                               default_ttl=0),
    )
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    ra = system.add_registry("lan-0")
    profile = ServiceProfile.build("radar", "ncw:RadarService",
                                   outputs=["ncw:AirTrack"])
    system.add_service("lan-0", profile)
    system.run(until=3.0)
    rb = system.add_registry("lan-1")
    system.federate(ra, rb)
    system.run_for(2.0)
    assert len(rb.store) == len(ra.store) > 0


def test_decentral_query_answered_by_registry(setup):
    system, registry, probe = setup
    ontology = battlefield_ontology()
    profile = ServiceProfile.build("radar", "ncw:RadarService",
                                   outputs=["ncw:AirTrack"])
    system.add_service("lan-0", profile)
    system.run_for(1.0)
    model = registry.models.get("semantic")
    query = model.query_from(ServiceRequest.build("ncw:SensorService"))
    probe.multicast(
        protocol.DECENTRAL_QUERY,
        protocol.QueryPayload(query_id="dq", model_id="semantic", query=query),
    )
    system.run_for(0.5)
    responses = probe.of_type(protocol.DECENTRAL_RESPONSE)
    # Registry answers from its store; the service node answers for itself.
    assert len(responses) >= 2
