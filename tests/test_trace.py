"""Tests for recorded dynamics traces (record/replay transience)."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.errors import WorkloadError
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile
from repro.workloads.trace import (
    DynamicsTrace,
    OP_CRASH,
    OP_MOVE,
    OP_RESTART,
    TraceEvent,
)


def test_churn_trace_deterministic():
    a = DynamicsTrace.churn(n_services=5, rate=0.5, window=60.0, seed=9)
    b = DynamicsTrace.churn(n_services=5, rate=0.5, window=60.0, seed=9)
    assert a.events == b.events
    c = DynamicsTrace.churn(n_services=5, rate=0.5, window=60.0, seed=10)
    assert a.events != c.events


def test_churn_trace_sorted_and_in_window():
    trace = DynamicsTrace.churn(n_services=4, rate=1.0, window=30.0, seed=1,
                                start=5.0)
    times = [e.time for e in trace.events]
    assert times == sorted(times)
    assert all(5.0 <= t < 35.0 for t in times)


def test_permanent_churn_never_restarts_same_index_twice():
    trace = DynamicsTrace.churn(n_services=3, rate=5.0, window=60.0, seed=2)
    assert all(e.op == OP_CRASH for e in trace.events)
    crashed = [e.index for e in trace.events]
    assert len(crashed) == len(set(crashed)) <= 3


def test_transient_churn_interleaves_restarts():
    trace = DynamicsTrace.churn(n_services=3, rate=1.0, window=120.0, seed=3,
                                mean_downtime=5.0)
    ops = {e.op for e in trace.events}
    assert ops == {OP_CRASH, OP_RESTART}
    # dead_indexes reflects the crash/restart interleaving.
    assert trace.dead_indexes(0.0) == frozenset()


def test_churn_trace_validation():
    with pytest.raises(WorkloadError):
        DynamicsTrace.churn(n_services=0, rate=1.0, window=10.0)
    with pytest.raises(WorkloadError):
        DynamicsTrace.churn(n_services=2, rate=0.0, window=10.0)


def test_roaming_trace_targets_known_lans():
    trace = DynamicsTrace.roaming(n_services=4, lans=("a", "b"),
                                  interval=5.0, window=30.0, seed=4)
    assert len(trace) == 6
    assert all(e.op == OP_MOVE and e.lan in ("a", "b") for e in trace.events)


def test_roaming_requires_two_lans():
    with pytest.raises(WorkloadError):
        DynamicsTrace.roaming(n_services=2, lans=("only",), interval=1.0,
                              window=5.0)


def _system(n_services=3):
    config = DiscoveryConfig(lease_duration=5.0, purge_interval=1.0,
                             beacon_interval=1.0)
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    for i in range(n_services):
        system.add_service("lan-0", ServiceProfile.build(
            f"radar-{i}", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    return system


def test_apply_crashes_the_right_services():
    system = _system()
    trace = DynamicsTrace(events=[
        TraceEvent(time=2.0, op=OP_CRASH, index=1),
        TraceEvent(time=3.0, op=OP_CRASH, index=2),
        TraceEvent(time=4.0, op=OP_RESTART, index=1),
    ])
    trace.apply(system)
    system.run(until=3.5)
    assert not system.services[1].alive
    assert not system.services[2].alive
    assert system.services[0].alive
    system.run(until=5.0)
    assert system.services[1].alive


def test_apply_moves_services():
    system = _system(n_services=1)
    system.add_lan("lan-1")
    system.add_registry("lan-1")
    trace = DynamicsTrace(events=[
        TraceEvent(time=3.0, op=OP_MOVE, index=0, lan="lan-1"),
    ])
    trace.apply(system)
    system.run(until=6.0)
    assert system.services[0].lan_name == "lan-1"


def test_apply_rejects_out_of_range_index():
    system = _system(n_services=1)
    trace = DynamicsTrace(events=[TraceEvent(time=1.0, op=OP_CRASH, index=5)])
    with pytest.raises(WorkloadError):
        trace.apply(system)


def test_apply_rejects_unknown_op():
    system = _system(n_services=1)
    trace = DynamicsTrace(events=[TraceEvent(time=1.0, op="explode", index=0)])
    with pytest.raises(WorkloadError):
        trace.apply(system)


def test_same_trace_on_two_systems_is_identical_dynamics():
    trace = DynamicsTrace.churn(n_services=3, rate=0.5, window=40.0, seed=6)

    def dead_after(system):
        trace.apply(system)
        system.run(until=60.0)
        return frozenset(i for i, s in enumerate(system.services)
                         if not s.alive)

    assert dead_after(_system()) == dead_after(_system()) == \
        trace.dead_indexes(float("inf"))


def test_crash_count():
    trace = DynamicsTrace.churn(n_services=3, rate=2.0, window=60.0, seed=7)
    assert trace.crash_count() == len(trace.events) == 3
