"""Unit tests for crash schedules, churn, and attack plans."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.netsim.failures import AttackSchedule, ChurnProcess, CrashSchedule
from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator


@pytest.fixture
def net():
    network = Network(Simulator(seed=5))
    network.add_lan("lan")
    for i in range(6):
        network.add_node(Node(f"n{i}"), "lan")
    return network


def test_crash_schedule_crashes_and_restarts(net):
    schedule = CrashSchedule(net.sim, net)
    schedule.crash_at(1.0, "n0")
    schedule.restart_at(2.0, "n0")
    net.sim.run(until=1.5)
    assert not net.node("n0").alive
    net.sim.run(until=2.5)
    assert net.node("n0").alive
    assert [e.kind for e in schedule.history] == ["crash", "restart"]


def test_churn_crashes_pool_members(net):
    churn = ChurnProcess(net.sim, net, [f"n{i}" for i in range(6)],
                         rate=1.0, mean_downtime=100.0).start()
    net.sim.run(until=10.0)
    assert churn.crashes() > 0
    assert any(not net.node(f"n{i}").alive for i in range(6))


def test_churn_restarts_after_downtime(net):
    churn = ChurnProcess(net.sim, net, ["n0"], rate=5.0, mean_downtime=0.5).start()
    net.sim.run(until=30.0)
    restarts = sum(1 for e in churn.history if e.kind == "restart")
    assert restarts > 0


def test_permanent_churn_never_restarts(net):
    churn = ChurnProcess(net.sim, net, [f"n{i}" for i in range(6)],
                         rate=2.0, permanent=True).start()
    net.sim.run(until=30.0)
    assert all(e.kind == "crash" for e in churn.history)
    assert churn.crashes() == 6  # pool exhausted, no one comes back


def test_churn_stop(net):
    churn = ChurnProcess(net.sim, net, ["n0", "n1"], rate=10.0,
                         permanent=True).start()
    net.sim.run(until=0.01)
    churn.stop()
    before = churn.crashes()
    net.sim.run(until=20.0)
    assert churn.crashes() == before


def test_churn_rejects_bad_rate(net):
    with pytest.raises(SimulationError):
        ChurnProcess(net.sim, net, ["n0"], rate=0.0)


def test_churn_determinism():
    def run(seed):
        network = Network(Simulator(seed=seed))
        network.add_lan("lan")
        for i in range(6):
            network.add_node(Node(f"n{i}"), "lan")
        churn = ChurnProcess(network.sim, network,
                             [f"n{i}" for i in range(6)], rate=1.0).start()
        network.sim.run(until=20.0)
        return [(e.time, e.kind, e.node_id) for e in churn.history]

    assert run(9) == run(9)
    assert run(9) != run(10)


def test_attack_random_plan_is_permutation(net):
    attack = AttackSchedule(sim=net.sim, network=net,
                            targets=[f"n{i}" for i in range(6)],
                            strategy="random")
    plan = attack.plan()
    assert sorted(plan) == [f"n{i}" for i in range(6)]


def test_attack_targeted_orders_by_value(net):
    value = {"n0": 1.0, "n1": 5.0, "n2": 3.0}
    attack = AttackSchedule(sim=net.sim, network=net,
                            targets=["n0", "n1", "n2"],
                            strategy="targeted",
                            value=lambda nid: value[nid])
    assert attack.plan() == ["n1", "n2", "n0"]


def test_attack_targeted_ties_break_by_id(net):
    attack = AttackSchedule(sim=net.sim, network=net,
                            targets=["n2", "n0", "n1"], strategy="targeted")
    assert attack.plan() == ["n0", "n1", "n2"]


def test_attack_launch_crashes_in_order(net):
    attack = AttackSchedule(sim=net.sim, network=net,
                            targets=["n0", "n1"], strategy="targeted",
                            interval=1.0, start_time=1.0)
    order = attack.launch()
    net.sim.run(until=1.5)
    assert not net.node(order[0]).alive
    assert net.node(order[1]).alive
    net.sim.run(until=3.0)
    assert not net.node(order[1]).alive


def test_attack_unknown_strategy(net):
    attack = AttackSchedule(sim=net.sim, network=net,
                            targets=["n0"], strategy="nuke")
    with pytest.raises(SimulationError):
        attack.plan()
