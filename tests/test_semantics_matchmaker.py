"""Unit tests for the degree-of-match matchmaker."""

from __future__ import annotations

import pytest

from repro.semantics.matchmaker import DegreeOfMatch, Matchmaker
from repro.semantics.ontology import Ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest
from repro.semantics.reasoner import Reasoner


@pytest.fixture
def ont():
    o = Ontology("mm")
    o.add_subtree("Service", {
        "SensorService": {"RadarService": {"AirRadarService": {}}},
        "MapService": {},
    })
    o.add_subtree("Data", {
        "Track": {"AirTrack": {}, "GroundTrack": {}},
        "Map": {},
    })
    return o


@pytest.fixture
def mm(ont):
    return Matchmaker(Reasoner(ont))


def _profile(category="RadarService", outputs=("AirTrack",), inputs=(), qos=None):
    return ServiceProfile.build(
        "svc", category, inputs=list(inputs), outputs=list(outputs), qos=qos or {}
    )


# -- concept degrees --------------------------------------------------------

def test_exact_same_concept(mm):
    assert mm.concept_degree("Track", "Track") is DegreeOfMatch.EXACT


def test_exact_direct_subclass_rule(mm):
    # Requested is a DIRECT subclass of advertised: Paolucci's exact case.
    assert mm.concept_degree("AirTrack", "Track") is DegreeOfMatch.EXACT


def test_plugin_when_advertised_more_general(mm):
    # Advertised subsumes requested from further away.
    assert mm.concept_degree("AirRadarService", "SensorService") is DegreeOfMatch.PLUGIN


def test_subsumes_when_advertised_more_specific(mm):
    assert mm.concept_degree("Track", "AirTrack") is DegreeOfMatch.SUBSUMES


def test_fail_when_unrelated(mm):
    assert mm.concept_degree("Track", "Map") is DegreeOfMatch.FAIL


def test_fail_when_concept_unknown(mm):
    assert mm.concept_degree("Track", "alien:Thing") is DegreeOfMatch.FAIL
    assert mm.concept_degree("alien:Thing", "Track") is DegreeOfMatch.FAIL


def test_degree_ordering():
    assert DegreeOfMatch.EXACT > DegreeOfMatch.PLUGIN > DegreeOfMatch.SUBSUMES \
        > DegreeOfMatch.FAIL


# -- profile-level matching ---------------------------------------------------

def test_exact_match_full_profile(mm):
    request = ServiceRequest.build("RadarService", outputs=["AirTrack"])
    result = mm.match(_profile(), request)
    assert result.degree is DegreeOfMatch.EXACT
    assert result.matched


def test_generalized_request_matches_special_service(mm):
    # Ask for SensorService/Track, advertised RadarService/AirTrack.
    request = ServiceRequest.build("SensorService", outputs=["Track"])
    result = mm.match(_profile(), request)
    assert result.matched
    # Category: RadarService is a direct subclass of... requested
    # SensorService subsumes advertised RadarService (direct child =>
    # Paolucci exact is requested-direct-subclass-of-advertised, which is
    # the other direction) -> SUBSUMES here; outputs likewise.
    assert result.degree >= DegreeOfMatch.SUBSUMES


def test_every_requested_output_must_be_served(mm):
    request = ServiceRequest.build(None, outputs=["AirTrack", "Map"])
    result = mm.match(_profile(outputs=("AirTrack",)), request)
    assert result.degree is DegreeOfMatch.FAIL


def test_weakest_link_degree(mm):
    # One requested output exact (AirTrack), the other (Track) only
    # satisfied by more-specific advertised outputs => SUBSUMES; the
    # overall output degree is the weakest link.
    request = ServiceRequest.build(None, outputs=["AirTrack", "Track"])
    profile = _profile(outputs=("AirTrack", "GroundTrack"))
    result = mm.match(profile, request)
    assert result.output_degree is DegreeOfMatch.SUBSUMES
    assert result.matched


def test_unrelated_category_fails(mm):
    request = ServiceRequest.build("MapService", outputs=["AirTrack"])
    result = mm.match(_profile(), request)
    assert not result.matched


def test_input_direction(mm):
    # The service requires a Track input; client provides AirTrack (more
    # specific) — acceptable.
    request = ServiceRequest.build("RadarService", inputs=["AirTrack"])
    profile = _profile(inputs=("Track",))
    assert mm.match(profile, request).matched
    # Client provides something unrelated: fail.
    request_bad = ServiceRequest.build("RadarService", inputs=["Map"])
    assert not mm.match(profile, request_bad).matched


def test_no_declared_inputs_is_unconstrained(mm):
    request = ServiceRequest.build("RadarService")
    profile = _profile(inputs=("Track",))
    assert mm.match(profile, request).matched


def test_qos_constraint_filters(mm):
    profile = _profile(qos={"latency_ms": 200.0})
    ok = ServiceRequest.build("RadarService", qos={"latency_ms": (None, 500.0)})
    bad = ServiceRequest.build("RadarService", qos={"latency_ms": (None, 100.0)})
    assert mm.match(profile, ok).matched
    result = mm.match(profile, bad)
    assert not result.matched
    assert result.failed_constraints == ("latency_ms",)


def test_missing_qos_attribute_fails_constraint(mm):
    profile = _profile()  # no QoS at all
    request = ServiceRequest.build("RadarService", qos={"latency_ms": (None, 100.0)})
    assert not mm.match(profile, request).matched


def test_rank_orders_by_degree_then_score(mm):
    exact = ServiceProfile.build("exact", "RadarService", outputs=["AirTrack"])
    general = ServiceProfile.build("general", "SensorService", outputs=["Track"])
    request = ServiceRequest.build("RadarService", outputs=["AirTrack"])
    ranked = mm.rank([general, exact], request)
    assert [r.profile.service_name for r in ranked][0] == "exact"


def test_rank_limit_is_response_control(mm):
    profiles = [
        ServiceProfile.build(f"svc-{i}", "RadarService", outputs=["AirTrack"])
        for i in range(10)
    ]
    request = ServiceRequest.build("RadarService")
    assert len(mm.rank(profiles, request, limit=3)) == 3
    assert len(mm.rank(profiles, request)) == 10


def test_rank_excludes_failures(mm):
    bad = ServiceProfile.build("bad", "MapService", outputs=["Map"])
    request = ServiceRequest.build("RadarService", outputs=["AirTrack"])
    assert mm.rank([bad], request) == []


def test_rank_deterministic_tie_break(mm):
    twins = [
        ServiceProfile.build(name, "RadarService", outputs=["AirTrack"])
        for name in ("b-svc", "a-svc")
    ]
    request = ServiceRequest.build("RadarService")
    ranked = mm.rank(twins, request)
    assert [r.profile.service_name for r in ranked] == ["a-svc", "b-svc"]


def test_score_in_unit_interval(mm):
    request = ServiceRequest.build("SensorService", outputs=["Track"])
    result = mm.match(_profile(), request)
    assert 0.0 <= result.score <= 1.0


def test_evaluation_counter(mm):
    before = mm.evaluations
    mm.match(_profile(), ServiceRequest.build("RadarService"))
    assert mm.evaluations == before + 1
