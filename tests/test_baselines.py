"""Tests for the UDDI, WS-Discovery, and cluster baselines."""

from __future__ import annotations

import pytest

from repro.baselines.cluster import build_cluster_system, cluster_config
from repro.baselines.uddi import UddiSystem, build_uddi_system, uddi_config
from repro.baselines.wsdiscovery import (
    build_wsdiscovery_system,
    wsdiscovery_config,
)
from repro.semantics.generator import emergency_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ems:MedicalService", outputs=["ems:Location"])


def _ambulance(name="ambu"):
    return ServiceProfile.build(name, "ems:AmbulanceDispatchService",
                                outputs=["ems:UnitLocation"])


# -- UDDI ---------------------------------------------------------------------

def test_uddi_config_shape():
    config = uddi_config()
    assert not config.leasing_enabled
    assert config.beacon_interval is None
    assert not config.fallback_enabled


def test_uddi_basic_discovery():
    system = build_uddi_system(seed=1, ontology=emergency_ontology(),
                               lans=("lan-0", "lan-1"))
    system.add_service("lan-1", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.service_names() == ["ambu"]


def test_uddi_single_registry_enforced():
    system = build_uddi_system(seed=1, ontology=emergency_ontology())
    with pytest.raises(ValueError):
        system.add_registry("lan-0")


def test_uddi_requires_registry_before_clients():
    system = UddiSystem(seed=1, ontology=emergency_ontology())
    system.add_lan("lan-0")
    with pytest.raises(ValueError):
        system.add_client("lan-0")


def test_uddi_ignores_probes():
    """No dynamic registry discovery: probes go unanswered."""
    system = build_uddi_system(seed=1, ontology=emergency_ontology())
    system.run(until=2.0)
    from repro.core import protocol

    assert system.traffic()["messages_sent"] == 0 or \
        system.network.stats.by_type_count[protocol.REGISTRY_PROBE_REPLY] == 0


def test_uddi_stale_ads_after_service_crash():
    """The paper's core criticism: no aliveness information."""
    system = build_uddi_system(seed=1, ontology=emergency_ontology())
    service = system.add_service("lan-0", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    service.crash()
    system.run_for(300.0)
    call = system.discover(client, REQUEST)
    assert call.service_names() == ["ambu"]  # stale hit for a dead service


def test_uddi_explicit_deregistration_works():
    system = build_uddi_system(seed=1, ontology=emergency_ontology())
    service = system.add_service("lan-0", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    service.deregister()
    system.run_for(1.0)
    call = system.discover(client, REQUEST)
    assert call.hits == []


def test_uddi_registry_crash_kills_discovery():
    system = build_uddi_system(seed=1, ontology=emergency_ontology())
    system.add_service("lan-0", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    system.registry.crash()
    call = system.discover(client, REQUEST, timeout=60.0)
    assert call.completed
    assert call.hits == []  # no fallback in UDDI deployments


# -- WS-Discovery ----------------------------------------------------------------

def test_wsd_adhoc_discovery_no_registries():
    system = build_wsdiscovery_system(seed=2, ontology=emergency_ontology())
    system.add_service("lan-0", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.via == "fallback"
    assert call.service_names() == ["ambu"]
    assert system.registries == []


def test_wsd_adhoc_always_fresh():
    system = build_wsdiscovery_system(seed=2, ontology=emergency_ontology())
    service = system.add_service("lan-0", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    service.crash()
    call = system.discover(client, REQUEST)
    assert call.hits == []  # dead services simply do not answer


def test_wsd_managed_uses_proxy():
    system = build_wsdiscovery_system(seed=2, ontology=emergency_ontology(),
                                      managed=True)
    system.add_service("lan-0", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.via.startswith("registry:wsd-proxy")
    assert call.service_names() == ["ambu"]


def test_wsd_proxy_has_no_leasing_so_goes_stale():
    system = build_wsdiscovery_system(seed=2, ontology=emergency_ontology(),
                                      managed=True)
    service = system.add_service("lan-0", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    service.crash()
    system.run_for(300.0)
    call = system.discover(client, REQUEST)
    assert call.service_names() == ["ambu"]  # the documented shortcoming


def test_wsd_response_implosion_grows_with_providers():
    system = build_wsdiscovery_system(seed=2, ontology=emergency_ontology())
    for i in range(8):
        system.add_service("lan-0", _ambulance(f"ambu-{i}"))
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.responses == 8  # one response message per provider


# -- cluster ------------------------------------------------------------------------

def test_cluster_replicates_to_all_members():
    system = build_cluster_system(seed=3, ontology=emergency_ontology(),
                                  lans=("lan-0", "lan-1", "lan-2"))
    system.add_service("lan-0", _ambulance())
    system.run(until=3.0)
    sizes = [len(r.store) for r in system.members()]
    assert len(set(sizes)) == 1
    assert sizes[0] > 0


def test_cluster_answers_locally_with_ttl_zero():
    system = build_cluster_system(seed=3, ontology=emergency_ontology(),
                                  lans=("lan-0", "lan-1"))
    system.add_service("lan-1", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=3.0)
    before = system.network.stats.by_type_count.get("query-forward", 0)
    call = system.discover(client, REQUEST)
    after = system.network.stats.by_type_count.get("query-forward", 0)
    assert call.service_names() == ["ambu"]
    assert after == before  # no forwarding: the local replica answered


def test_cluster_survives_member_failure():
    system = build_cluster_system(seed=3, ontology=emergency_ontology(),
                                  lans=("lan-0", "lan-1"))
    system.add_service("lan-1", _ambulance())
    client = system.add_client("lan-0")
    system.run(until=3.0)
    # Kill the member the service published to; the replica answers.
    victim = [r for r in system.members() if r.lan_name == "lan-1"][0]
    victim.crash()
    system.run_for(1.0)
    call = system.discover(client, REQUEST, timeout=30.0)
    assert call.service_names() == ["ambu"]


def test_cluster_replicas_expire_when_home_dies():
    """Replica leases stop being refreshed once the home registry is gone."""
    config = cluster_config(lease_duration=5.0, purge_interval=1.0)
    from repro.baselines.cluster import ClusterSystem

    system = ClusterSystem(seed=3, ontology=emergency_ontology(), config=config)
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    home = system.add_registry("lan-0")
    replica = system.add_registry("lan-1")
    system.finalize_cluster()
    service = system.add_service("lan-0", _ambulance())
    system.run(until=3.0)
    assert len(replica.store) > 0
    home.crash()
    service.crash()  # and the service, so nothing republishes
    system.run_for(15.0)
    assert len(replica.store) == 0
