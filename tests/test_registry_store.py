"""Unit tests for the advertisement store and records."""

from __future__ import annotations

import pytest

from repro.errors import AdvertisementNotFoundError
from repro.registry.advertisements import Advertisement, new_uuid, summarize
from repro.registry.store import AdvertisementStore


def _ad(ad_id="ad-1", service_node="svc-node-1", name="svc-1", version=1,
        model_id="uri"):
    return Advertisement(
        ad_id=ad_id,
        service_node=service_node,
        service_name=name,
        endpoint=f"svc://{name}",
        model_id=model_id,
        description=f"uri:{name}",
        version=version,
    )


def test_new_uuid_unique_and_prefixed():
    a, b = new_uuid("ad"), new_uuid("ad")
    assert a != b
    assert a.startswith("ad-")
    assert new_uuid("lease").startswith("lease-")


def test_put_and_get():
    store = AdvertisementStore()
    ad = _ad()
    store.put(ad)
    assert store.get("ad-1") is ad
    assert "ad-1" in store
    assert len(store) == 1


def test_get_missing_raises():
    with pytest.raises(AdvertisementNotFoundError):
        AdvertisementStore().get("ghost")


def test_newer_version_replaces():
    store = AdvertisementStore()
    store.put(_ad(version=1))
    newer = _ad(version=2)
    store.put(newer)
    assert store.get("ad-1").version == 2


def test_stale_version_ignored():
    store = AdvertisementStore()
    current = _ad(version=3)
    store.put(current)
    result = store.put(_ad(version=1))
    assert result is current
    assert store.get("ad-1").version == 3


def test_remove_and_discard():
    store = AdvertisementStore()
    store.put(_ad())
    removed = store.remove("ad-1")
    assert removed.ad_id == "ad-1"
    assert len(store) == 0
    assert store.discard("ad-1") is None  # already gone
    with pytest.raises(AdvertisementNotFoundError):
        store.remove("ad-1")


def test_by_service_index():
    store = AdvertisementStore()
    store.put(_ad(ad_id="ad-1", service_node="node-a"))
    store.put(_ad(ad_id="ad-2", service_node="node-a", model_id="semantic"))
    store.put(_ad(ad_id="ad-3", service_node="node-b"))
    assert [a.ad_id for a in store.by_service("node-a")] == ["ad-1", "ad-2"]
    assert store.service_nodes() == ["node-a", "node-b"]
    store.remove("ad-1")
    store.remove("ad-2")
    assert store.service_nodes() == ["node-b"]


def test_of_model_filter():
    store = AdvertisementStore()
    store.put(_ad(ad_id="ad-1", model_id="uri"))
    store.put(_ad(ad_id="ad-2", model_id="semantic"))
    assert [a.ad_id for a in store.of_model("semantic")] == ["ad-2"]


def test_of_model_index_stays_current():
    store = AdvertisementStore()
    store.put(_ad(ad_id="ad-2", model_id="uri"))
    store.put(_ad(ad_id="ad-1", model_id="uri"))
    assert [a.ad_id for a in store.of_model("uri")] == ["ad-1", "ad-2"]  # UUID order
    store.remove("ad-1")
    assert [a.ad_id for a in store.of_model("uri")] == ["ad-2"]
    # A republish that switches description model moves the index entry.
    store.put(_ad(ad_id="ad-2", model_id="semantic", version=2))
    assert store.of_model("uri") == []
    assert [a.ad_id for a in store.of_model("semantic")] == ["ad-2"]
    store.clear()
    assert store.of_model("semantic") == []


def test_candidates_without_index_is_linear_scan():
    store = AdvertisementStore()
    store.put(_ad(ad_id="ad-1", model_id="uri"))
    assert store.candidates("uri", object()) == store.of_model("uri")
    assert store.index_for("uri") is None


def test_all_sorted_by_uuid():
    store = AdvertisementStore()
    store.put(_ad(ad_id="ad-9"))
    store.put(_ad(ad_id="ad-1"))
    assert [a.ad_id for a in store.all()] == ["ad-1", "ad-9"]


def test_clear():
    store = AdvertisementStore()
    store.put(_ad())
    store.clear()
    assert len(store) == 0
    assert store.service_nodes() == []


def test_bumped_copy():
    ad = _ad(version=1)
    bumped = ad.bumped("new-description", now=5.0)
    assert bumped.version == 2
    assert bumped.description == "new-description"
    assert bumped.published_at == 5.0
    assert ad.version == 1  # original untouched


def test_advertisement_size_includes_description():
    small = _ad()
    large = Advertisement(
        ad_id="ad-x", service_node="n", service_name="s", endpoint="e",
        model_id="m", description="x" * 5000,
    )
    assert large.size_bytes() > small.size_bytes()


def test_summary_is_compact():
    ad = Advertisement(
        ad_id="ad-x", service_node="n", service_name="s", endpoint="e",
        model_id="semantic", description="x" * 5000,
    )
    summary = summarize(ad)
    assert summary.size_bytes() < ad.size_bytes() / 10
    assert summary.ad_id == ad.ad_id
    assert summary.version == ad.version
