"""Tests for the observability layer: metrics facade + causal tracing.

Covers the instruments in isolation, the recorder's determinism contract,
and — the interesting part — context propagation through the real
protocol: across retries, across WAN forwarding hops, and onto late
responses that arrive after their aggregation already timed out.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.errors import ReproError
from repro.netsim.stats import TrafficStats
from repro.obs.metrics import (
    Counter,
    Gauge,
    HOP_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    TraceRecorder,
)
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name="radar-1"):
    return ServiceProfile.build(name, "ncw:AirSurveillanceRadarService",
                                outputs=["ncw:AirTrack"],
                                qos={"latency_ms": 40.0})


@pytest.fixture
def fast():
    return DiscoveryConfig(
        beacon_interval=1.0,
        lease_duration=4.0,
        purge_interval=0.5,
        query_timeout=2.0,
        aggregation_timeout=0.3,
        signalling_interval=2.0,
    )


# -- instruments -------------------------------------------------------------


def test_counter_increments_and_rejects_decrease():
    counter = Counter("queries")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ReproError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("leases")
    gauge.set(3.0)
    gauge.add(-1.0)
    assert gauge.value == 2.0


def test_histogram_percentiles_on_known_values():
    hist = Histogram("latency", buckets=(1, 2, 5, 10, 100))
    for value in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 10
    assert summary["min"] == 1.0
    assert summary["max"] == 10.0
    assert summary["mean"] == pytest.approx(5.5)
    # Percentile estimates stay ordered and inside the observed range.
    assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["p99"]
    assert summary["p99"] <= summary["max"]
    assert summary["p50"] == pytest.approx(5.0, abs=1.5)


def test_histogram_overflow_reports_observed_max():
    hist = Histogram("latency", buckets=(1.0,))
    hist.observe(50.0)
    hist.observe(70.0)
    assert hist.percentile(0.99) == 70.0


def test_histogram_empty_summary_is_zeroes():
    assert Histogram("empty").summary() == {
        "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
        "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
    }


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ReproError):
        Histogram("bad", buckets=(2.0, 1.0))


def test_registry_creates_on_first_use_and_reuses():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc()
    assert registry.counter("a").value == 2
    first = registry.histogram("h", buckets=HOP_BUCKETS)
    assert registry.histogram("h") is first
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 2}
    assert "h" in snap["histograms"]
    assert "a" in registry.render()


# -- recorder ----------------------------------------------------------------


def _recorder():
    clock = {"now": 0.0}
    rec = TraceRecorder(lambda: clock["now"])
    return rec, clock


def test_alias_interns_in_first_seen_order():
    rec, _clock = _recorder()
    assert rec.alias("q-000412") == "q~1"
    assert rec.alias("q-000999") == "q~2"
    assert rec.alias("q-000412") == "q~1"  # stable within a run
    assert rec.alias("ad-000007") == "ad~1"  # per-prefix numbering


def test_span_tree_and_context_propagation():
    rec, clock = _recorder()
    root = rec.start_span("client.query", node="client-0")
    headers: dict = {}
    TraceRecorder.inject(headers, root.context)
    assert headers == {TRACE_ID_HEADER: root.trace_id,
                       SPAN_ID_HEADER: root.span_id}
    ctx = TraceRecorder.extract(headers)
    child = rec.start_span("registry.query", node="registry-0", ctx=ctx)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    clock["now"] = 0.5
    rec.end_span(child)
    rec.end_span(child, status="late")  # idempotent: first close wins
    assert child.status == "ok"
    rec.end_span(root)
    rendered = rec.render(root.trace_id)
    assert "client.query" in rendered and "registry.query" in rendered


def test_extract_without_context_returns_none():
    assert TraceRecorder.extract({}) is None


def test_export_jsonl_is_creation_ordered_and_parseable():
    rec, clock = _recorder()
    span = rec.start_span("op", node="n")
    rec.event("mark", node="n", ctx=span.context, attrs={"k": 1})
    clock["now"] = 1.0
    rec.end_span(span)
    lines = rec.export_jsonl().splitlines()
    records = [json.loads(line) for line in lines]
    assert [r["kind"] for r in records] == ["span", "event"]
    assert records[0]["end"] == 1.0
    assert records[1]["attrs"] == {"k": 1}


def test_disabled_recorder_records_nothing():
    clock = {"now": 0.0}
    rec = TraceRecorder(lambda: clock["now"], enabled=False)
    span = rec.start_span("op")
    rec.event("mark", ctx=span.context)
    assert rec.spans == [] and rec.events == []
    assert rec.export_jsonl() == ""


# -- end-to-end propagation --------------------------------------------------


def _system(fast, *, lans=1, seed=21):
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=fast)
    for i in range(lans):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    return system


def test_single_lan_query_produces_a_causal_trace(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.completed and call.trace_id is not None
    spans = system.trace.spans_of(call.trace_id)
    names = [span.name for span in spans]
    assert names[0] == "client.query"
    assert "client.attempt" in names and "registry.query" in names
    assert all(span.end is not None for span in spans)
    events = [ev.name for ev in system.trace.events_of(call.trace_id)]
    assert "registry.match" in events and "net.deliver" in events


def test_retried_query_keeps_one_trace_id(fast):
    system = _system(fast)
    system.add_registry("lan-0")  # survivor
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    system.network.node(client.tracker.current).crash()
    call = system.discover(client, REQUEST, timeout=30.0)
    assert call.attempts == 2 and call.trace_id is not None
    attempts = [span for span in system.trace.spans_of(call.trace_id)
                if span.name == "client.attempt"]
    assert len(attempts) == 2
    assert {span.trace_id for span in attempts} == {call.trace_id}
    assert attempts[0].status == "timeout" and attempts[1].status == "ok"
    events = system.trace.events_of(call.trace_id)
    assert any(ev.name == "query.retry" for ev in events)


def test_late_response_attaches_to_original_trace():
    config = DiscoveryConfig(
        aggregation_timeout=0.04, default_ttl=1,  # timeout < one WAN round trip
        ping_interval=120.0, signalling_interval=None,
    )
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    r0 = system.add_registry("lan-0", node_id="registry-00",
                             seeds=("registry-01",))
    system.add_registry("lan-1", node_id="registry-01")
    system.add_service("lan-1", _radar("radar"))
    client = system.add_client("lan-0")
    system.run(until=5.0)

    call = system.discover(client, REQUEST, timeout=5.0)
    system.run_for(1.0)  # let the straggler response arrive
    assert r0.late_responses >= 1
    late = [ev for ev in system.trace.events if ev.name == "late-response"]
    assert late, "late response should be recorded as a trace event"
    assert late[0].trace_id == call.trace_id
    timeouts = [ev for ev in system.trace.events_of(call.trace_id)
                if ev.name == "aggregation.timeout"]
    assert timeouts, "the parent aggregation's timeout shares the trace"


def test_forwarded_wan_query_records_hops(fast):
    system = _system(fast, lans=2)
    system.federate_ring()
    system.add_service("lan-1", _radar())
    client = system.add_client("lan-0")
    system.run(until=3.0)
    call = system.discover(client, REQUEST, timeout=10.0)
    assert call.completed
    hops = system.metrics.histogram("hops.query-forward")
    assert hops.count >= 1 and hops.vmin >= 1
    deliveries = [ev for ev in system.trace.events_of(call.trace_id)
                  if ev.name == "net.deliver"
                  and ev.attrs.get("msg_type") == "query-forward"]
    assert deliveries and all(ev.attrs["hops"] >= 1 for ev in deliveries)


def test_lease_lifecycle_emits_events(fast):
    system = _system(fast)
    service = system.add_service("lan-0", _radar())
    system.run(until=3.0)  # grant + at least one renew
    service.crash()
    system.run_for(6.0)  # > lease duration: expiry fires
    kinds = {ev.name for ev in system.trace.events}
    assert "lease.grant" in kinds and "lease.renew" in kinds
    assert "lease.expire" in kinds
    assert system.metrics.counter("lease.grant").value >= 1
    assert system.metrics.counter("lease.expire").value >= 1


# -- TrafficStats by_type / reset regression ---------------------------------


def test_snapshot_carries_by_type_and_delta_diffs_it():
    stats = TrafficStats()
    stats.record_send("query", "n0", 100, wan=False, multicast=False)
    before = stats.snapshot()
    assert before["by_type"] == {"query": {"count": 1, "bytes": 100}}
    stats.record_send("query", "n0", 50, wan=False, multicast=False)
    stats.record_send("publish", "n1", 10, wan=False, multicast=False)
    delta = stats.delta_since(before)
    assert delta["by_type"] == {
        "query": {"count": 1, "bytes": 50},
        "publish": {"count": 1, "bytes": 10},
    }


def test_delta_since_after_reset_is_all_zero():
    stats = TrafficStats()
    stats.record_send("query", "n0", 100, wan=True, multicast=False)
    stats.record_delivery("n1", 100)
    stats.record_retry("query")
    stats.reset()
    baseline = stats.snapshot()
    delta = stats.delta_since(baseline)
    assert delta["by_type"] == {}
    assert all(value == 0 for key, value in delta.items() if key != "by_type")
