"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out
    assert "ablations" in out


def test_every_listed_experiment_module_has_run():
    import importlib

    for key, (module_name, _description) in EXPERIMENTS.items():
        module = importlib.import_module(module_name)
        assert callable(module.run), key


def test_experiment_runs_and_prints_table(capsys):
    assert main(["experiment", "e12", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "E12" in out
    assert "sync=on" in out


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "medevac-dispatch" in out
    assert "fallback" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_experiment_ids_match_design_numbering():
    assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 22)}


def test_experiment_chart_flag(capsys):
    assert main(["experiment", "e12", "--chart", "recall"]) == 0
    out = capsys.readouterr().out
    assert "E12: recall" in out
    assert "#" in out  # bars rendered


def test_experiment_chart_unknown_column(capsys):
    assert main(["experiment", "e12", "--chart", "nonexistent"]) == 0
    err = capsys.readouterr().err
    assert "no column" in err


def test_experiment_json_output_parses(capsys):
    import json

    assert main(["experiment", "e12", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment"] == "E12"
    assert isinstance(payload["rows"], list) and payload["rows"]
    assert "metrics" in payload


def test_trace_renders_a_span_tree(capsys):
    assert main(["trace", "e1"]) == 0
    out = capsys.readouterr().out
    assert "client.query" in out
    assert "registry.query" in out


def test_trace_jsonl_dump_parses(capsys):
    import json

    assert main(["trace", "e1", "--jsonl"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert any(r["kind"] == "span" for r in records)
    assert any(r["kind"] == "event" for r in records)


def test_trace_unknown_experiment(capsys):
    assert main(["trace", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_metrics_renders_registry(capsys):
    assert main(["metrics", "e1"]) == 0
    out = capsys.readouterr().out
    assert "histograms:" in out
    assert "latency.query" in out


def test_metrics_unknown_experiment(capsys):
    assert main(["metrics", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_metrics_prom_format_is_stable(capsys):
    import re

    assert main(["metrics", "e1", "--format", "prom"]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert out.endswith("\n") and lines
    assert any(line.startswith("# TYPE ") and line.endswith(" counter")
               for line in lines)
    assert any(line.startswith("# TYPE ") and line.endswith(" histogram")
               for line in lines)
    assert 'le="+Inf"' in out
    # Every sample name obeys the Prometheus metric-name grammar.
    for line in lines:
        if line.startswith("#") or not line:
            continue
        name = line.split(" ", 1)[0].split("{", 1)[0]
        assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), line
    # Byte-stable: a second capture renders identically.
    assert main(["metrics", "e1", "--format", "prom"]) == 0
    assert capsys.readouterr().out == out


def test_metrics_json_flag_still_works(capsys):
    import json

    assert main(["metrics", "e1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"counters", "gauges", "histograms"}


def test_health_writes_and_renders_report(tmp_path, capsys):
    import json

    assert main(["health", "e19", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "capacity report — E19" in out
    path = tmp_path / "health_e19_seed0.json"
    assert path.exists()
    report = json.loads(path.read_text())
    assert report["experiment"] == "E19"
    assert report["points"]
    assert all("slo_ok" in point for point in report["points"])


def test_health_rejects_non_health_experiment(capsys):
    assert main(["health", "e1"]) == 2
    assert "unknown health experiment" in capsys.readouterr().err
