"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out
    assert "ablations" in out


def test_every_listed_experiment_module_has_run():
    import importlib

    for key, (module_name, _description) in EXPERIMENTS.items():
        module = importlib.import_module(module_name)
        assert callable(module.run), key


def test_experiment_runs_and_prints_table(capsys):
    assert main(["experiment", "e12", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "E12" in out
    assert "sync=on" in out


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "medevac-dispatch" in out
    assert "fallback" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_experiment_ids_match_design_numbering():
    assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 20)}


def test_experiment_chart_flag(capsys):
    assert main(["experiment", "e12", "--chart", "recall"]) == 0
    out = capsys.readouterr().out
    assert "E12: recall" in out
    assert "#" in out  # bars rendered


def test_experiment_chart_unknown_column(capsys):
    assert main(["experiment", "e12", "--chart", "nonexistent"]) == 0
    err = capsys.readouterr().err
    assert "no column" in err


def test_experiment_json_output_parses(capsys):
    import json

    assert main(["experiment", "e12", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment"] == "E12"
    assert isinstance(payload["rows"], list) and payload["rows"]
    assert "metrics" in payload


def test_trace_renders_a_span_tree(capsys):
    assert main(["trace", "e1"]) == 0
    out = capsys.readouterr().out
    assert "client.query" in out
    assert "registry.query" in out


def test_trace_jsonl_dump_parses(capsys):
    import json

    assert main(["trace", "e1", "--jsonl"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert any(r["kind"] == "span" for r in records)
    assert any(r["kind"] == "event" for r in records)


def test_trace_unknown_experiment(capsys):
    assert main(["trace", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_metrics_renders_registry(capsys):
    assert main(["metrics", "e1"]) == 0
    out = capsys.readouterr().out
    assert "histograms:" in out
    assert "latency.query" in out


def test_metrics_unknown_experiment(capsys):
    assert main(["metrics", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err
