"""Unit tests for envelopes and the size model."""

from __future__ import annotations

from repro.netsim.messages import (
    DEFAULT_ENVELOPE_OVERHEAD,
    Envelope,
    SizeModel,
    estimate_payload_size,
)


class _Sized:
    def size_bytes(self) -> int:
        return 1234


class _Plain:
    def __init__(self):
        self.name = "abcd"
        self.value = 7
        self._hidden = "x" * 1000


def test_none_payload_is_zero():
    assert estimate_payload_size(None) == 0


def test_size_bytes_method_is_authoritative():
    assert estimate_payload_size(_Sized()) == 1234


def test_string_size_scales_with_length():
    short = estimate_payload_size("ab")
    long = estimate_payload_size("ab" * 100)
    assert long > short


def test_bytes_counted_exactly():
    assert estimate_payload_size(b"12345") == 5


def test_container_sizes_recurse():
    flat = estimate_payload_size(["abc", "def"])
    nested = estimate_payload_size({"k": ["abc", "def"], "j": "ghi"})
    assert nested > flat > 0


def test_object_private_attrs_excluded():
    obj = _Plain()
    with_hidden = estimate_payload_size(obj)
    assert with_hidden < 1000  # the _hidden kilobyte string is not counted


def test_message_size_adds_envelope_overhead():
    model = SizeModel()
    assert model.message_size(None) == DEFAULT_ENVELOPE_OVERHEAD
    assert model.message_size("hello") > DEFAULT_ENVELOPE_OVERHEAD


def test_compression_reduces_payload_only():
    plain = SizeModel()
    zipped = SizeModel(compression_ratio=0.25)
    payload = "x" * 4000
    assert zipped.message_size(payload) < plain.message_size(payload)
    # The envelope itself is not compressed.
    assert zipped.message_size(None) == plain.message_size(None)


def test_forwarded_envelope_increments_hops():
    env = Envelope(msg_type="query", src="a", dst="b", payload="p", headers={"ttl": 3})
    fwd = env.forwarded("b", "c")
    assert fwd.hops == env.hops + 1
    assert fwd.src == "b"
    assert fwd.dst == "c"
    assert fwd.msg_type == env.msg_type


def test_forwarded_headers_are_independent():
    env = Envelope(msg_type="query", src="a", dst="b", headers={"ttl": 3})
    fwd = env.forwarded("b", "c")
    fwd.headers["ttl"] = 2
    assert env.headers["ttl"] == 3


def test_envelope_ids_are_unique():
    a = Envelope(msg_type="x", src="a", dst="b")
    b = Envelope(msg_type="x", src="a", dst="b")
    assert a.envelope_id != b.envelope_id


def test_header_accessor_default():
    env = Envelope(msg_type="x", src="a", dst="b", headers={"k": 1})
    assert env.header("k") == 1
    assert env.header("missing", "d") == "d"
