"""End-to-end integration tests: full scenarios on the simulator."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.metrics.retrieval import score_queries
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest
from repro.workloads.churn import ServiceChurn
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.scenarios import battlefield_scenario, build_scenario, crisis_scenario


def test_crisis_scenario_end_to_end():
    """The paper's §1 motivating scenario, front to back."""
    built = build_scenario(crisis_scenario(agencies=3, services_per_lan=3,
                                           seed=1))
    workload = QueryWorkload.anchored(built.generator, built.profiles, 8,
                                      generalize=1)
    driver = QueryDriver(built.system, workload, interval=0.5, seed=1)
    issued = driver.play(settle=3.0, drain=15.0)
    scores = score_queries(issued)
    assert scores.queries == 8
    assert scores.recall == 1.0
    assert scores.precision == 1.0


def test_battlefield_scenario_all_models():
    built = build_scenario(battlefield_scenario(units=2, services_per_lan=3,
                                                seed=2))
    built.system.run(until=3.0)
    client = built.clients[0]
    anchor = built.profiles[-1]  # a remote-unit service
    for model_id in ("uri", "template", "semantic"):
        request = built.generator.request_for(anchor, generalize=0)
        call = built.system.discover(client, request, model_id=model_id)
        assert call.completed
        assert anchor.service_name in call.service_names()


def test_churn_with_leasing_keeps_responses_fresh():
    config = DiscoveryConfig(lease_duration=5.0, purge_interval=1.0)
    built = build_scenario(crisis_scenario(agencies=2, services_per_lan=4,
                                           seed=3), config=config)
    system = built.system
    system.run(until=3.0)
    churn = ServiceChurn(system, rate=0.5, permanent=True).start()
    system.run_for(30.0)
    churn.stop()
    system.run_for(12.0)  # two lease durations drain the stale entries
    dead = churn.dead_service_names()
    assert dead  # churn actually happened
    for registry in built.registries:
        for ad in registry.store.all():
            assert ad.service_name not in dead


def test_partition_and_heal():
    """A WAN split isolates remote services; healing restores them."""
    config = DiscoveryConfig(aggregation_timeout=0.3, query_timeout=3.0,
                             ping_interval=30.0, signalling_interval=None)
    system = DiscoverySystem(seed=4, ontology=battlefield_ontology(),
                             config=config)
    for i in range(2):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_chain()
    remote = ServiceProfile.build("remote-radar", "ncw:RadarService",
                                  outputs=["ncw:AirTrack"])
    system.add_service("lan-1", remote)
    client = system.add_client("lan-0")
    system.run(until=3.0)
    request = ServiceRequest.build("ncw:SensorService")

    call = system.discover(client, request)
    assert call.service_names() == ["remote-radar"]

    system.network.partition([["lan-0"], ["lan-1"]])
    call2 = system.discover(client, request, timeout=30.0)
    assert call2.completed
    assert call2.service_names() == []

    system.network.heal_partition()
    call3 = system.discover(client, request, timeout=30.0)
    assert call3.service_names() == ["remote-radar"]


def test_registry_crash_mid_renewal_recovers():
    """Failure injection: crash the registry exactly between a service's
    renewals; the service must republish after the restart."""
    config = DiscoveryConfig(lease_duration=4.0, purge_interval=0.5,
                             beacon_interval=1.0)
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    profile = ServiceProfile.build("radar", "ncw:RadarService",
                                   outputs=["ncw:AirTrack"])
    system.add_service("lan-0", profile)
    system.run(until=2.0)
    registry.crash()
    system.run_for(1.0)
    registry.restart()
    system.run_for(10.0)  # renewal NACK (or re-probe) forces republish
    assert len(registry.store) == 3


def test_two_registries_per_lan_load_balance_and_failover():
    config = DiscoveryConfig(beacon_interval=1.0, query_timeout=2.0,
                             aggregation_timeout=0.3,
                             lease_duration=5.0, purge_interval=1.0)
    system = DiscoverySystem(seed=6, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    r1 = system.add_registry("lan-0")
    r2 = system.add_registry("lan-0")
    profiles = [
        ServiceProfile.build(f"radar-{i}", "ncw:RadarService",
                             outputs=["ncw:AirTrack"])
        for i in range(6)
    ]
    for profile in profiles:
        system.add_service("lan-0", profile)
    clients = [system.add_client("lan-0") for _ in range(4)]
    system.run(until=3.0)
    # Services spread over both registries (hash-based balancing).
    assert len(r1.store) > 0 and len(r2.store) > 0
    # Same-LAN registries federated: any client sees all services.
    request = ServiceRequest.build("ncw:RadarService")
    call = system.discover(clients[0], request)
    assert len(call.hits) == 6
    # Kill one registry: queries still see everything after failover,
    # because its services republish to the survivor.
    r2.crash()
    system.run_for(30.0)
    call2 = system.discover(clients[0], request, timeout=30.0)
    assert len(call2.hits) == 6


def test_wan_scale_scenario_smoke():
    """A bigger deployment exercising all the moving parts together."""
    built = build_scenario(battlefield_scenario(
        units=5, services_per_lan=4, clients_per_lan=2, seed=7,
        federation="ring",
    ))
    workload = QueryWorkload.anchored(built.generator, built.profiles, 12,
                                      generalize=1, max_results=5)
    driver = QueryDriver(built.system, workload, interval=0.4, seed=7)
    issued = driver.play(settle=5.0, drain=20.0)
    completed = [q for q in issued if q.call.completed]
    assert len(completed) == 12
    assert all(len(q.call.hits) <= 5 for q in completed)
    scores = score_queries(issued)
    assert scores.recall > 0.9


def test_federation_reforms_after_partition_heals():
    """Seeded WAN links must re-form once a partition heals — seeds are
    durable configuration, retried every maintenance round."""
    config = DiscoveryConfig(ping_interval=2.0, ping_failure_threshold=2,
                             signalling_interval=4.0, aggregation_timeout=0.3)
    system = DiscoverySystem(seed=71, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-a")
    system.add_lan("lan-b")
    ra = system.add_registry("lan-a")
    rb = system.add_registry("lan-b")
    system.federate_chain()
    system.add_service("lan-b", ServiceProfile.build(
        "radar", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    client = system.add_client("lan-a")
    system.run(until=5.0)

    system.network.partition([["lan-a"], ["lan-b"]])
    system.run_for(30.0)
    assert rb.node_id not in ra.federation.neighbors  # detector fired

    system.network.heal_partition()
    system.run_for(10.0)
    assert rb.node_id in ra.federation.neighbors
    assert ra.node_id in rb.federation.neighbors
    call = system.discover(client, ServiceRequest.build("ncw:SensorService"),
                           timeout=30.0)
    assert call.service_names() == ["radar"]
