"""Tests for registry admission control: queueing, shedding, BUSY paths."""

from __future__ import annotations

import pytest

from repro.core import protocol
from repro.core.admission import (
    CLASS_FORWARD,
    CLASS_QUERY,
    CLASS_RENEW,
    AdmissionController,
    AdmissionPolicy,
    request_id_of,
)
from repro.core.config import DiscoveryConfig
from repro.core.retry import RetryPolicy
from repro.core.system import DiscoverySystem
from repro.descriptions.uri import UriQuery
from repro.errors import ReproError
from repro.netsim.messages import Envelope
from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


# -- AdmissionPolicy ----------------------------------------------------------

def test_policy_defaults_are_inert():
    policy = AdmissionPolicy()
    assert policy.enabled
    assert not policy.active()  # every cost 0.0 -> nothing intercepted


def test_policy_validation():
    with pytest.raises(ReproError):
        AdmissionPolicy(query_cost=-0.1)
    with pytest.raises(ReproError):
        AdmissionPolicy(queue_limit=0)
    with pytest.raises(ReproError):
        AdmissionPolicy(degrade_at=0.0)
    with pytest.raises(ReproError):
        AdmissionPolicy(degrade_at=1.5)
    with pytest.raises(ReproError):
        AdmissionPolicy(retry_after_base=0.0)


def test_policy_classifies_data_plane_only():
    policy = AdmissionPolicy()
    assert policy.classify(protocol.RENEW) == CLASS_RENEW
    assert policy.classify(protocol.QUERY) == CLASS_QUERY
    assert policy.classify(protocol.QUERY_FORWARD) == CLASS_FORWARD
    # Control plane is never admission-controlled.
    assert policy.classify(protocol.REGISTRY_PROBE) is None
    assert policy.classify(protocol.QUERY_RESPONSE) is None
    assert policy.classify(protocol.REGISTRY_PING) is None


def test_retry_after_is_monotone_in_depth():
    policy = AdmissionPolicy(retry_after_base=0.25)
    hints = [policy.retry_after(depth) for depth in range(10)]
    assert hints == sorted(hints)
    assert hints[0] == 0.25  # depth 0 still backs off


def test_request_id_of_payloads():
    query = Envelope(msg_type=protocol.QUERY, src="a", dst="b",
                     payload=protocol.QueryPayload(
                         query_id="q1", model_id="uri", query=UriQuery("x")))
    renew = Envelope(msg_type=protocol.RENEW, src="a", dst="b",
                     payload=protocol.RenewPayload(lease_id="l1", ad_id="ad1"))
    assert request_id_of(query) == "q1"
    assert request_id_of(renew) == "l1"


# -- AdmissionController (unit, via a recording node) -------------------------

class Sink(Node):
    """A node whose dispatches are recorded with their service time."""

    def __init__(self, node_id="sink"):
        super().__init__(node_id)
        self.served: list[tuple[float, str]] = []

    def dispatch(self, envelope):
        self.served.append((self.sim.now, envelope.msg_type))

    def on_crash(self):
        self.admission.on_crash()


class Catcher(Node):
    """Captures BUSY rejections sent back to it."""

    def __init__(self, node_id="src"):
        super().__init__(node_id)
        self.busy: list[protocol.BusyPayload] = []

    def receive(self, envelope):
        if self.alive and envelope.msg_type == protocol.BUSY:
            self.busy.append(envelope.payload)


def _rig(policy):
    sim = Simulator(seed=7)
    net = Network(sim)
    net.add_lan("lan")
    sink = net.add_node(Sink(), "lan")
    src = net.add_node(Catcher(), "lan")
    sink.admission = AdmissionController(sink, policy)
    return sim, sink, src


def _query(src, seq):
    return Envelope(msg_type=protocol.QUERY, src=src.node_id, dst="sink",
                    payload=protocol.QueryPayload(
                        query_id=f"q{seq}", model_id="uri",
                        query=UriQuery("x")))


def _renew(src, seq):
    return Envelope(msg_type=protocol.RENEW, src=src.node_id, dst="sink",
                    payload=protocol.RenewPayload(lease_id=f"l{seq}",
                                                  ad_id=f"ad{seq}"))


def test_zero_cost_classes_bypass_the_queue():
    sim, sink, src = _rig(AdmissionPolicy())  # all costs default 0.0
    assert not sink.admission.intercept(_query(src, 1))
    assert sink.admission.intercepted == 0


def test_service_is_serialized_at_cost_spacing():
    sim, sink, src = _rig(AdmissionPolicy(query_cost=0.1, queue_limit=8))
    for i in range(3):
        assert sink.admission.intercept(_query(src, i))
    sim.run(until=1.0)
    assert [t for t, _ in sink.served] == pytest.approx([0.1, 0.2, 0.3])
    assert sink.admission.dispatched == 3
    assert sink.admission.audit() == []


def test_renew_jumps_the_query_queue():
    policy = AdmissionPolicy(query_cost=0.1, renew_cost=0.01, queue_limit=8)
    sim, sink, src = _rig(policy)
    for i in range(3):
        sink.admission.intercept(_query(src, i))
    sink.admission.intercept(_renew(src, 0))  # arrives last ...
    sim.run(until=1.0)
    # ... but is served right after the query already in service.
    assert [m for _, m in sink.served] == [
        protocol.QUERY, protocol.RENEW, protocol.QUERY, protocol.QUERY,
    ]


def test_overflow_sheds_with_busy():
    policy = AdmissionPolicy(query_cost=0.1, queue_limit=2,
                             retry_after_base=0.25)
    sim, sink, src = _rig(policy)
    for i in range(5):  # 1 in service + 2 queued + 2 shed
        sink.admission.intercept(_query(src, i))
    sim.run(until=1.0)
    admission = sink.admission
    assert admission.shed == 2
    assert admission.busy_sent == 2
    assert admission.dispatched == 3
    assert len(src.busy) == 2
    for payload in src.busy:
        assert payload.msg_type == protocol.QUERY
        assert payload.retry_after == policy.retry_after(payload.queue_depth)
    assert admission.shed_by_class == {"query": 2}
    assert admission.audit() == []


def test_priority_mode_evicts_worst_to_admit_renew():
    policy = AdmissionPolicy(query_cost=0.1, renew_cost=0.01, queue_limit=2,
                             prioritized=True)
    sim, sink, src = _rig(policy)
    for i in range(3):  # fills: 1 in service + 2 queued
        sink.admission.intercept(_query(src, i))
    sink.admission.intercept(_renew(src, 0))  # queue full -> evict a query
    sim.run(until=1.0)
    assert sink.admission.shed_by_class == {"query": 1}
    assert protocol.RENEW in [m for _, m in sink.served]


def test_fifo_mode_tail_drops_the_newcomer():
    policy = AdmissionPolicy(query_cost=0.1, renew_cost=0.01, queue_limit=2,
                             prioritized=False)
    sim, sink, src = _rig(policy)
    for i in range(3):
        sink.admission.intercept(_query(src, i))
    sink.admission.intercept(_renew(src, 0))  # FIFO: the renew itself drops
    sim.run(until=1.0)
    assert sink.admission.shed_by_class == {"renew": 1}
    assert protocol.RENEW not in [m for _, m in sink.served]


def test_crash_accounts_lost_work():
    sim, sink, src = _rig(AdmissionPolicy(query_cost=0.1, queue_limit=8))
    for i in range(4):
        sink.admission.intercept(_query(src, i))
    sim.run(until=0.15)  # one served, one in service, two queued
    sink.crash()
    assert sink.admission.lost_on_crash == 3
    assert sink.admission.depth == 0
    assert sink.admission.audit() == []


def test_unbounded_queue_never_sheds():
    sim, sink, src = _rig(AdmissionPolicy(query_cost=0.1, queue_limit=None))
    for i in range(50):
        sink.admission.intercept(_query(src, i))
    assert sink.admission.max_depth == 50
    assert not sink.admission.overloaded  # unbounded queues never degrade
    sim.run(until=10.0)
    assert sink.admission.shed == 0
    assert sink.admission.dispatched == 50
    assert sink.admission.audit() == []


# -- RetryPolicy server hint --------------------------------------------------

def test_retry_after_hint_replaces_backoff():
    policy = RetryPolicy(base=0.5, factor=2.0, cap=2.0, max_attempts=3,
                         jitter=0.0)
    assert policy.delay(2) == 1.0
    assert policy.delay(2, retry_after=0.3) == 0.3
    # Uncapped: the server knows its own backlog.
    assert policy.delay(1, retry_after=50.0) == 50.0


def test_retry_after_hint_keeps_jitter_and_budget():
    policy = RetryPolicy(base=0.5, factor=2.0, cap=2.0, max_attempts=3,
                         jitter=0.2)
    hinted = policy.delay(1, seed=4, key="k", retry_after=1.0)
    assert 0.8 <= hinted <= 1.2
    assert hinted == policy.delay(1, seed=4, key="k", retry_after=1.0)
    assert policy.attempts_exhausted(3)


def test_negative_retry_after_hint_rejected():
    policy = RetryPolicy()
    with pytest.raises(ReproError):
        policy.delay(1, retry_after=-0.1)


# -- integration: registry, client, and service under admission ---------------

def _active_policy(**overrides):
    kwargs = dict(query_cost=0.2, forward_cost=0.1, publish_cost=0.01,
                  renew_cost=0.01, queue_limit=4, degrade_at=0.25,
                  retry_after_base=0.2)
    kwargs.update(overrides)
    return AdmissionPolicy(**kwargs)


@pytest.fixture
def fast_config():
    return DiscoveryConfig(
        beacon_interval=1.0,
        lease_duration=6.0,
        purge_interval=0.5,
        query_timeout=2.0,
        aggregation_timeout=0.3,
    )


def _radar(name="radar-1"):
    return ServiceProfile.build(name, "ncw:AirSurveillanceRadarService",
                                outputs=["ncw:AirTrack"],
                                qos={"latency_ms": 40.0})


REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def test_overloaded_registry_answers_degraded(fast_config):
    config = DiscoveryConfig(
        beacon_interval=1.0, lease_duration=6.0, purge_interval=0.5,
        query_timeout=4.0, aggregation_timeout=0.3,
        admission=_active_policy(),
    )
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    # Back-to-back queries: the second is still queued while the first
    # is dispatched, so depth >= degrade_at * queue_limit and the first
    # is answered from the local store with the degraded marker. By the
    # time the second is dispatched the queue has drained.
    first = client.discover(REQUEST, model_id="semantic")
    second = client.discover(REQUEST, model_id="semantic")
    system.run_for(4.0)
    assert first.completed and second.completed
    assert first.degraded
    assert not second.degraded
    assert first.hits  # degraded mode still serves local hits
    assert system.network.metrics.counter("admission.degraded").value >= 1


def test_client_retries_on_busy_with_server_hint(fast_config):
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=fast_config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = client.discover(REQUEST, model_id="semantic")
    wire_id = next(iter(client._by_wire_id))
    # Hand-craft the rejection a saturated registry would send.
    client.receive(Envelope(
        msg_type=protocol.BUSY, src=call.sent_to, dst=client.node_id,
        payload=protocol.BusyPayload(request_id=wire_id,
                                     msg_type=protocol.QUERY,
                                     retry_after=0.4, queue_depth=3),
    ))
    assert client.busy_rejections == 1
    assert call.busy_responses == 1
    assert wire_id not in client._by_wire_id  # that attempt is dead
    system.run_for(4.0)
    assert call.completed and call.hits  # the deferred retry succeeded
    assert client.query_retries >= 1


def test_client_fails_over_after_repeated_busy(fast_config):
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=fast_config)
    system.add_lan("lan-0")
    saturated = system.add_registry("lan-0")
    sibling = system.add_registry("lan-0")
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    attachment = client.tracker.current

    # Reject the first two attempts the instant they hit the wire, as a
    # saturated registry with zero latency would.
    original_dispatch = client._dispatch

    def dispatch_and_reject(call):
        original_dispatch(call)
        if call.busy_responses >= 2 or call.completed:
            return
        wire_id = next(
            (w for w, c in client._by_wire_id.items() if c is call), None)
        if wire_id is not None:
            client.receive(Envelope(
                msg_type=protocol.BUSY, src=call.sent_to,
                dst=client.node_id,
                payload=protocol.BusyPayload(request_id=wire_id,
                                             msg_type=protocol.QUERY,
                                             retry_after=0.2,
                                             queue_depth=3),
            ))

    client._dispatch = dispatch_and_reject
    call = client.discover(REQUEST, model_id="semantic")
    system.run_for(6.0)
    assert client.busy_rejections == 2
    # Two rejections from the same attachment: the tracker moved on, and
    # the third attempt succeeded against the sibling.
    assert client.tracker.current != attachment
    assert call.completed and call.hits
    assert call.sent_to != attachment


def test_service_defers_renew_on_busy():
    # A long lease keeps the natural renew cycle (and its flag-clearing
    # ack) out of the window under test.
    config = DiscoveryConfig(beacon_interval=1.0, lease_duration=30.0,
                             purge_interval=5.0)
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    service = system.add_service("lan-0", _radar())
    system.run(until=2.0)
    record = next(iter(service._published.values()))
    assert record.acked and record.lease_id
    # Fake an outstanding renewal the registry then sheds.
    record.renew_outstanding = True
    before = service.renew_retries
    service.receive(Envelope(
        msg_type=protocol.BUSY, src=registry.node_id, dst=service.node_id,
        payload=protocol.BusyPayload(request_id=record.lease_id,
                                     msg_type=protocol.RENEW,
                                     retry_after=0.5, queue_depth=2),
    ))
    assert service.busy_deferrals == 1
    system.run_for(1.0)
    # The deferred resend fired and the registry (not saturated here)
    # acked it: the lease is alive and the flag cleared.
    assert service.renew_retries == before + 1
    assert not record.renew_outstanding


def test_busy_from_foreign_registry_ignored_by_service(fast_config):
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=fast_config)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    service = system.add_service("lan-0", _radar())
    system.run(until=2.0)
    record = next(iter(service._published.values()))
    record.renew_outstanding = True
    service.receive(Envelope(
        msg_type=protocol.BUSY, src="registry-elsewhere",
        dst=service.node_id,
        payload=protocol.BusyPayload(request_id=record.lease_id,
                                     msg_type=protocol.RENEW,
                                     retry_after=0.5, queue_depth=2),
    ))
    assert service.busy_deferrals == 0


# -- RetryPolicy deadline budget ----------------------------------------------

def test_budget_clamps_hint_and_computed_delay():
    policy = RetryPolicy(base=0.5, factor=2.0, cap=8.0, max_attempts=3,
                         jitter=0.0)
    # A generous server hint cannot schedule the retry past the
    # caller's remaining deadline.
    assert policy.delay(1, retry_after=50.0, budget=1.5) == 1.5
    # The clamp also bounds the computed exponential path.
    assert policy.delay(3) == 2.0
    assert policy.delay(3, budget=0.75) == 0.75
    # A hint that already fits passes through untouched.
    assert policy.delay(1, retry_after=0.4, budget=1.5) == 0.4


def test_budget_clamp_applies_after_jitter():
    policy = RetryPolicy(base=0.5, factor=2.0, cap=8.0, max_attempts=3,
                         jitter=0.5)
    # Whatever the jitter draw, the budget is a hard ceiling.
    for key in ("a", "b", "c", "d"):
        assert policy.delay(1, seed=9, key=key, retry_after=1.0,
                            budget=1.0) <= 1.0


def test_negative_budget_rejected():
    policy = RetryPolicy()
    with pytest.raises(ReproError):
        policy.delay(1, budget=-0.1)
    assert policy.delay(1, budget=0.0) == 0.0


def test_client_fails_over_when_hint_exceeds_deadline(fast_config):
    # Regression: a saturated registry's retry_after hint used to be
    # taken at face value even when it pushed the retry past the call's
    # deadline — the client slept through its own budget and the call
    # died in the query timeout. Now the un-affordable hint triggers an
    # immediate failover and a budget-clamped retry.
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=fast_config)
    system.add_lan("lan-0")
    saturated = system.add_registry("lan-0")
    sibling = system.add_registry("lan-0")
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    client.tracker.seed(saturated.node_id)

    call = client.discover(REQUEST, model_id="semantic")
    assert call.sent_to == saturated.node_id
    wire_id = next(iter(client._by_wire_id))
    deadline_budget = call.deadline - system.sim.now
    # A hint far beyond the whole attempt budget (3 x 2s query_timeout).
    client.receive(Envelope(
        msg_type=protocol.BUSY, src=saturated.node_id, dst=client.node_id,
        payload=protocol.BusyPayload(request_id=wire_id,
                                     msg_type=protocol.QUERY,
                                     retry_after=deadline_budget + 30.0,
                                     queue_depth=9),
    ))
    # One BUSY sufficed: the hint could not fit, so the tracker moved
    # off the saturated registry immediately.
    assert client.tracker.current == sibling.node_id
    system.run_for(6.0)
    assert call.completed and call.hits
    assert call.sent_to == sibling.node_id
    # The retry ran on the client's own (budget-clamped) schedule, well
    # inside the deadline, not on the absurd server hint.
    assert call.latency < deadline_budget


def test_client_busy_retry_never_sleeps_past_deadline(fast_config):
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=fast_config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)

    call = client.discover(REQUEST, model_id="semantic")
    wire_id = next(iter(client._by_wire_id))
    # Burn most of the budget, then shed with a hint that fits the
    # original deadline but not the remainder.
    system.run_for(0.0)
    remaining = call.deadline - system.sim.now
    hint = remaining - 0.05  # fits: kept, but clamped by the budget
    client.receive(Envelope(
        msg_type=protocol.BUSY, src=registry.node_id, dst=client.node_id,
        payload=protocol.BusyPayload(request_id=wire_id,
                                     msg_type=protocol.QUERY,
                                     retry_after=hint, queue_depth=2),
    ))
    system.run_for(30.0)
    assert call.completed
    # However the retry was scheduled, the call resolved within its
    # attempt budget (deadline + one query timeout + fallback window).
    assert call.latency <= (call.deadline - call.issued_at) + 2.5


# -- BUSY accounting on the fallback path -------------------------------------

def test_late_busy_on_fallback_path_not_double_counted(fast_config):
    # Regression: a registry BUSY arriving while the call was already in
    # decentralized fallback used to re-enter the retry path — bumping
    # busy_rejections a second time for the same call and re-dispatching
    # a call the fallback timer was about to complete (resurrecting a
    # completed DiscoveryCall on slow LANs).
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=fast_config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)

    busy = lambda wid: Envelope(
        msg_type=protocol.BUSY, src=registry.node_id, dst=client.node_id,
        payload=protocol.BusyPayload(request_id=wid,
                                     msg_type=protocol.QUERY,
                                     retry_after=0.1, queue_depth=3),
    )

    # Shed every registry attempt the instant it hits the wire, until
    # the attempt budget forces the decentralized fallback.
    original_dispatch = client._dispatch

    def dispatch_and_reject(call):
        original_dispatch(call)
        if call.completed or call.via == "fallback":
            return
        wire_id = next(
            (w for w, c in client._by_wire_id.items() if c is call), None)
        if wire_id is not None:
            client.receive(busy(wire_id))

    client._dispatch = dispatch_and_reject
    call = client.discover(REQUEST, model_id="semantic")
    # Step in sub-fallback-window increments so the sim stops while the
    # fallback collection window is still open.
    for _ in range(400):
        if call.via == "fallback" or call.completed:
            break
        system.run_for(0.05)
    rejections = client.busy_rejections
    retries = client.query_retries
    assert rejections >= 2
    assert call.via == "fallback"
    assert not call.completed
    fallback_wire = next(
        w for w, c in client._by_wire_id.items() if c is call)

    # The saturated registry sheds the DECENTRAL_QUERY multicast too:
    # this BUSY must be ignored — no counter bump, no retry, no
    # resurrection.
    client.receive(busy(fallback_wire))
    assert client.busy_rejections == rejections
    assert client.query_retries == retries
    assert client._by_wire_id[fallback_wire] is call  # entry intact

    system.run_for(2.0)
    assert call.completed and call.completions == 1
    assert call.via == "fallback"
    # A straggler BUSY after completion is equally inert.
    client.receive(busy(fallback_wire))
    assert client.busy_rejections == rejections
    assert call.completions == 1
    from repro.core.invariants import check_invariants
    assert check_invariants(system) == []


def test_busy_for_unknown_wire_id_is_ignored(fast_config):
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=fast_config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = client.discover(REQUEST, model_id="semantic")
    system.run_for(4.0)
    assert call.completed
    # The attempt is long dead: a late BUSY for its wire id must not
    # resurrect the call or touch any counter.
    client.receive(Envelope(
        msg_type=protocol.BUSY, src=registry.node_id, dst=client.node_id,
        payload=protocol.BusyPayload(request_id=f"{call.query_id}/0",
                                     msg_type=protocol.QUERY,
                                     retry_after=0.2, queue_depth=1),
    ))
    assert client.busy_rejections == 0
    assert call.completions == 1
    from repro.core.invariants import check_invariants
    assert check_invariants(system) == []
