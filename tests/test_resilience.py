"""Long-horizon resilience scenarios: sustained registry churn, stale
summaries, and combined dynamics."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig, STRATEGY_INFORMED
from repro.core.system import DiscoverySystem
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name):
    return ServiceProfile.build(name, "ncw:RadarService",
                                outputs=["ncw:AirTrack"])


def test_sustained_registry_churn_with_standbys():
    """The registry role survives repeated registry crashes when standbys
    implement the LAN quota policy — availability through the whole run."""
    config = DiscoveryConfig(
        beacon_interval=1.0, lease_duration=5.0, purge_interval=1.0,
        query_timeout=2.0, aggregation_timeout=0.3, fallback_timeout=0.4,
    )
    system = DiscoverySystem(seed=81, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    primary = system.add_registry("lan-0")
    standby_a = system.add_standby_registry("lan-0", lan_target=1)
    standby_b = system.add_standby_registry("lan-0", lan_target=1)
    system.add_service("lan-0", _radar("radar"))
    client = system.add_client("lan-0")
    system.run(until=3.0)

    # Crash whichever registry is active, three times in a row.
    served = 0
    for _round in range(3):
        active = [r for r in (primary, standby_a, standby_b)
                  if r.alive and getattr(r, "active", True)]
        active[0].crash()
        system.run_for(12.0)
        call = system.discover(client, REQUEST, timeout=30.0)
        if call.service_names() == ["radar"]:
            served += 1
        # Bring the victim back as a fresh standby/registry for the next round.
        active[0].restart()
        system.run_for(6.0)
    assert served == 3
    assert standby_a.promotions + standby_b.promotions >= 1


def test_informed_routing_summary_staleness_window():
    """A service that appears *after* the last gossip round is invisible
    to informed routing until summaries refresh — the documented trade."""
    config = DiscoveryConfig(strategy=STRATEGY_INFORMED,
                             signalling_interval=10.0,
                             aggregation_timeout=0.3)
    system = DiscoverySystem(seed=82, ontology=battlefield_ontology(),
                             config=config)
    for i in range(2):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_chain()
    client = system.add_client("lan-0")
    system.run(until=25.0)  # summaries gossiped (empty remote)

    system.add_service("lan-1", _radar("fresh"))
    system.run_for(1.0)  # published, but not yet gossiped
    stale_call = system.discover(client, REQUEST, timeout=30.0)
    assert stale_call.hits == []  # stale summary: remote registry skipped

    system.run_for(15.0)  # one gossip round refreshes the summary
    fresh_call = system.discover(client, REQUEST, timeout=30.0)
    assert fresh_call.service_names() == ["fresh"]


def test_everything_at_once():
    """Churn + roaming + registry outage + standby + queries, all together.

    The kitchen-sink scenario: whatever interleaving happens, every
    query completes and nothing crashes the simulator.
    """
    config = DiscoveryConfig(
        beacon_interval=1.0, lease_duration=6.0, purge_interval=1.0,
        query_timeout=2.0, aggregation_timeout=0.3, signalling_interval=3.0,
    )
    system = DiscoverySystem(seed=83, ontology=battlefield_ontology(),
                             config=config)
    for i in range(3):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_ring()
    system.add_standby_registry("lan-0", lan_target=1)
    services = [
        system.add_service(f"lan-{i % 3}", _radar(f"radar-{i}"))
        for i in range(6)
    ]
    clients = [system.add_client(f"lan-{i}") for i in range(3)]
    system.run(until=5.0)

    # Interleave dynamics over ~60 s.
    system.sim.schedule_at(10.0, services[0].crash)
    system.sim.schedule_at(15.0, system.registries[1].crash)
    system.sim.schedule_at(20.0, lambda: system.move(services[1], "lan-2"))
    system.sim.schedule_at(30.0, services[0].restart)
    system.sim.schedule_at(35.0, system.registries[1].restart)
    system.sim.schedule_at(40.0, lambda: system.move(services[1], "lan-0"))

    completed = 0
    with_hits = 0
    for round_index in range(12):
        client = clients[round_index % 3]
        call = system.discover(client, REQUEST, timeout=30.0)
        completed += 1 if call.completed else 0
        with_hits += 1 if call.hits else 0
        system.run_for(5.0)
    assert completed == 12
    assert with_hits >= 10  # brief transients may hide some services
    # After the dust settles, everything is discoverable again.
    system.run_for(30.0)
    final = system.discover(clients[0], REQUEST, timeout=30.0)
    assert len(final.hits) == 6
