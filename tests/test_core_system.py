"""Tests for the DiscoverySystem facade and strategy configurations."""

from __future__ import annotations

import pytest

from repro.core.config import (
    DiscoveryConfig,
    STRATEGY_EXPANDING_RING,
    STRATEGY_RANDOM_WALK,
)
from repro.core.system import DiscoverySystem, make_models
from repro.errors import ReproError
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name="radar-1"):
    return ServiceProfile.build(name, "ncw:AirSurveillanceRadarService",
                                outputs=["ncw:AirTrack"])


def test_make_models_unknown_id():
    with pytest.raises(ReproError):
        make_models(None, include=("carrier-pigeon",))


def test_make_models_semantic_without_ontology():
    models = make_models(battlefield_ontology(), include=("semantic",),
                         with_ontology=False)
    assert not models[0].can_evaluate()


def test_node_id_generation_unique():
    system = DiscoverySystem(seed=1)
    system.add_lan("lan-0")
    a = system.add_registry("lan-0")
    b = system.add_registry("lan-0")
    assert a.node_id != b.node_id


def test_run_for_advances_clock():
    system = DiscoverySystem(seed=1)
    system.add_lan("lan-0")
    system.run(until=1.0)
    system.run_for(2.0)
    assert system.sim.now == 3.0


def test_discover_timeout_returns_incomplete():
    config = DiscoveryConfig(fallback_enabled=False, query_timeout=500.0,
                             beacon_interval=None)
    system = DiscoverySystem(seed=1, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    client = system.add_client("lan-0")
    system.run(until=2.0)
    registry.crash()
    call = system.discover(client, REQUEST, timeout=1.0)
    assert not call.completed


def test_cross_lan_discovery_through_chain():
    system = DiscoverySystem(seed=2, ontology=battlefield_ontology())
    for i in range(4):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_chain()
    system.add_service("lan-3", _radar())
    client = system.add_client("lan-0")
    system.run(until=3.0)
    call = system.discover(client, REQUEST)
    assert call.service_names() == ["radar-1"]


def test_federate_ring_closes_loop_and_queries_do_not_loop():
    system = DiscoverySystem(seed=2, ontology=battlefield_ontology())
    for i in range(3):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_ring()
    system.add_service("lan-1", _radar())
    client = system.add_client("lan-0")
    system.run(until=3.0)
    call = system.discover(client, REQUEST)
    # Loop avoidance: the unique hit appears exactly once.
    assert call.service_names() == ["radar-1"]


def test_expanding_ring_strategy_finds_nearby_first():
    config = DiscoveryConfig(strategy=STRATEGY_EXPANDING_RING,
                             ring_ttls=(0, 1, 2), aggregation_timeout=0.3)
    system = DiscoverySystem(seed=3, ontology=battlefield_ontology(),
                             config=config)
    for i in range(3):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_chain()
    system.add_service("lan-0", _radar("near"))
    system.add_service("lan-2", _radar("far"))
    client = system.add_client("lan-0")
    system.run(until=3.0)
    call = system.discover(client, REQUEST, timeout=30.0)
    # Ring stops at the first satisfied round: the local hit suffices.
    assert call.service_names() == ["near"]


def test_expanding_ring_widens_until_found():
    config = DiscoveryConfig(strategy=STRATEGY_EXPANDING_RING,
                             ring_ttls=(0, 1, 2), aggregation_timeout=0.3)
    system = DiscoverySystem(seed=3, ontology=battlefield_ontology(),
                             config=config)
    for i in range(3):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_chain()
    system.add_service("lan-2", _radar("far-only"))
    client = system.add_client("lan-0")
    system.run(until=3.0)
    call = system.discover(client, REQUEST, timeout=30.0)
    assert call.service_names() == ["far-only"]


def test_random_walk_strategy_completes():
    config = DiscoveryConfig(strategy=STRATEGY_RANDOM_WALK, walk_length=4,
                             aggregation_timeout=0.3)
    system = DiscoverySystem(seed=4, ontology=battlefield_ontology(),
                             config=config)
    for i in range(3):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_ring()
    system.add_service("lan-1", _radar())
    client = system.add_client("lan-0")
    system.run(until=3.0)
    call = system.discover(client, REQUEST, timeout=30.0)
    assert call.completed


def test_traffic_snapshot_keys():
    system = DiscoverySystem(seed=1)
    system.add_lan("lan-0")
    snapshot = system.traffic()
    assert {"bytes_sent", "messages_sent"} <= set(snapshot)


def test_alive_services_listing():
    system = DiscoverySystem(seed=1, ontology=battlefield_ontology())
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    service = system.add_service("lan-0", _radar())
    system.run(until=1.0)
    assert system.alive_services() == [service]
    service.crash()
    assert system.alive_services() == []


def test_determinism_same_seed_same_traffic():
    def build_and_run(seed):
        system = DiscoverySystem(seed=seed, ontology=battlefield_ontology())
        for i in range(2):
            system.add_lan(f"lan-{i}")
            system.add_registry(f"lan-{i}")
        system.federate_chain()
        system.add_service("lan-1", _radar())
        client = system.add_client("lan-0")
        system.run(until=3.0)
        call = system.discover(client, REQUEST)
        return system.traffic(), tuple(call.service_names())

    assert build_and_run(99) == build_and_run(99)


def test_discover_timeout_clamps_to_deadline():
    # A call that cannot complete (registry crashed, query timeout far
    # beyond the discover budget) must stop the clock exactly at the
    # deadline instead of draining events arbitrarily far past it.
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=DiscoveryConfig(query_timeout=120.0))
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    client = system.add_client("lan-0")
    system.run(until=2.0)
    registry.crash()
    deadline = system.sim.now + 5.0
    call = system.discover(client, REQUEST, timeout=5.0)
    assert call.timed_out
    assert not call.completed
    assert system.sim.now == deadline
    # The client's own 120 s query timer is still queued, untouched.
    assert system.sim.pending() > 0
