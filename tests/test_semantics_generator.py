"""Unit tests for ontology and profile generators."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.semantics.generator import (
    OntologyGenerator,
    ProfileGenerator,
    battlefield_ontology,
    emergency_ontology,
)
from repro.semantics.matchmaker import DegreeOfMatch, Matchmaker
from repro.semantics.ontology import THING
from repro.semantics.reasoner import Reasoner


def test_domain_ontologies_are_consistent():
    for factory in (battlefield_ontology, emergency_ontology):
        ont = factory()
        assert len(ont) > 40
        reasoner = Reasoner(ont)
        for cls in ont.classes():
            if cls != THING:
                assert reasoner.subsumes(THING, cls)


def test_random_ontology_deterministic():
    a = OntologyGenerator(7).random_ontology()
    b = OntologyGenerator(7).random_ontology()
    assert a.classes() == b.classes()
    assert list(a.iter_edges()) == list(b.iter_edges())


def test_random_ontology_different_seeds_differ():
    a = OntologyGenerator(1).random_ontology()
    b = OntologyGenerator(2).random_ontology()
    assert list(a.iter_edges()) != list(b.iter_edges())


def test_random_ontology_class_counts():
    ont = OntologyGenerator(0).random_ontology(
        n_service_classes=10, n_data_classes=20
    )
    # roots + generated members + THING
    assert len(ont) == 10 + 20 + 2 + 1


def test_random_ontology_rejects_empty():
    with pytest.raises(WorkloadError):
        OntologyGenerator(0).random_ontology(n_service_classes=0)


def test_profile_generator_pools_are_disjoint():
    ont = battlefield_ontology()
    gen = ProfileGenerator(ont, seed=1)
    assert not set(gen.category_pool) & set(gen.data_pool)
    assert all("Service" in c for c in gen.category_pool)


def test_profiles_deterministic():
    ont = battlefield_ontology()
    assert ProfileGenerator(ont, seed=3).profiles(10) == \
        ProfileGenerator(ont, seed=3).profiles(10)


def test_profiles_draw_from_right_pools():
    ont = emergency_ontology()
    gen = ProfileGenerator(ont, seed=2)
    for profile in gen.profiles(20):
        assert profile.category in gen.category_pool
        for concept in (*profile.inputs, *profile.outputs):
            assert concept in gen.data_pool
        assert profile.outputs  # at least one output always


def test_request_for_generalize_zero_matches_anchor():
    ont = battlefield_ontology()
    gen = ProfileGenerator(ont, seed=4)
    profile = gen.random_profile(0)
    request = gen.request_for(profile, generalize=0)
    assert request.category == profile.category


def test_request_for_generalize_walks_up():
    ont = battlefield_ontology()
    gen = ProfileGenerator(ont, seed=4)
    reasoner = Reasoner(ont)
    profile = gen.random_profile(0)
    request = gen.request_for(profile, generalize=2)
    assert reasoner.subsumes(request.category, profile.category) or \
        request.category == profile.category


def test_labelled_requests_anchor_is_relevant():
    ont = battlefield_ontology()
    gen = ProfileGenerator(ont, seed=5)
    profiles = gen.profiles(20)
    for item in gen.labelled_requests(profiles, 10, generalize=1):
        assert item.relevant  # the anchor at least must match
        matchmaker = Matchmaker(Reasoner(ont))
        for name in item.relevant:
            profile = next(p for p in profiles if p.service_name == name)
            assert matchmaker.match(profile, item.request).degree \
                >= DegreeOfMatch.SUBSUMES


def test_profile_generator_rejects_flat_ontology():
    from repro.semantics.ontology import Ontology

    flat = Ontology("flat")
    flat.add_class("OnlyData")
    with pytest.raises(WorkloadError):
        ProfileGenerator(flat)
