"""Tests for the optional/extension features: subscriptions, informed
routing, standby registries, and mediation."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig, STRATEGY_INFORMED
from repro.core.mediation import MediationPlanner
from repro.core.standby import StandbyRegistry
from repro.core.system import DiscoverySystem, make_models
from repro.errors import ReproError
from repro.semantics.generator import battlefield_ontology, emergency_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name="radar-1"):
    return ServiceProfile.build(name, "ncw:RadarService",
                                outputs=["ncw:AirTrack"])


@pytest.fixture
def fast_cfg():
    return DiscoveryConfig(
        beacon_interval=1.0, lease_duration=5.0, purge_interval=1.0,
        query_timeout=2.0, aggregation_timeout=0.3, signalling_interval=2.0,
    )


def _single_lan(cfg, seed=31):
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=cfg)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    return system


# -- subscriptions / notifications --------------------------------------------

def test_watch_notifies_on_new_publish(fast_cfg):
    system = _single_lan(fast_cfg)
    client = system.add_client("lan-0")
    system.run(until=2.0)
    watch = client.watch(REQUEST)
    system.run_for(0.5)
    assert watch.acked
    assert watch.hits == []
    system.add_service("lan-0", _radar())
    system.run_for(2.0)
    assert watch.service_names() == ["radar-1"]
    assert watch.notified_at


def test_watch_does_not_notify_nonmatching(fast_cfg):
    system = _single_lan(fast_cfg)
    client = system.add_client("lan-0")
    system.run(until=2.0)
    watch = client.watch(REQUEST)
    system.add_service("lan-0", ServiceProfile.build(
        "fuel", "ncw:FuelStatusService", outputs=["ncw:Order"]))
    system.run_for(2.0)
    assert watch.hits == []


def test_watch_survives_lease_horizon(fast_cfg):
    system = _single_lan(fast_cfg)
    client = system.add_client("lan-0")
    system.run(until=2.0)
    watch = client.watch(REQUEST)
    system.run_for(4 * fast_cfg.lease_duration)
    system.add_service("lan-0", _radar("late"))
    system.run_for(2.0)
    assert watch.service_names() == ["late"]


def test_unwatch_stops_notifications(fast_cfg):
    system = _single_lan(fast_cfg)
    client = system.add_client("lan-0")
    system.run(until=2.0)
    watch = client.watch(REQUEST)
    system.run_for(0.5)
    client.unwatch(watch)
    system.run_for(0.5)
    system.add_service("lan-0", _radar())
    system.run_for(2.0)
    assert watch.hits == []


def test_abandoned_subscription_expires_at_registry(fast_cfg):
    system = _single_lan(fast_cfg)
    client = system.add_client("lan-0")
    registry = system.registries[0]
    system.run(until=2.0)
    client.watch(REQUEST)
    system.run_for(0.5)
    assert len(registry._subscriptions) == 1
    client.crash()  # no more refreshes
    system.run_for(3 * fast_cfg.lease_duration)
    assert len(registry._subscriptions) == 0


def test_watch_reestablished_after_registry_failover(fast_cfg):
    system = DiscoverySystem(seed=32, ontology=battlefield_ontology(),
                             config=fast_cfg)
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    r0 = system.add_registry("lan-0")
    system.add_registry("lan-1")
    system.federate_chain()
    client = system.add_client("lan-0")
    system.run(until=5.0)  # signalling primes alternatives
    watch = client.watch(REQUEST)
    system.run_for(1.0)
    r0.crash()
    # Failover happens on the next query; issue one to trigger it.
    system.discover(client, REQUEST, timeout=30.0)
    system.run_for(1.0)
    assert client.tracker.current == "registry-01"
    # New services now notify via the new registry.
    system.add_service("lan-1", _radar("post-failover"))
    system.run_for(3.0)
    assert "post-failover" in watch.service_names()


def test_notification_deduplicates_replayed_publishes(fast_cfg):
    system = _single_lan(fast_cfg)
    client = system.add_client("lan-0")
    service = system.add_service("lan-0", _radar())
    system.run(until=2.0)
    watch = client.watch(REQUEST)
    # Republish (profile update) bumps version; dedup is by ad UUID.
    service.update_profile(_radar())
    system.run_for(1.0)
    service.update_profile(_radar())
    system.run_for(1.0)
    assert watch.service_names().count("radar-1") == 1


# -- informed (summary) routing ----------------------------------------------------

@pytest.fixture
def informed_system():
    cfg = DiscoveryConfig(strategy=STRATEGY_INFORMED, signalling_interval=2.0,
                          aggregation_timeout=0.3)
    system = DiscoverySystem(seed=33, ontology=battlefield_ontology(),
                             config=cfg)
    for i in range(4):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_ring()
    system.add_service("lan-2", _radar("radar-far"))
    system.add_service("lan-3", ServiceProfile.build(
        "fuel", "ncw:FuelStatusService", outputs=["ncw:Order"]))
    return system


def test_informed_finds_remote_matches(informed_system):
    client = informed_system.add_client("lan-0")
    informed_system.run(until=20.0)  # summaries gossip around the ring
    call = informed_system.discover(client, REQUEST, timeout=30.0)
    assert call.service_names() == ["radar-far"]


def test_informed_skips_irrelevant_registries(informed_system):
    client = informed_system.add_client("lan-0")
    informed_system.run(until=20.0)
    stats = informed_system.network.stats
    before = stats.by_type_count.get("query-forward", 0)
    informed_system.discover(client, REQUEST, timeout=30.0)
    after = stats.by_type_count.get("query-forward", 0)
    assert after - before == 1  # only the radar-holding registry was asked


def test_summaries_only_when_enabled():
    plain = DiscoveryConfig()
    informed = DiscoveryConfig(strategy=STRATEGY_INFORMED)
    explicit = DiscoveryConfig(content_summaries=True)
    assert not plain.summaries_enabled()
    assert informed.summaries_enabled()
    assert explicit.summaries_enabled()


def test_summary_terms_subsumption_aware(fast_cfg):
    cfg = DiscoveryConfig(content_summaries=True)
    system = DiscoverySystem(seed=34, ontology=battlefield_ontology(),
                             config=cfg)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    system.add_service("lan-0", _radar())
    system.run(until=2.0)
    terms = registry.describe().summary_terms
    assert "ncw:RadarService" in terms
    assert "ncw:SensorService" in terms  # ancestor indexed
    assert "owl:Thing" not in terms
    assert "ncw:Service" not in terms    # near-root pruned


# -- standby registries -----------------------------------------------------------

def test_standby_requires_beacons():
    with pytest.raises(ReproError):
        StandbyRegistry("s", DiscoveryConfig(beacon_interval=None),
                        make_models(None, ("uri",)))


def test_standby_target_validation():
    with pytest.raises(ReproError):
        StandbyRegistry("s", DiscoveryConfig(), make_models(None, ("uri",)),
                        lan_target=0)


def test_standby_stays_dormant_while_quota_met(fast_cfg):
    system = _single_lan(fast_cfg)
    standby = system.add_standby_registry("lan-0", lan_target=1)
    system.run(until=10.0)
    assert not standby.active
    assert standby.promotions == 0
    assert len(standby.store) == 0


def test_standby_promotes_on_registry_loss_and_serves(fast_cfg):
    system = _single_lan(fast_cfg)
    primary = system.registries[0]
    standby = system.add_standby_registry("lan-0", lan_target=1)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=3.0)
    primary.crash()
    system.run_for(10.0)
    assert standby.active
    call = system.discover(client, REQUEST, timeout=30.0)
    assert call.via == f"registry:{standby.node_id}"
    assert call.service_names() == ["radar-1"]


def test_standby_demotes_when_primary_returns(fast_cfg):
    system = _single_lan(fast_cfg)
    primary = system.registries[0]
    standby = system.add_standby_registry("lan-0", lan_target=1)
    system.run(until=3.0)
    primary.crash()
    system.run_for(10.0)
    assert standby.active
    primary.restart()
    system.run_for(15.0)
    assert not standby.active
    assert standby.demotions == 1


def test_two_standbys_only_one_promotes(fast_cfg):
    system = _single_lan(fast_cfg)
    primary = system.registries[0]
    s1 = system.add_standby_registry("lan-0", lan_target=1)
    s2 = system.add_standby_registry("lan-0", lan_target=1)
    system.run(until=3.0)
    primary.crash()
    system.run_for(15.0)
    assert sum(1 for s in (s1, s2) if s.active) == 1


def test_standby_crash_resets_to_dormant(fast_cfg):
    system = _single_lan(fast_cfg)
    primary = system.registries[0]
    standby = system.add_standby_registry("lan-0", lan_target=1)
    system.run(until=3.0)
    primary.crash()
    system.run_for(10.0)
    assert standby.active
    standby.crash()
    primary.restart()
    standby.restart()
    system.run_for(10.0)
    assert not standby.active  # quota met by the primary again


# -- mediation ----------------------------------------------------------------------

@pytest.fixture
def mediation_system():
    system = DiscoverySystem(seed=35, ontology=emergency_ontology())
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    system.add_service("lan-0", ServiceProfile.build(
        "damage-fr", "ems:AlertingService", outputs=["ems:DamageReport"]))
    system.add_service("lan-0", ServiceProfile.build(
        "report-translator", "ems:TranslationService",
        inputs=["ems:DamageReport"], outputs=["ems:CasualtyReport"]))
    client = system.add_client("lan-0")
    system.run(until=2.0)
    return system, client


NEED = ServiceRequest.build(None, outputs=["ems:CasualtyReport"],
                            inputs=["ems:IncidentLocation"])


def test_mediation_builds_two_step_plan(mediation_system):
    system, client = mediation_system
    planner = MediationPlanner(system,
                               translator_category="ems:TranslationService")
    outcome = planner.discover(client, NEED)
    assert outcome.direct_hits == []
    assert [p.describe() for p in outcome.plans] == \
        ["damage-fr -> report-translator"]
    assert outcome.satisfied
    assert outcome.extra_queries == 2


def test_mediation_prefers_direct_hits(mediation_system):
    system, client = mediation_system
    system.add_service("lan-0", ServiceProfile.build(
        "native-casualty", "ems:CasualtyTrackingService",
        outputs=["ems:CasualtyReport"]))
    system.run_for(1.0)
    planner = MediationPlanner(system,
                               translator_category="ems:TranslationService")
    outcome = planner.discover(client, NEED)
    assert [h.advertisement.service_name for h in outcome.direct_hits] == \
        ["native-casualty"]
    assert outcome.plans == []
    assert outcome.extra_queries == 0


def test_mediation_without_translators_fails_gracefully():
    system = DiscoverySystem(seed=36, ontology=emergency_ontology())
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    system.add_service("lan-0", ServiceProfile.build(
        "damage-fr", "ems:AlertingService", outputs=["ems:DamageReport"]))
    client = system.add_client("lan-0")
    system.run(until=2.0)
    planner = MediationPlanner(system,
                               translator_category="ems:TranslationService")
    outcome = planner.discover(client, NEED)
    assert not outcome.satisfied
    assert outcome.extra_queries == 1  # the translator lookup


def test_mediation_plan_limit(mediation_system):
    system, client = mediation_system
    for i in range(4):
        system.add_service("lan-0", ServiceProfile.build(
            f"extra-damage-{i}", "ems:AlertingService",
            outputs=["ems:DamageReport"]))
    system.run_for(1.0)
    planner = MediationPlanner(system,
                               translator_category="ems:TranslationService")
    outcome = planner.discover(client, NEED, max_plans=2)
    assert len(outcome.plans) == 2


# -- mobility (roaming between LANs) --------------------------------------------

def test_service_roaming_migrates_advertisements(fast_cfg):
    system = DiscoverySystem(seed=41, ontology=battlefield_ontology(),
                             config=fast_cfg)
    system.add_lan("lan-a")
    system.add_lan("lan-b")
    ra = system.add_registry("lan-a")
    rb = system.add_registry("lan-b")
    system.federate_chain()
    service = system.add_service("lan-a", _radar("mobile"))
    system.run(until=3.0)
    assert len(ra.store.by_service(service.node_id)) == 3
    system.move(service, "lan-b")
    system.run_for(10.0)
    assert service.lan_name == "lan-b"
    assert service.tracker.current == rb.node_id
    assert len(rb.store.by_service(service.node_id)) == 3
    assert len(ra.store.by_service(service.node_id)) == 0  # leases lapsed


def test_client_roaming_reattaches_locally(fast_cfg):
    system = DiscoverySystem(seed=42, ontology=battlefield_ontology(),
                             config=fast_cfg)
    system.add_lan("lan-a")
    system.add_lan("lan-b")
    system.add_registry("lan-a")
    rb = system.add_registry("lan-b")
    system.federate_chain()
    system.add_service("lan-b", _radar("local-to-b"))
    client = system.add_client("lan-a")
    system.run(until=3.0)
    assert client.tracker.current == "registry-00"
    system.move(client, "lan-b")
    system.run_for(3.0)
    assert client.tracker.current == rb.node_id
    call = system.discover(client, REQUEST, timeout=30.0)
    assert call.service_names() == ["local-to-b"]


def test_roaming_client_watch_reestablished(fast_cfg):
    system = DiscoverySystem(seed=43, ontology=battlefield_ontology(),
                             config=fast_cfg)
    system.add_lan("lan-a")
    system.add_lan("lan-b")
    system.add_registry("lan-a")
    system.add_registry("lan-b")
    client = system.add_client("lan-a")
    system.run(until=3.0)
    watch = client.watch(REQUEST)
    system.run_for(1.0)
    system.move(client, "lan-b")
    system.run_for(3.0)
    system.add_service("lan-b", _radar("b-radar"))
    system.run_for(3.0)
    assert "b-radar" in watch.service_names()


def test_move_to_same_lan_is_noop(fast_cfg):
    system = DiscoverySystem(seed=44, ontology=battlefield_ontology(),
                             config=fast_cfg)
    system.add_lan("lan-a")
    system.add_registry("lan-a")
    client = system.add_client("lan-a")
    system.run(until=2.0)
    attached = client.tracker.current
    system.move(client, "lan-a")
    assert client.tracker.current == attached  # on_moved never fired


def test_move_to_unknown_lan_rejected(fast_cfg):
    from repro.errors import NetworkError

    system = DiscoverySystem(seed=45, ontology=battlefield_ontology(),
                             config=fast_cfg)
    system.add_lan("lan-a")
    client = system.add_client("lan-a")
    with pytest.raises(NetworkError):
        system.move(client, "lan-zzz")


# -- multi-hop composition ----------------------------------------------------------

def test_two_hop_translator_chain():
    system = DiscoverySystem(seed=46, ontology=emergency_ontology())
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    system.add_service("lan-0", ServiceProfile.build(
        "damage-fr", "ems:AlertingService", outputs=["ems:DamageReport"]))
    system.add_service("lan-0", ServiceProfile.build(
        "t1", "ems:TranslationService",
        inputs=["ems:DamageReport"], outputs=["ems:CasualtyReport"]))
    system.add_service("lan-0", ServiceProfile.build(
        "t2", "ems:TranslationService",
        inputs=["ems:CasualtyReport"], outputs=["ems:EvacuationAlert"]))
    client = system.add_client("lan-0")
    system.run(until=2.0)
    planner = MediationPlanner(system,
                               translator_category="ems:TranslationService")
    need = ServiceRequest.build(None, outputs=["ems:EvacuationAlert"],
                                inputs=["ems:IncidentLocation"])
    deep = planner.discover(client, need, max_depth=2)
    assert [p.describe() for p in deep.plans] == ["damage-fr -> t1 -> t2"]
    assert deep.plans[0].depth == 2
    assert deep.plans[0].translator.advertisement.service_name == "t2"
    shallow = planner.discover(client, need, max_depth=1)
    assert not shallow.satisfied


def test_chain_never_reuses_a_translator():
    system = DiscoverySystem(seed=47, ontology=emergency_ontology())
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    # A translator loop: A->B and B->A, but no producer anywhere.
    system.add_service("lan-0", ServiceProfile.build(
        "t-ab", "ems:TranslationService",
        inputs=["ems:DamageReport"], outputs=["ems:CasualtyReport"]))
    system.add_service("lan-0", ServiceProfile.build(
        "t-ba", "ems:TranslationService",
        inputs=["ems:CasualtyReport"], outputs=["ems:DamageReport"]))
    client = system.add_client("lan-0")
    system.run(until=2.0)
    planner = MediationPlanner(system,
                               translator_category="ems:TranslationService")
    need = ServiceRequest.build(None, outputs=["ems:CasualtyReport"],
                                inputs=["ems:IncidentLocation"])
    outcome = planner.discover(client, need, max_depth=4)
    assert not outcome.satisfied  # terminates without looping
    assert outcome.plans == []


def test_shorter_plans_ranked_first():
    system = DiscoverySystem(seed=48, ontology=emergency_ontology())
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    # Direct bridge AND a two-hop detour to the same goal.
    system.add_service("lan-0", ServiceProfile.build(
        "producer-a", "ems:AlertingService", outputs=["ems:DamageReport"]))
    system.add_service("lan-0", ServiceProfile.build(
        "producer-b", "ems:WeatherService", outputs=["ems:WeatherReport"]))
    system.add_service("lan-0", ServiceProfile.build(
        "t-direct", "ems:TranslationService",
        inputs=["ems:DamageReport"], outputs=["ems:EvacuationAlert"]))
    system.add_service("lan-0", ServiceProfile.build(
        "t-hop1", "ems:TranslationService",
        inputs=["ems:WeatherReport"], outputs=["ems:HazmatReport"]))
    system.add_service("lan-0", ServiceProfile.build(
        "t-hop2", "ems:TranslationService",
        inputs=["ems:HazmatReport"], outputs=["ems:EvacuationAlert"]))
    client = system.add_client("lan-0")
    system.run(until=2.0)
    planner = MediationPlanner(system,
                               translator_category="ems:TranslationService")
    need = ServiceRequest.build(None, outputs=["ems:EvacuationAlert"],
                                inputs=["ems:IncidentLocation"])
    outcome = planner.discover(client, need, max_depth=2)
    assert outcome.plans[0].describe() == "producer-a -> t-direct"
    assert outcome.plans[0].depth == 1


# -- registry capacity (asymmetric resources) ------------------------------------

def test_capacity_nack_sheds_to_other_registry(fast_cfg):
    system = DiscoverySystem(seed=49, ontology=battlefield_ontology(),
                             config=fast_cfg)
    system.add_lan("lan-0")
    small = system.add_registry("lan-0", capacity=3)
    big = system.add_registry("lan-0")
    services = [
        system.add_service("lan-0", _radar(f"radar-{i}")) for i in range(4)
    ]
    client = system.add_client("lan-0")
    system.run(until=20.0)
    assert len(small.store) <= 3
    assert len(big.store) >= 9
    call = system.discover(client, ServiceRequest.build("ncw:RadarService"),
                           timeout=30.0)
    assert sorted(call.service_names()) == [f"radar-{i}" for i in range(4)]
    # At least one service was pushed off the small registry.
    assert any(s.tracker.excluded for s in services)


def test_capacity_allows_republish_of_existing_ad(fast_cfg):
    system = DiscoverySystem(seed=50, ontology=battlefield_ontology(),
                             config=fast_cfg)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0", capacity=3)
    service = system.add_service("lan-0", _radar())
    system.run(until=3.0)
    assert len(registry.store) == 3  # exactly at capacity
    service.update_profile(_radar())  # republish must NOT be NACKed
    system.run_for(2.0)
    assert len(registry.store) == 3
    assert all(ad.version == 2 for ad in registry.store.all())
    assert service.tracker.current == registry.node_id


def test_capacity_bounds_replication_too(fast_cfg):
    from repro.core.config import COOPERATION_REPLICATE_ADS

    cfg = DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        beacon_interval=1.0, lease_duration=5.0, purge_interval=1.0,
    )
    system = DiscoverySystem(seed=51, ontology=battlefield_ontology(),
                             config=cfg)
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    home = system.add_registry("lan-0")
    tiny = system.add_registry("lan-1", capacity=2)
    system.federate_chain()
    for i in range(3):
        system.add_service("lan-0", _radar(f"radar-{i}"))
    system.run(until=5.0)
    assert len(home.store) == 9
    assert len(tiny.store) <= 2


# -- E16 mobility experiment shape --------------------------------------------------

def test_e16_shape_small():
    from repro.experiments.e16_mobility import run

    result = run(move_intervals=(None, 15.0), n_queries=6)
    static = result.rows[0]
    roaming = result.rows[1]
    assert static["moves"] == 0
    assert roaming["moves"] > 0
    assert roaming["recall"] >= 0.8
