"""Tests for service and client node behaviour."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


@pytest.fixture
def fast():
    return DiscoveryConfig(
        beacon_interval=1.0,
        lease_duration=4.0,
        purge_interval=0.5,
        query_timeout=2.0,
        aggregation_timeout=0.3,
        signalling_interval=2.0,
    )


def _system(fast, *, lans=1, registries=True, seed=21):
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=fast)
    for i in range(lans):
        system.add_lan(f"lan-{i}")
        if registries:
            system.add_registry(f"lan-{i}")
    return system


def _radar(name="radar-1"):
    return ServiceProfile.build(name, "ncw:AirSurveillanceRadarService",
                                outputs=["ncw:AirTrack"],
                                qos={"latency_ms": 40.0})


REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


# -- service node -----------------------------------------------------------

def test_service_publishes_under_all_its_models(fast):
    system = _system(fast)
    service = system.add_service("lan-0", _radar())
    system.run(until=2.0)
    registry = system.registries[0]
    assert len(registry.store) == 3  # uri + template + semantic
    assert all(rec.acked for rec in service._published.values())


def test_service_renews_and_survives_lease_horizon(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    system.run(until=20.0)  # 5 lease durations
    assert len(system.registries[0].store) == 3


def test_crashed_service_ads_are_purged(fast):
    system = _system(fast)
    service = system.add_service("lan-0", _radar())
    system.run(until=2.0)
    service.crash()
    system.run_for(6.0)  # > lease duration
    assert len(system.registries[0].store) == 0


def test_deregister_removes_immediately(fast):
    system = _system(fast)
    service = system.add_service("lan-0", _radar())
    system.run(until=2.0)
    service.deregister()
    system.run_for(0.5)
    assert len(system.registries[0].store) == 0


def test_update_profile_republishes_new_content(fast):
    system = _system(fast)
    service = system.add_service("lan-0", _radar())
    system.run(until=2.0)
    updated = ServiceProfile.build("radar-1", "ncw:AirSurveillanceRadarService",
                                   outputs=["ncw:AirTrack"],
                                   qos={"latency_ms": 10.0})
    service.update_profile(updated)
    system.run_for(0.5)
    registry = system.registries[0]
    semantic_ads = registry.store.of_model("semantic")
    assert len(semantic_ads) == 1
    assert semantic_ads[0].description.qos_value("latency_ms") == 10.0
    assert semantic_ads[0].version == 2


def test_service_restart_republishes(fast):
    system = _system(fast)
    service = system.add_service("lan-0", _radar())
    system.run(until=2.0)
    service.crash()
    system.run_for(6.0)
    assert len(system.registries[0].store) == 0
    service.restart()
    system.run_for(2.0)
    assert len(system.registries[0].store) == 3


def test_service_fails_over_to_surviving_registry(fast):
    system = _system(fast, lans=2)
    system.federate_chain()
    service = system.add_service("lan-0", _radar())
    system.run(until=5.0)  # signalling primes the alternatives cache
    first = service.tracker.current
    system.network.node(first).crash()
    system.run_for(15.0)
    assert service.tracker.current is not None
    assert service.tracker.current != first
    survivor = system.network.node(service.tracker.current)
    assert len(survivor.store.by_service(service.node_id)) == 3


def test_service_answers_decentral_queries_directly(fast):
    system = _system(fast, registries=False)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.via == "fallback"
    assert call.service_names() == ["radar-1"]


# -- client node --------------------------------------------------------------

def test_client_discovers_via_registry(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.completed
    assert call.via.startswith("registry:")
    assert call.service_names() == ["radar-1"]
    assert call.endpoints() == ["svc://svc-node-000"]
    assert call.latency > 0.0


def test_client_ranked_hits_best_first(fast):
    system = _system(fast)
    system.add_service("lan-0", ServiceProfile.build(
        "exact", "ncw:SensorService", outputs=["ncw:Track"]))
    system.add_service("lan-0", _radar("narrow"))
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.service_names()[0] == "exact"


def test_client_response_control_cap(fast):
    system = _system(fast)
    for i in range(6):
        system.add_service("lan-0", _radar(f"radar-{i}"))
    client = system.add_client("lan-0")
    system.run(until=2.0)
    capped = ServiceRequest.build("ncw:SensorService", max_results=2)
    call = system.discover(client, capped)
    assert len(call.hits) == 2
    assert call.responses == 1


def test_client_times_out_and_falls_back(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    system.registries[0].crash()
    call = system.discover(client, REQUEST, timeout=30.0)
    assert call.completed
    assert call.via == "fallback"
    assert call.service_names() == ["radar-1"]
    assert call.attempts == 2


def test_client_failed_when_fallback_disabled():
    config = DiscoveryConfig(fallback_enabled=False, query_timeout=1.0,
                             beacon_interval=None)
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST, timeout=10.0)
    assert call.completed
    assert call.via == "failed"
    assert call.hits == []


def test_client_reattaches_via_beacons_after_registry_restart(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    registry = system.registries[0]
    registry.crash()
    call = system.discover(client, REQUEST, timeout=30.0)  # drops to fallback
    assert call.via == "fallback"
    registry.restart()
    system.run_for(8.0)  # beacons + service republish
    call2 = system.discover(client, REQUEST, timeout=30.0)
    assert call2.via.startswith("registry:")
    assert call2.service_names() == ["radar-1"]


def test_client_fetch_artifact_attaches_ontology(fast):
    system = _system(fast)
    client = system.add_client("lan-0", with_ontology=False)
    system.run(until=2.0)
    semantic = client.models.get("semantic")
    assert not semantic.can_evaluate()
    client.fetch_artifact("battlefield")
    system.run_for(1.0)
    assert semantic.can_evaluate()
    assert "battlefield" in client.artifacts_fetched


def test_thin_client_relies_on_registry_side_matching(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0", with_ontology=False)
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.service_names() == ["radar-1"]


def test_discovery_call_bookkeeping(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.succeeded
    assert call.responders >= 1
    assert call.response_bytes > 0
    assert client.calls == [call]


# -- wire-id bookkeeping and retry counters ---------------------------------

def test_wire_id_map_drains_on_registry_path(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST)
    assert call.via.startswith("registry:")
    assert client._by_wire_id == {}
    assert call.completions == 1


def test_wire_id_map_drains_on_fallback_path(fast):
    system = _system(fast)
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    system.registries[0].crash()
    call = system.discover(client, REQUEST, timeout=30.0)
    assert call.via == "fallback"
    assert client._by_wire_id == {}
    assert call.completions == 1


def test_wire_id_map_empty_when_call_fails_immediately():
    config = DiscoveryConfig(fallback_enabled=False, query_timeout=1.0,
                             beacon_interval=None)
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = system.discover(client, REQUEST, timeout=10.0)
    assert call.via == "failed"
    # A call that never went on the wire must not leave a wire-id entry.
    assert client._by_wire_id == {}


def test_client_crash_completes_in_flight_calls_and_drains_map(fast):
    system = _system(fast)
    client = system.add_client("lan-0")
    system.run(until=2.0)
    call = client.discover(REQUEST)  # query on the wire, awaiting a response
    assert not call.completed
    assert client._by_wire_id
    client.crash()
    assert call.completed
    assert call.via == "crashed"
    assert client._by_wire_id == {}


def test_query_retry_counters_match_network_stats(fast):
    system = _system(fast)
    system.add_registry("lan-0")  # second registry on the LAN
    system.add_service("lan-0", _radar())
    client = system.add_client("lan-0")
    system.run(until=2.0)
    system.network.node(client.tracker.current).crash()
    call = system.discover(client, REQUEST, timeout=30.0)
    # The timed-out attempt fails over and retries at the survivor.
    assert call.via.startswith("registry:")
    assert call.attempts == 2
    assert client.query_retries == 1
    assert system.network.stats.retries.get("query", 0) == 1
    assert client._by_wire_id == {}
