"""Unit tests for the adaptive routing layer (repro.core.routing).

Pins down the deterministic decision rules the E18 experiment relies
on: the EWMA latency fold, the geometric cooldown decay, the
queue-depth tie-breaking chain of the least-loaded strategy, the
default-preserving tie behavior of ``select`` (the hash-spread
cold-start contract), and the static strategy's complete inertness.
"""

import pytest

from repro.core.routing import (
    CooldownFailover,
    CooldownManager,
    LeastLoaded,
    NearestLatency,
    PassiveHealthTracker,
    ROUTING_COOLDOWN_FAILOVER,
    ROUTING_LEAST_LOADED,
    ROUTING_NEAREST_LATENCY,
    ROUTING_STATIC,
    Router,
    RoutingConfig,
    StaticOrder,
)
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class _StubNetwork:
    def __init__(self, metrics=None) -> None:
        self.metrics = metrics


class _StubSim:
    def __init__(self, clock) -> None:
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock.now


class _StubNode:
    """Just enough node for a Router: a clock and an optional metrics."""

    def __init__(self, metrics=None) -> None:
        self.clock = _Clock()
        self.sim = _StubSim(self.clock)
        self.network = _StubNetwork(metrics)


def _router(strategy, metrics=None, **params):
    node = _StubNode(metrics)
    return Router(RoutingConfig(strategy=strategy, **params), node), node


# -- RoutingConfig validation ----------------------------------------------


def test_config_defaults_to_static():
    config = RoutingConfig()
    assert config.strategy == ROUTING_STATIC


@pytest.mark.parametrize("kwargs", [
    {"strategy": "round-robin"},
    {"ewma_alpha": 0.0},
    {"ewma_alpha": 1.5},
    {"cooldown_base": 0.0},
    {"cooldown_base": -1.0},
    {"cooldown_factor": 0.5},
    {"cooldown_max": 0.1},  # < default cooldown_base 0.5
])
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(ReproError):
        RoutingConfig(**kwargs)


# -- PassiveHealthTracker ---------------------------------------------------


def test_ewma_first_sample_is_taken_verbatim():
    health = PassiveHealthTracker(alpha=0.3)
    health.observe_latency("r1", 2.0)
    assert health.latency("r1") == 2.0


def test_ewma_update_folds_with_alpha():
    health = PassiveHealthTracker(alpha=0.25)
    health.observe_latency("r1", 2.0)
    health.observe_latency("r1", 4.0)
    # prev + alpha * (rtt - prev) = 2.0 + 0.25 * 2.0
    assert health.latency("r1") == pytest.approx(2.5)
    health.observe_latency("r1", 2.5)
    assert health.latency("r1") == pytest.approx(2.5)
    assert health.samples == 3


def test_ewma_ignores_negative_rtt():
    health = PassiveHealthTracker(alpha=0.5)
    health.observe_latency("r1", -1.0)
    assert health.latency("r1") is None
    assert health.samples == 0


def test_queue_depth_clamps_and_forgets():
    health = PassiveHealthTracker(alpha=0.3)
    assert health.queue_depth("r1") is None
    health.observe_queue_depth("r1", -3)
    assert health.queue_depth("r1") == 0
    health.observe_queue_depth("r1", 7)
    assert health.queue_depth("r1") == 7
    health.forget("r1")
    assert health.queue_depth("r1") is None


# -- CooldownManager --------------------------------------------------------


def test_cooldown_grows_geometrically_and_caps():
    clock = _Clock()
    cooldowns = CooldownManager(clock, base=0.5, factor=2.0, maximum=3.0)
    assert cooldowns.record_failure("r1") == 0.5
    assert cooldowns.record_failure("r1") == 1.0
    assert cooldowns.record_failure("r1") == 2.0
    assert cooldowns.record_failure("r1") == 3.0  # capped
    assert cooldowns.record_failure("r1") == 3.0  # stays capped


def test_cooldown_expires_with_the_clock():
    clock = _Clock()
    cooldowns = CooldownManager(clock, base=0.5, factor=2.0, maximum=3.0)
    cooldowns.record_failure("r1")
    assert cooldowns.in_cooldown("r1")
    assert cooldowns.remaining("r1") == pytest.approx(0.5)
    clock.now = 0.4
    assert cooldowns.remaining("r1") == pytest.approx(0.1)
    clock.now = 0.5
    assert not cooldowns.in_cooldown("r1")
    assert cooldowns.remaining("r1") == 0.0


def test_success_clears_streak_so_decay_restarts():
    clock = _Clock()
    cooldowns = CooldownManager(clock, base=0.5, factor=2.0, maximum=3.0)
    cooldowns.record_failure("r1")
    cooldowns.record_failure("r1")
    cooldowns.record_success("r1")
    assert not cooldowns.in_cooldown("r1")
    # The streak reset: the next failure cools for base again, not 2.0.
    assert cooldowns.record_failure("r1") == 0.5


def test_cooldowns_are_per_target():
    clock = _Clock()
    cooldowns = CooldownManager(clock, base=0.5, factor=2.0, maximum=3.0)
    cooldowns.record_failure("r1")
    assert not cooldowns.in_cooldown("r2")
    assert cooldowns.record_failure("r2") == 0.5


# -- strategy ranking -------------------------------------------------------


def _strategies(alpha=0.3):
    clock = _Clock()
    health = PassiveHealthTracker(alpha=alpha)
    cooldowns = CooldownManager(clock, base=0.5, factor=2.0, maximum=10.0)
    return clock, health, cooldowns


def test_least_loaded_prefers_shallowest_queue():
    _, health, cooldowns = _strategies()
    strategy = LeastLoaded(health, cooldowns)
    health.observe_queue_depth("r1", 5)
    health.observe_queue_depth("r2", 1)
    health.observe_queue_depth("r3", 3)
    assert strategy.order(["r1", "r2", "r3"]) == ["r2", "r3", "r1"]
    assert strategy.select(["r1", "r2", "r3"]) == "r2"


def test_least_loaded_counts_unseen_targets_as_idle():
    _, health, cooldowns = _strategies()
    strategy = LeastLoaded(health, cooldowns)
    health.observe_queue_depth("r1", 2)
    # r2 never reported: depth 0, so it outranks the known-busy r1.
    assert strategy.order(["r1", "r2"]) == ["r2", "r1"]


def test_least_loaded_breaks_depth_ties_by_ewma_then_caller_order():
    _, health, cooldowns = _strategies()
    strategy = LeastLoaded(health, cooldowns)
    for target in ("r1", "r2", "r3"):
        health.observe_queue_depth(target, 2)
    health.observe_latency("r2", 0.8)
    health.observe_latency("r3", 0.2)
    # Equal depth: measured-EWMA targets first (lowest first), the
    # never-measured r1 last.
    assert strategy.order(["r1", "r2", "r3"]) == ["r3", "r2", "r1"]
    # Full tie (same depth, no latency): the caller's order stands.
    health.forget("r2")
    health.forget("r3")
    health.observe_queue_depth("r2", 2)
    health.observe_queue_depth("r3", 2)
    assert strategy.order(["r3", "r1", "r2"]) == ["r3", "r1", "r2"]


def test_select_keeps_default_among_tied_best():
    # The cold-start contract: with no health signal every target ties,
    # and the caller's hash-spread default must win — otherwise every
    # client would herd onto the lexicographically first registry.
    _, health, cooldowns = _strategies()
    strategy = LeastLoaded(health, cooldowns)
    assert strategy.select(["r1", "r2", "r3"], default="r2") == "r2"
    # Once a real signal separates the targets the default loses.
    health.observe_queue_depth("r2", 9)
    assert strategy.select(["r1", "r2", "r3"], default="r2") == "r1"


def test_nearest_latency_prefers_measured_and_lowest():
    _, health, cooldowns = _strategies()
    strategy = NearestLatency(health, cooldowns)
    health.observe_latency("r2", 1.5)
    health.observe_latency("r3", 0.4)
    # Unmeasured r1 sorts after every measured target.
    assert strategy.order(["r1", "r2", "r3"]) == ["r3", "r2", "r1"]


def test_cooldown_pushes_targets_behind_healthy_ones():
    # Shared ranking: a cooling target loses to a healthy one in every
    # strategy, even when its load/latency looks better.
    clock, health, cooldowns = _strategies()
    for strategy_cls in (NearestLatency, LeastLoaded, CooldownFailover):
        strategy = strategy_cls(health, cooldowns)
        health.observe_queue_depth("r1", 0)
        health.observe_latency("r1", 0.1)
        health.observe_queue_depth("r2", 9)
        health.observe_latency("r2", 5.0)
        cooldowns.record_failure("r1")
        assert strategy.order(["r1", "r2"]) == ["r2", "r1"]
        cooldowns.record_success("r1")


def test_cooldown_failover_orders_cooled_by_soonest_expiry():
    clock, health, cooldowns = _strategies()
    strategy = CooldownFailover(health, cooldowns)
    cooldowns.record_failure("r1")  # cools 0.5s
    cooldowns.record_failure("r2")
    cooldowns.record_failure("r2")  # streak of 2: cools 1.0s
    assert strategy.order(["r2", "r1", "r3"]) == ["r3", "r1", "r2"]


def test_static_order_is_identity():
    _, health, cooldowns = _strategies()
    strategy = StaticOrder(health, cooldowns)
    health.observe_queue_depth("r2", 99)
    cooldowns.record_failure("r1")
    assert strategy.order(["r1", "r2"]) == ["r1", "r2"]
    assert strategy.select(["r1", "r2"], default="r2") == "r2"
    assert strategy.select(["r1", "r2"]) == "r1"


# -- Router facade ----------------------------------------------------------


def test_static_router_hooks_are_inert():
    router, _ = _router(ROUTING_STATIC, metrics=MetricsRegistry())
    router.on_response("r1", rtt=1.0, queue_depth=5)
    router.on_busy("r1", retry_after=3.0, queue_depth=9)
    router.on_timeout("r1")
    assert router.health.samples == 0
    assert router.health.queue_depth("r1") is None
    assert router.cooldowns.cooldowns_started == 0
    assert router.select(["r1", "r2"], default="r2") == "r2"
    assert router.order(["r2", "r1"]) == ["r2", "r1"]
    assert router.reroutes == 0


def test_static_pick_walk_consumes_the_rng():
    # The historical uniform walk: static must keep drawing from the
    # simulator RNG stream exactly as before the routing layer existed.
    class _Rng:
        def __init__(self):
            self.calls = []

        def choice(self, seq):
            self.calls.append(list(seq))
            return seq[-1]

    router, _ = _router(ROUTING_STATIC)
    rng = _Rng()
    assert router.pick_walk(["r1", "r2"], rng) == "r2"
    assert rng.calls == [["r1", "r2"]]


def test_adaptive_pick_walk_is_deterministic_and_skips_the_rng():
    class _Rng:
        def choice(self, seq):  # pragma: no cover - must not be called
            raise AssertionError("adaptive walk must not draw randomness")

    router, _ = _router(ROUTING_LEAST_LOADED)
    router.on_response("r2", queue_depth=0)
    router.on_response("r1", queue_depth=4)
    assert router.pick_walk(["r1", "r2"], _Rng()) == "r2"


def test_adaptive_select_counts_reroutes():
    metrics = MetricsRegistry()
    router, _ = _router(ROUTING_LEAST_LOADED, metrics=metrics)
    # Tie: default kept, no reroute.
    assert router.select(["r1", "r2"], default="r1") == "r1"
    assert router.reroutes == 0
    router.on_response("r1", queue_depth=8)
    assert router.select(["r1", "r2"], default="r1") == "r2"
    assert router.reroutes == 1
    assert metrics.counter("routing.reroutes").value == 1


def test_busy_cooldown_is_at_least_the_retry_after_hint():
    router, node = _router(ROUTING_LEAST_LOADED)
    router.on_busy("r1", retry_after=4.0, queue_depth=3)
    # record_failure armed 0.5s; the server's hint extends it to 4.0.
    assert router.cooldowns.remaining("r1") == pytest.approx(4.0)
    node.clock.now = 3.9
    assert router.cooldowns.in_cooldown("r1")
    node.clock.now = 4.0
    assert not router.cooldowns.in_cooldown("r1")


def test_response_clears_cooldown():
    router, _ = _router(ROUTING_NEAREST_LATENCY)
    router.on_timeout("r1")
    assert router.cooldowns.in_cooldown("r1")
    router.on_response("r1", rtt=0.3)
    assert not router.cooldowns.in_cooldown("r1")
    assert router.health.latency("r1") == pytest.approx(0.3)


def test_usable_keeps_everything_except_under_cooldown_failover():
    for strategy in (ROUTING_NEAREST_LATENCY, ROUTING_LEAST_LOADED):
        router, _ = _router(strategy)
        router.on_timeout("r1")
        kept, skipped = router.usable(["r1", "r2"])
        assert sorted(kept) == ["r1", "r2"]
        assert skipped == 0


def test_usable_skips_cooled_targets_but_never_all():
    router, node = _router(ROUTING_COOLDOWN_FAILOVER)
    router.on_timeout("r1")
    kept, skipped = router.usable(["r1", "r2"])
    assert kept == ["r2"]
    assert skipped == 1
    # Every target cooling: keep the whole (ordered) set rather than
    # black-holing the fan-out.
    router.on_timeout("r2")
    router.on_timeout("r2")
    kept, skipped = router.usable(["r1", "r2"])
    assert sorted(kept) == ["r1", "r2"]
    assert skipped == 0
    # r1 cools for less time, so it leads the fallback order.
    assert kept == ["r1", "r2"]


def test_forget_drops_all_target_state():
    router, _ = _router(ROUTING_LEAST_LOADED)
    router.on_response("r1", rtt=0.7, queue_depth=4)
    router.on_timeout("r1")
    router.forget("r1")
    assert router.health.latency("r1") is None
    assert router.health.queue_depth("r1") is None
    assert not router.cooldowns.in_cooldown("r1")
