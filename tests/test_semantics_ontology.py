"""Unit tests for the ontology model."""

from __future__ import annotations

import pytest

from repro.errors import CycleError, OntologyError, UnknownClassError
from repro.semantics.ontology import Ontology, THING


@pytest.fixture
def ont():
    o = Ontology("test")
    o.add_class("A")
    o.add_class("B", parents=["A"])
    o.add_class("C", parents=["B"])
    o.add_class("D", parents=["A"])
    return o


def test_thing_always_present():
    assert THING in Ontology()


def test_add_class_defaults_to_thing_parent():
    o = Ontology()
    o.add_class("X")
    assert o.parents("X") == frozenset({THING})


def test_unknown_parent_rejected():
    o = Ontology()
    with pytest.raises(UnknownClassError):
        o.add_class("X", parents=["Missing"])


def test_empty_uri_rejected():
    with pytest.raises(OntologyError):
        Ontology().add_class("")


def test_self_parent_rejected():
    o = Ontology()
    o.add_class("X")
    with pytest.raises(CycleError):
        o.add_class("X", parents=["X"])


def test_cycle_rejected(ont):
    with pytest.raises(CycleError):
        ont.add_class("A", parents=["C"])  # C is a descendant of A


def test_readding_class_extends_parents(ont):
    ont.add_class("D", parents=["B"])
    assert ont.parents("D") == frozenset({"A", "B"})


def test_ancestors_transitive(ont):
    assert ont.ancestors("C") == frozenset({"B", "A", THING})


def test_descendants_transitive(ont):
    assert ont.descendants("A") == frozenset({"B", "C", "D"})


def test_leaves(ont):
    assert set(ont.leaves()) == {"C", "D"}


def test_depth(ont):
    assert ont.depth(THING) == 0
    assert ont.depth("A") == 1
    assert ont.depth("C") == 3


def test_depth_uses_shortest_chain():
    o = Ontology()
    o.add_class("A")
    o.add_class("B", parents=["A"])
    o.add_class("X", parents=["B"])
    o.add_class("X", parents=[THING])  # a direct shortcut to the root
    assert o.depth("X") == 1


def test_unknown_class_queries_raise(ont):
    with pytest.raises(UnknownClassError):
        ont.ancestors("Nope")
    with pytest.raises(UnknownClassError):
        ont.children("Nope")


def test_contains_and_len(ont):
    assert "A" in ont
    assert "Z" not in ont
    assert len(ont) == 5  # THING + 4


def test_add_subtree_bulk(ont):
    ont.add_subtree("A", {"E": {"F": {}}, "G": {}})
    assert "F" in ont
    assert ont.parents("F") == frozenset({"E"})
    assert "A" in ont.ancestors("F")


def test_version_increases_on_change(ont):
    v = ont.version
    ont.add_class("Z")
    assert ont.version > v


def test_properties(ont):
    ont.add_property("rel", "A", "B")
    props = ont.properties()
    assert len(props) == 1
    assert props[0].domain == "A"


def test_duplicate_property_rejected(ont):
    ont.add_property("rel", "A", "B")
    with pytest.raises(OntologyError):
        ont.add_property("rel", "A", "C")


def test_property_requires_known_classes(ont):
    with pytest.raises(UnknownClassError):
        ont.add_property("rel", "A", "Nope")


def test_iter_edges_sorted(ont):
    edges = list(ont.iter_edges())
    assert ("B", "A") in edges
    assert edges == sorted(edges)


def test_size_bytes_grows_with_content():
    small = Ontology()
    small.add_class("A")
    large = Ontology()
    large.add_subtree("A", {f"C{i}": {} for i in range(50)})
    assert large.size_bytes() > small.size_bytes()


def test_multiple_inheritance_ancestors():
    o = Ontology()
    o.add_class("A")
    o.add_class("B")
    o.add_class("AB", parents=["A", "B"])
    assert o.ancestors("AB") >= {"A", "B"}


# -- dense concept ids --------------------------------------------------------

def test_concept_ids_are_dense_and_stable():
    o = Ontology("ids")
    assert o.concept_id(THING) == 0
    o.add_class("A")
    o.add_class("B", parents=["A"])
    ids = {uri: o.concept_id(uri) for uri in o.classes()}
    assert sorted(ids.values()) == list(range(o.concept_count()))
    # Growth appends; existing ids never move.
    o.add_class("C", parents=["B"])
    for uri, cid in ids.items():
        assert o.concept_id(uri) == cid
    assert o.concept_id("C") == o.concept_count() - 1
    assert o.concept_uri(o.concept_id("B")) == "B"


def test_re_adding_class_keeps_its_id():
    o = Ontology("ids")
    o.add_class("A")
    o.add_class("B")
    cid = o.concept_id("B")
    o.add_class("B", parents=["A"])  # monotone extension, same class
    assert o.concept_id("B") == cid


def test_uris_from_bits_roundtrip():
    o = Ontology("bits")
    for name in ("A", "B", "C"):
        o.add_class(name)
    bits = (1 << o.concept_id("A")) | (1 << o.concept_id("C"))
    assert sorted(o.uris_from_bits(bits)) == ["A", "C"]
    assert o.uris_from_bits(0) == []


def test_unknown_concept_id_raises():
    o = Ontology("ids")
    with pytest.raises(UnknownClassError):
        o.concept_id("missing")
