"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.netsim.simulator import Simulator
from repro.registry.advertisements import Advertisement
from repro.registry.leases import LeaseManager
from repro.registry.matching import QueryEvaluator, QueryHit
from repro.semantics.generator import OntologyGenerator, ProfileGenerator
from repro.semantics.matchmaker import DegreeOfMatch, Matchmaker
from repro.semantics.ontology import THING
from repro.semantics.reasoner import Reasoner

# Small bounded generators keep each example fast.
seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=2, max_value=25)


def _ontology(seed, n_service=8, n_data=12):
    return OntologyGenerator(seed).random_ontology(
        n_service_classes=n_service, n_data_classes=n_data
    )


# -- ontology/reasoner invariants ------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_subsumption_is_partial_order(seed):
    """Reflexive, antisymmetric (DAG => no distinct mutual subsumers),
    transitive."""
    ont = _ontology(seed)
    reasoner = Reasoner(ont)
    classes = ont.classes()
    for c in classes:
        assert reasoner.subsumes(c, c)
    import random

    rng = random.Random(seed)
    for _ in range(30):
        a, b, c = (rng.choice(classes) for _ in range(3))
        if a != b and reasoner.subsumes(a, b):
            assert not reasoner.subsumes(b, a)
        if reasoner.subsumes(a, b) and reasoner.subsumes(b, c):
            assert reasoner.subsumes(a, c)


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_thing_subsumes_everything(seed):
    ont = _ontology(seed)
    reasoner = Reasoner(ont)
    assert all(reasoner.subsumes(THING, c) for c in ont.classes())


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_ancestors_equal_subsumers(seed):
    """ancestors(c) must be exactly the strict subsumers of c."""
    ont = _ontology(seed, n_service=5, n_data=8)
    reasoner = Reasoner(ont)
    for c in ont.classes():
        ancestors = ont.ancestors(c)
        subsumers = {
            other for other in ont.classes()
            if other != c and reasoner.subsumes(other, c)
        }
        assert ancestors == subsumers


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_distance_and_similarity_consistency(seed):
    import random

    ont = _ontology(seed)
    reasoner = Reasoner(ont)
    rng = random.Random(seed)
    classes = ont.classes()
    for _ in range(20):
        a, b = rng.choice(classes), rng.choice(classes)
        assert reasoner.distance(a, b) == reasoner.distance(b, a) >= 0
        sim = reasoner.similarity(a, b)
        assert 0.0 <= sim <= 1.0
        if a == b:
            assert reasoner.distance(a, b) == 0
            assert sim == 1.0


# -- matchmaker invariants ----------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_anchor_profile_always_matches_its_generalized_request(seed):
    """Generalizing a request must never lose the anchoring profile."""
    ont = _ontology(seed)
    gen = ProfileGenerator(ont, seed=seed)
    matchmaker = Matchmaker(Reasoner(ont))
    profile = gen.random_profile(0)
    for generalize in (0, 1, 2, 3):
        request = gen.request_for(profile, generalize=generalize)
        assert matchmaker.match(profile, request).matched


@settings(max_examples=20, deadline=None)
@given(seed=seeds, limit=st.integers(min_value=1, max_value=5))
def test_rank_limit_returns_prefix_of_full_ranking(seed, limit):
    """Response control must truncate, never reorder."""
    ont = _ontology(seed)
    gen = ProfileGenerator(ont, seed=seed)
    matchmaker = Matchmaker(Reasoner(ont))
    profiles = gen.profiles(10)
    request = gen.request_for(profiles[0], generalize=1)
    full = matchmaker.rank(profiles, request)
    capped = matchmaker.rank(profiles, request, limit=limit)
    assert capped == full[:limit]


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_match_results_are_deterministic(seed):
    ont = _ontology(seed)
    gen = ProfileGenerator(ont, seed=seed)
    matchmaker = Matchmaker(Reasoner(ont))
    profiles = gen.profiles(8)
    request = gen.request_for(profiles[0], generalize=1)
    first = [(r.profile.service_name, r.degree, r.score)
             for r in matchmaker.rank(profiles, request)]
    second = [(r.profile.service_name, r.degree, r.score)
              for r in matchmaker.rank(profiles, request)]
    assert first == second


# -- lease invariants -------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    durations=st.lists(st.floats(min_value=0.1, max_value=100.0),
                       min_size=1, max_size=10),
    advance=st.floats(min_value=0.0, max_value=200.0),
)
def test_lease_manager_never_serves_expired(durations, advance):
    clock = [0.0]
    manager = LeaseManager(lambda: clock[0], default_duration=10.0)
    leases = [manager.grant(f"ad-{i}", duration=d)
              for i, d in enumerate(durations)]
    clock[0] = advance
    expired_ids = set(manager.expired_ads())
    for lease, duration in zip(leases, durations):
        if advance >= duration:
            assert lease.ad_id in expired_ids
            assert manager.lease_for_ad(lease.ad_id) is None
        else:
            assert lease.ad_id not in expired_ids
            assert manager.lease_for_ad(lease.ad_id) is lease


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_lease_renewal_timeline(data):
    """Renewing on time always prevents expiry; stopping always expires."""
    duration = data.draw(st.floats(min_value=1.0, max_value=10.0))
    renewals = data.draw(st.integers(min_value=0, max_value=10))
    clock = [0.0]
    manager = LeaseManager(lambda: clock[0], default_duration=duration)
    lease = manager.grant("ad-1")
    for _ in range(renewals):
        clock[0] += duration * 0.5
        manager.renew(lease.lease_id)
        assert manager.expired_ads() == []
    clock[0] += duration * 1.01
    assert manager.expired_ads() == ["ad-1"]


# -- merge invariants --------------------------------------------------------------------


def _hits(names_and_ranks):
    return [
        QueryHit(
            Advertisement(ad_id=name, service_node=name, service_name=name,
                          endpoint="e", model_id="uri", description="d"),
            degree, score,
        )
        for name, degree, score in names_and_ranks
    ]


hit_lists = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["ad-a", "ad-b", "ad-c", "ad-d"]),
            st.integers(min_value=0, max_value=3),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        max_size=5,
    ),
    max_size=4,
)


@settings(max_examples=50, deadline=None)
@given(batches=hit_lists)
def test_merge_no_duplicates_and_sorted(batches):
    merged = QueryEvaluator.merge([_hits(batch) for batch in batches])
    ids = [h.advertisement.ad_id for h in merged]
    assert len(ids) == len(set(ids))
    keys = [h.sort_key() for h in merged]
    assert keys == sorted(keys)


@settings(max_examples=50, deadline=None)
@given(batches=hit_lists, cap=st.integers(min_value=1, max_value=3))
def test_merge_cap_is_prefix(batches, cap):
    full = QueryEvaluator.merge([_hits(b) for b in batches])
    capped = QueryEvaluator.merge([_hits(b) for b in batches], max_results=cap)
    assert [h.advertisement.ad_id for h in capped] == \
        [h.advertisement.ad_id for h in full[:cap]]


# -- simulator invariants ------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=30),
)
def test_simulator_fires_in_nondecreasing_time_order(delays):
    sim = Simulator(seed=0)
    fire_times = []
    for delay in delays:
        sim.schedule(delay, lambda: fire_times.append(sim.now))
    sim.run()
    assert fire_times == sorted(fire_times)
    assert len(fire_times) == len(delays)


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_byte_accounting_conservation(seed):
    """sent messages == delivered + dropped, for random traffic patterns."""
    import random

    from repro.netsim.network import Network
    from repro.netsim.node import Node

    rng = random.Random(seed)
    sim = Simulator(seed=seed)
    net = Network(sim, loss_rate=rng.choice([0.0, 0.3]))
    net.add_lan("lan-a")
    net.add_lan("lan-b")
    nodes = []
    for i in range(6):
        node = net.add_node(Node(f"n{i}"), rng.choice(["lan-a", "lan-b"]))
        nodes.append(node)
    # Random crashes and unicasts.
    for _ in range(40):
        src, dst = rng.choice(nodes), rng.choice(nodes)
        if src is dst or not src.alive:
            continue
        src.send(dst.node_id, "m", payload="x" * rng.randrange(100))
        if rng.random() < 0.1:
            rng.choice(nodes).crash()
    sim.run(until=10.0)
    stats = net.stats
    # Multicast would complicate the count (one send, many deliveries);
    # this pattern is unicast-only, so conservation must hold exactly.
    assert stats.messages_sent == stats.messages_delivered + stats.messages_dropped
