"""Self-healing federation tests: anti-entropy reconciliation, circuit
breakers, warm standby promotion, and the satellite regressions."""

from __future__ import annotations

import pytest

from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.forwarding import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.core.invariants import assert_invariants, check_convergence
from repro.core.system import DiscoverySystem
from repro.errors import ReproError
from repro.netsim.faults import FaultPlan
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name):
    return ServiceProfile.build(name, "ncw:RadarService",
                                outputs=["ncw:AirTrack"])


def _cluster(seed=7, *, lans=3, antientropy_interval=2.0, **overrides):
    """A replicate-ads cluster: one registry per LAN, ring seeds."""
    config = DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=antientropy_interval,
        lease_duration=30.0, purge_interval=2.0,
        **overrides,
    )
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    registries = []
    for i in range(lans):
        system.add_lan(f"lan-{i}")
    for i in range(lans):
        seeds = (f"registry-{(i + 1) % lans:02d}",)
        registries.append(
            system.add_registry(f"lan-{i}", node_id=f"registry-{i:02d}",
                                seeds=seeds)
        )
    return system, registries


# -- circuit breaker unit behaviour ------------------------------------------


def test_breaker_opens_after_threshold():
    clock = [0.0]
    breaker = CircuitBreaker(lambda: clock[0], failure_threshold=3,
                             reset_timeout=10.0)
    assert breaker.state == BREAKER_CLOSED
    assert not breaker.record_failure()
    assert not breaker.record_failure()
    assert breaker.record_failure()  # third strike opens it
    assert breaker.state == BREAKER_OPEN
    assert breaker.times_opened == 1
    assert not breaker.allows()


def test_breaker_half_open_probe_closes_on_success():
    clock = [0.0]
    breaker = CircuitBreaker(lambda: clock[0], failure_threshold=1,
                             reset_timeout=5.0)
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    clock[0] = 4.9
    assert not breaker.allows()
    clock[0] = 5.0
    assert breaker.allows()  # admitted as the probe
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allows()


def test_breaker_reopens_on_probe_failure():
    clock = [0.0]
    breaker = CircuitBreaker(lambda: clock[0], failure_threshold=1,
                             reset_timeout=5.0)
    breaker.record_failure()
    clock[0] = 5.0
    assert breaker.allows()
    assert breaker.record_failure()  # probe failed: straight back to open
    assert breaker.state == BREAKER_OPEN
    clock[0] = 9.0  # timer re-armed from the re-open, not the first open
    assert not breaker.allows()
    clock[0] = 10.0
    assert breaker.allows()


def test_breaker_success_resets_failure_count():
    clock = [0.0]
    breaker = CircuitBreaker(lambda: clock[0], failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert not breaker.record_success()  # already closed: no state change
    assert breaker.failures == 0
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED


# -- config validation --------------------------------------------------------


def test_config_rejects_bad_selfhealing_knobs():
    with pytest.raises(ReproError):
        DiscoveryConfig(antientropy_interval=0.0)
    with pytest.raises(ReproError):
        DiscoveryConfig(breaker_failure_threshold=0)
    with pytest.raises(ReproError):
        DiscoveryConfig(breaker_reset_timeout=-1.0)


def test_antientropy_gated_to_replication():
    assert not DiscoveryConfig().antientropy_enabled()
    assert DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS
    ).antientropy_enabled()
    assert not DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, antientropy_interval=None
    ).antientropy_enabled()


# -- anti-entropy reconciliation ----------------------------------------------


def test_partition_heal_converges_within_k_rounds():
    """Property: after a partition heals, every replicate-ads member holds
    the same live (ad_id, version) set — and the same per-ad epochs —
    within K anti-entropy rounds."""
    interval = 2.0
    system, registries = _cluster(antientropy_interval=interval)
    for i in range(3):
        system.add_service(f"lan-{i}", _radar(f"radar-{i}"))
    system.run(until=10.0)

    t0 = system.sim.now
    plan = (
        FaultPlan()
        .partition(t0 + 1.0, [["lan-0"], ["lan-1", "lan-2"]])
        .heal(t0 + 20.0)
    )
    plan.apply(system)
    system.run_for(5.0)
    # Diverge for real: one new service on each side of the split.
    system.add_service("lan-0", _radar("split-a"))
    system.add_service("lan-1", _radar("split-b"))
    system.run_for(16.0)  # past the heal

    k_rounds = 6
    rounds = 0
    while rounds < k_rounds and check_convergence(system):
        system.run_for(interval)
        rounds += 1
    assert check_convergence(system) == []
    views = [
        frozenset((ad.ad_id, ad.version) for ad in r.store.all())
        for r in registries
    ]
    assert len(set(views)) == 1
    epoch_views = [
        {ad.ad_id: r.antientropy.epochs.get(ad.ad_id, 0)
         for ad in r.store.all()}
        for r in registries
    ]
    assert all(view == epoch_views[0] for view in epoch_views)
    assert_invariants(system)


def test_removed_ad_is_never_resurrected():
    """A removal issued while a stale replica sits across a partition must
    stick: reconciliation spreads the tombstone, never the corpse."""
    system, (r0, r1, r2) = _cluster(seed=11)
    service = system.add_service("lan-0", _radar("radar"))
    system.run(until=6.0)
    ad_ids = {ad.ad_id for ad in r0.store.by_service(service.node_id)}
    assert ad_ids and all(ad_id in r1.store for ad_id in ad_ids)

    t0 = system.sim.now
    FaultPlan().partition(t0 + 0.5, [["lan-0"], ["lan-1", "lan-2"]]).apply(system)
    system.run_for(1.0)
    service.deregister()  # REMOVE reaches the home registry only
    system.run_for(0.1)
    service.crash()  # gone for good: no republishes after the removal
    system.run_for(0.9)
    assert all(ad_id not in r0.store for ad_id in ad_ids)
    assert all(ad_id in r1.store for ad_id in ad_ids)  # stale replica

    FaultPlan().heal(system.sim.now + 0.5).apply(system)
    system.run_for(10.0)  # several anti-entropy rounds
    for registry in (r0, r1, r2):
        assert all(ad_id not in registry.store for ad_id in ad_ids)
    system.run_for(10.0)  # and the removal stays removed
    for registry in (r0, r1, r2):
        assert all(ad_id not in registry.store for ad_id in ad_ids)
    assert r1.antientropy.removals_applied >= 1
    assert_invariants(system)


def test_join_sync_uses_digest_not_full_push():
    """A (re)joining member bootstraps via digest + delta pull, and the
    synced advertisements are not re-flooded."""
    system, (r0, r1, r2) = _cluster(seed=13)
    system.add_service("lan-1", _radar("radar"))
    system.run(until=8.0)
    assert any(ad.service_name == "radar" for ad in r0.store.all())

    r0.crash()
    system.run_for(2.0)
    r0.restart()
    system.run_for(8.0)  # rejoin via seeds -> digest sync
    assert any(ad.service_name == "radar" for ad in r0.store.all())
    assert r0.antientropy.ads_applied >= 1
    assert check_convergence(system) == []


def test_sync_ships_remaining_lease_not_full_lease():
    """Anti-entropy must not extend a replica's life beyond the home
    lease: a synced ad expires on the recipient when the origin lease
    would have."""
    system, (r0, r1, r2) = _cluster(seed=17, antientropy_interval=1.0)
    system.add_service("lan-0", _radar("radar"))
    system.run(until=6.0)
    ad = next(a for a in r1.store.all() if a.service_name == "radar")
    lease = r1.leases.lease_for_ad(ad.ad_id)
    assert lease is not None
    # The replica's lease must not outlive the home registry's by more
    # than one sync round's worth of skew.
    home = r0.leases.lease_for_ad(ad.ad_id)
    assert home is not None
    assert lease.expires_at <= home.expires_at + 1.5


# -- circuit breaker in the query path ----------------------------------------


def test_breaker_avoids_aggregation_timeout_for_crashed_neighbor():
    """Acceptance: with one neighbor crashed (and the ping detector held
    off by a long ping interval), queries pay the aggregation timeout only
    until the breaker opens, then complete at healthy latency."""
    from repro.experiments.e3_robustness import run_degraded_latency

    row = run_degraded_latency(n_queries=4, seed=3)
    assert row["degraded_mean"] >= row["aggregation_timeout"]
    assert row["after_open_mean"] < row["aggregation_timeout"]
    assert row["recoveries"].get("breaker-open", 0) >= 1
    assert row["recoveries"].get("breaker-skip", 0) >= 1
    assert BREAKER_OPEN in row["breaker_states"].values()


def test_late_response_counted_after_aggregation_timeout():
    """A response arriving after its aggregation completed is counted as
    late instead of being silently dropped."""
    config = DiscoveryConfig(
        aggregation_timeout=0.04, default_ttl=1,  # timeout < one WAN round trip
        ping_interval=120.0, signalling_interval=None,
    )
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    r0 = system.add_registry("lan-0", node_id="registry-00",
                             seeds=("registry-01",))
    system.add_registry("lan-1", node_id="registry-01")
    system.add_service("lan-1", _radar("radar"))
    client = system.add_client("lan-0")
    system.run(until=5.0)

    system.discover(client, REQUEST, timeout=5.0)
    system.run_for(1.0)  # let the straggler response arrive
    assert r0.late_responses >= 1
    assert system.network.stats.recoveries.get("late-response", 0) >= 1


def test_leave_clears_failure_detector_and_breakers():
    """Satellite regression: a graceful leave drops missed-pong counters
    and breakers with the links, so a later rejoin starts clean."""
    system, (r0, r1, r2) = _cluster(seed=19)
    system.run(until=8.0)
    peer = r1.node_id
    assert peer in r0.federation.neighbors
    # Simulate accumulated suspicion just before the leave.
    r0.federation._missed_pongs[peer] = 2
    r0.federation.record_neighbor_failure(peer)
    r0.federation.leave()
    assert r0.federation._missed_pongs == {}
    assert r0.federation.breakers == {}

    r0.federation.join(peer)
    system.run_for(6.0)  # a full ping round after the rejoin
    assert peer in r0.federation.neighbors
    assert r0.federation._missed_pongs.get(peer, 0) <= 1


# -- warm standby promotion ----------------------------------------------------


def test_warm_standby_shrinks_staleness_window():
    """Acceptance: warm promotion bootstraps the store via anti-entropy,
    shrinking the post-promotion staleness window vs a cold standby."""
    from repro.experiments.e15_standby import run_warm_standby

    result = run_warm_standby(seed=2)
    rows = {row["warm"]: row for row in result.rows}
    assert rows["yes"]["promoted"] and rows["no"]["promoted"]
    assert rows["yes"]["staleness"] < rows["no"]["staleness"]
    assert rows["yes"]["standby_store"] > 0
    assert rows["no"]["standby_store"] == 0
    assert rows["yes"]["warm_syncs"] >= 1


# -- convergence scenario (E3) -------------------------------------------------


def test_convergence_scenario_bounded_rounds():
    """Acceptance: the canonical partition/heal scenario reconverges
    within the bounded number of anti-entropy rounds."""
    from repro.experiments.e3_robustness import run_convergence_scenario

    row = run_convergence_scenario(max_rounds=6, seed=1)
    assert row["diverged_after_heal"]
    assert row["rounds_to_converge"] <= row["max_rounds"]
    assert row["antientropy"]["ads_applied"] >= 1


# -- bounded tombstone growth (churn spam) -------------------------------------


class _TombstoneClock:
    """Just enough registry for AntiEntropy prune unit tests: a settable
    clock and an empty store."""

    class _Sim:
        now = 0.0

    class _Store:
        @staticmethod
        def all():
            return ()

    def __init__(self):
        self.sim = self._Sim()
        self.network = object()
        self.store = self._Store()


def _pruner(cap, *, lease_duration=4.0, purge_interval=1.0):
    from repro.core.antientropy import AntiEntropy

    config = DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=1.0, lease_duration=lease_duration,
        purge_interval=purge_interval, antientropy_tombstone_cap=cap,
    )
    registry = _TombstoneClock()
    return AntiEntropy(registry, config), registry.sim


def test_tombstone_cap_never_evicts_within_prune_horizon():
    """Safety first: a burst of fresh tombstones may exceed the cap, but
    none younger than ``lease_duration + 2 * purge_interval`` is evicted
    — so nothing can be resurrected inside the prune horizon."""
    ae, sim = _pruner(cap=5)  # floor 6s, age horizon 8s
    for i in range(20):
        ae.note_removed(f"ad-{i:03d}", version=1)
    ae.digest()  # digest prunes; all 20 are younger than the floor
    assert len(ae.tombstones) == 20
    assert ae.tombstones_pruned == 0
    assert all(ae.blocked(f"ad-{i:03d}", 1) for i in range(20))


def test_tombstone_cap_evicts_oldest_past_the_safety_floor():
    ae, sim = _pruner(cap=5)
    for i in range(15):
        sim.now = 0.05 * i  # staggered removals, all within 0.7s
        ae.note_removed(f"ad-{i:03d}", version=1)
    sim.now = 7.0  # past the 6s floor, inside the 8s age horizon
    ae.digest()
    assert len(ae.tombstones) == 5
    assert ae.tombstones_pruned == 10
    # Oldest-first: the five *newest* tombstones survive.
    assert sorted(ae.tombstones) == [f"ad-{i:03d}" for i in range(10, 15)]


def test_tombstone_age_horizon_clears_everything():
    ae, sim = _pruner(cap=None)
    for i in range(30):
        ae.note_removed(f"ad-{i:03d}", version=1)
    sim.now = 9.0  # past 2 * lease_duration = 8s
    ae.digest()
    assert ae.tombstones == {}
    assert ae.tombstones_pruned == 30


def test_tombstone_growth_bounded_under_remove_churn():
    """Churn spam: waves of publish + explicit deregister must not grow
    the tombstone map without bound, and nothing pruned may resurrect."""
    config = DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=1.0, lease_duration=3.0, purge_interval=1.0,
        antientropy_tombstone_cap=4,
    )
    system = DiscoverySystem(seed=5, ontology=battlefield_ontology(),
                             config=config)
    for i in range(2):
        system.add_lan(f"lan-{i}")
    registries = [
        system.add_registry(f"lan-{i}", node_id=f"registry-{i:02d}",
                            seeds=(f"registry-{(i + 1) % 2:02d}",))
        for i in range(2)
    ]
    removed: set[str] = set()
    for wave in range(4):
        services = [
            system.add_service(f"lan-{wave % 2}",
                               _radar(f"burst-{wave}-{j}"))
            for j in range(4)
        ]
        system.run_for(2.0)
        for service in services:
            removed.update(
                ad.ad_id
                for r in registries
                for ad in r.store.by_service(service.node_id)
            )
            service.deregister()
            service.crash()
        system.run_for(1.0)
    assert len(removed) >= 40  # far beyond the cap of 4
    # Quiesce past the safety floor (3 + 2*1 = 5s) plus a digest round.
    system.run_for(8.0)
    for registry in registries:
        assert len(registry.antientropy.tombstones) <= 4
        assert registry.antientropy.tombstones_pruned > 0
        assert all(ad_id not in registry.store for ad_id in removed)
    assert check_convergence(system) == []
    assert_invariants(system)
