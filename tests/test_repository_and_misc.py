"""Tests for the artifact repository, lossy-network behaviour, and other
previously thin spots."""

from __future__ import annotations

import pytest

from repro.core import protocol
from repro.core.config import DiscoveryConfig
from repro.core.repository import ArtifactRepository
from repro.core.system import DiscoverySystem
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


# -- ArtifactRepository -----------------------------------------------------

def test_repository_store_fetch_counters():
    repo = ArtifactRepository()
    repo.store("ont", "data" * 100)
    assert "ont" in repo
    assert len(repo) == 1
    assert repo.fetch("ont") == "data" * 100
    assert repo.fetch("missing") is None
    assert repo.requests_served == 1
    assert repo.requests_missed == 1


def test_repository_replace_and_names():
    repo = ArtifactRepository()
    repo.store("b", 1)
    repo.store("a", 2)
    repo.store("b", 3)
    assert repo.names() == ["a", "b"]
    assert repo.fetch("b") == 3


def test_repository_replicate_to():
    src = ArtifactRepository()
    src.store("x", "xx")
    src.store("y", "yy")
    dst = ArtifactRepository()
    dst.store("x", "already-here")
    copied = src.replicate_to(dst)
    assert copied == 1
    assert dst.fetch("x") == "already-here"  # never overwrites
    assert dst.fetch("y") == "yy"


def test_repository_total_bytes_and_clear():
    repo = ArtifactRepository()
    repo.store("big", "z" * 5000)
    assert repo.total_bytes() >= 5000
    repo.clear()
    assert len(repo) == 0
    assert repo.total_bytes() == 0


def test_repository_hosts_ontologies():
    repo = ArtifactRepository()
    ont = battlefield_ontology()
    repo.store(ont.name, ont)
    assert repo.total_bytes() == ont.size_bytes()


# -- subscription payload sizes -------------------------------------------------

def test_subscription_payload_sizes():
    sub = protocol.SubscribePayload(sub_id="sub-1", model_id="semantic",
                                    query="q" * 100, duration=30.0)
    assert sub.size_bytes() > 100
    ack = protocol.SubscribeAck(sub_id="sub-1", expires_at=99.0)
    assert ack.size_bytes() > 0
    unsub = protocol.UnsubscribePayload(sub_id="sub-1")
    assert unsub.size_bytes() > 0


# -- lossy wireless networks -------------------------------------------------------

def test_discovery_robust_to_moderate_loss():
    """The architecture's retries/renewals must survive a lossy LAN."""
    config = DiscoveryConfig(
        beacon_interval=1.0, lease_duration=5.0, purge_interval=1.0,
        query_timeout=1.5, fallback_timeout=0.5, aggregation_timeout=0.3,
    )
    system = DiscoverySystem(seed=77, ontology=battlefield_ontology(),
                             config=config, loss_rate=0.15)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    system.add_service("lan-0", ServiceProfile.build(
        "radar", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    client = system.add_client("lan-0")
    system.run(until=10.0)
    request = ServiceRequest.build("ncw:SensorService")
    found = 0
    for _ in range(10):
        call = system.discover(client, request, timeout=30.0)
        if "radar" in call.service_names():
            found += 1
        system.run_for(1.0)
    # Retries, beacons, and renewals absorb 15% loss almost completely.
    assert found >= 8
    assert system.network.stats.messages_dropped > 0


def test_lost_publish_recovered_by_ack_timeout():
    """Deterministic injection: the first publish burst is dropped; the
    service's publish-unacked detector must republish."""
    config = DiscoveryConfig(
        beacon_interval=1.0, lease_duration=4.0, purge_interval=0.5,
    )
    system = DiscoverySystem(seed=78, ontology=battlefield_ontology(),
                             config=config)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    service = system.add_service("lan-0", ServiceProfile.build(
        "radar", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    # Drop everything the service sends for the first 2 simulated seconds.
    original_unicast = system.network.unicast

    def lossy_unicast(envelope):
        if envelope.src == service.node_id and system.sim.now < 2.0:
            system.network.stats.record_send(
                envelope.msg_type, envelope.src, 0, wan=False, multicast=False
            )
            system.network.stats.record_drop()
            return
        original_unicast(envelope)

    system.network.unicast = lossy_unicast
    system.run(until=1.0)
    assert len(registry.store) == 0  # initial publishes eaten
    system.run_for(10.0)
    assert len(registry.store) == 3  # ack-timeout failover republished


# -- Watch dataclass ------------------------------------------------------------------

def test_watch_service_names_order():
    from repro.core.client_node import Watch
    from repro.registry.advertisements import Advertisement
    from repro.registry.matching import QueryHit

    watch = Watch(sub_id="s", request=ServiceRequest.build("c"),
                  model_id="uri", created_at=0.0)
    for name in ("b", "a"):
        watch.hits.append(QueryHit(
            Advertisement(ad_id=name, service_node=name, service_name=name,
                          endpoint="e", model_id="uri", description="d"),
            1, 0.5,
        ))
    assert watch.service_names() == ["b", "a"]  # arrival order, not sorted


# -- extension experiment shapes (small params) -----------------------------------------

def test_e13_shape_small():
    from repro.experiments.e13_notifications import run

    result = run(n_arrivals=3, spacing=8.0, poll_periods=(4.0,))
    push = result.single(mode="subscribe")
    poll = result.single(mode="poll@4s")
    assert push["detected"] == 3
    assert push["mean_detection_s"] < poll["mean_detection_s"]


def test_e14_shape_small():
    from repro.experiments.e14_mediation import run

    result = run()
    assert result.single(mode="plain")["satisfied"] == 0
    assert result.single(mode="mediated")["satisfied"] == 3


def test_e15_shape_small():
    from repro.experiments.e15_standby import run

    result = run(n_queries=15, outage_at=5.0, restart_at=60.0)
    yes = result.single(standby="yes")
    no = result.single(standby="no")
    assert yes["registry_mode_frac"] > no["registry_mode_frac"]
    assert yes["promotions"] == 1


def test_ablation_sweeps_small():
    from repro.experiments.ablations import (
        beacon_interval_sweep,
        compression_sweep,
        lease_duration_sweep,
        ttl_sweep,
    )

    lease = lease_duration_sweep(durations=(5.0, 40.0), n_services=4,
                                 window=60.0)
    rates = lease.column("renew_bytes_per_s")
    assert rates[0] > rates[1]

    beacon = beacon_interval_sweep(intervals=(1.0, 8.0))
    lat = beacon.column("reattach_latency")
    assert lat[0] < lat[1]

    ttl = ttl_sweep(lans=3, ttls=(0, 2), n_queries=4)
    assert ttl.column("recall")[0] <= ttl.column("recall")[1]

    zipped = compression_sweep(ratios=(1.0, 0.25), n_services=3)
    publish = zipped.column("publish_msg_bytes")
    assert publish[0] > publish[1]
