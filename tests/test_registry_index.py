"""Indexed vs. linear query-path equivalence.

The inverted concept index is an optimization with a hard contract: the
indexed path must return *exactly* the hits the linear scan returns, in
the same order, under every store/ontology mutation. These property-style
tests drive both paths over randomized ontologies and stores from
``semantics/generator.py`` and assert bit-identical results — including
after removals (lease expiry), version-bumping republishes, ontology
growth, and late ontology attachment.
"""

from __future__ import annotations

import random

import pytest

from repro.descriptions.base import ModelRegistry
from repro.descriptions.semantic import SemanticModel
from repro.registry.advertisements import Advertisement
from repro.registry.index import SemanticConceptIndex
from repro.registry.matching import QueryEvaluator
from repro.registry.store import AdvertisementStore
from repro.semantics.generator import OntologyGenerator, ProfileGenerator
from repro.semantics.ontology import THING, Ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


def _ad(index: int, profile: ServiceProfile, version: int = 1) -> Advertisement:
    return Advertisement(
        ad_id=f"ad-{index:06d}",
        service_node=f"svc-node-{index}",
        service_name=profile.service_name,
        endpoint=f"svc://{profile.service_name}",
        model_id="semantic",
        description=profile,
        version=version,
    )


class _Paths:
    """An indexed and a linear evaluator over identical store content."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self.indexed_store = AdvertisementStore()
        self.linear_store = AdvertisementStore()
        self.indexed_model = SemanticModel(ontology)
        self.linear_model = SemanticModel(ontology)
        self.indexed = QueryEvaluator(
            self.indexed_store, ModelRegistry([self.indexed_model])
        )
        self.linear = QueryEvaluator(
            self.linear_store, ModelRegistry([self.linear_model]), use_indexes=False
        )

    def put(self, ad: Advertisement) -> None:
        self.indexed_store.put(ad)
        self.linear_store.put(ad)

    def discard(self, ad_id: str) -> None:
        self.indexed_store.discard(ad_id)
        self.linear_store.discard(ad_id)

    def assert_equivalent(self, request: ServiceRequest, max_results=None) -> list:
        indexed_hits = self.indexed.evaluate("semantic", request, max_results=max_results)
        linear_hits = self.linear.evaluate("semantic", request, max_results=max_results)
        as_rows = lambda hits: [
            (h.advertisement.ad_id, h.advertisement.version, h.degree, h.score)
            for h in hits
        ]
        assert as_rows(indexed_hits) == as_rows(linear_hits)
        return indexed_hits


def _requests(gen: ProfileGenerator, profiles, rng: random.Random):
    """A mixed bag of request shapes exercising every index code path."""
    anchor = rng.choice(profiles)
    yield gen.request_for(anchor, generalize=0)
    yield gen.request_for(anchor, generalize=1, max_results=3)
    yield gen.request_for(rng.choice(profiles), generalize=2)
    yield gen.random_request(max_results=5)
    # category-only / outputs-only / THING / out-of-ontology / keyword-only
    yield ServiceRequest.build(rng.choice(gen.category_pool))
    yield ServiceRequest.build(outputs=[rng.choice(gen.data_pool)])
    yield ServiceRequest.build(THING)
    yield ServiceRequest.build(category=THING, outputs=[rng.choice(gen.data_pool)])
    yield ServiceRequest.build("gen:NotAConcept", outputs=["gen:AlsoMissing"])
    yield ServiceRequest.build(keywords=["service"])
    yield ServiceRequest.build(
        rng.choice(gen.category_pool),
        outputs=[rng.choice(gen.data_pool), rng.choice(gen.data_pool)],
        qos={"latency_ms": (None, 250.0)},
        max_results=2,
    )


@pytest.mark.parametrize("seed", range(5))
def test_indexed_equals_linear_on_random_stores(seed):
    ontology = OntologyGenerator(seed).random_ontology()
    gen = ProfileGenerator(ontology, seed=seed)
    rng = random.Random(seed)
    paths = _Paths(ontology)
    profiles = gen.profiles(60)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    for request in _requests(gen, profiles, rng):
        paths.assert_equivalent(request, max_results=request.max_results)


@pytest.mark.parametrize("seed", range(3))
def test_equivalence_survives_removal_and_republish(seed):
    ontology = OntologyGenerator(seed).random_ontology()
    gen = ProfileGenerator(ontology, seed=seed)
    rng = random.Random(100 + seed)
    paths = _Paths(ontology)
    profiles = gen.profiles(40)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    # Lease-expiry-style removals of a third of the store.
    for i in rng.sample(range(40), 13):
        paths.discard(f"ad-{i:06d}")
    # Republishes: newer versions with *different* descriptions.
    for i in rng.sample(range(40), 10):
        replacement = gen.random_profile(1000 + i)
        paths.put(_ad(i, replacement, version=2))
    for request in _requests(gen, profiles, rng):
        paths.assert_equivalent(request, max_results=request.max_results)


def test_equivalence_survives_ontology_version_bump():
    ontology = OntologyGenerator(7).random_ontology()
    gen = ProfileGenerator(ontology, seed=7)
    paths = _Paths(ontology)
    profiles = gen.profiles(30)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    request = gen.request_for(profiles[0], generalize=1)
    paths.assert_equivalent(request)
    index = paths.indexed_store.index_for("semantic")
    rebuilds_before = index.rebuilds
    # Grow the ontology mid-run: a new class under an advertised concept.
    parent = profiles[0].outputs[0]
    ontology.add_class("gen:DataFresh", parents=[parent])
    paths.put(_ad(999, ServiceProfile.build(
        "svc-fresh", profiles[0].category, outputs=["gen:DataFresh"])))
    fresh_request = ServiceRequest.build(outputs=[parent])
    hits = paths.assert_equivalent(fresh_request)
    assert any(h.advertisement.ad_id == "ad-000999" for h in hits)
    assert index.rebuilds == rebuilds_before + 1


def test_index_attaches_over_existing_content():
    """Bulk-loading an index over a pre-populated store must be exact."""
    ontology = OntologyGenerator(3).random_ontology()
    gen = ProfileGenerator(ontology, seed=3)
    store = AdvertisementStore()
    profiles = gen.profiles(25)
    for i, profile in enumerate(profiles):
        store.put(_ad(i, profile))
    model = SemanticModel(ontology)
    store.attach_index(SemanticConceptIndex(model))
    request = gen.request_for(profiles[3], generalize=1)
    candidates = {ad.ad_id for ad in store.candidates("semantic", request)}
    matches = {
        f"ad-{i:06d}"
        for i, p in enumerate(profiles)
        if model.matchmaker.match(p, request).matched
    }
    assert matches <= candidates  # superset contract
    assert len(candidates) <= len(profiles)


def test_indexed_path_prunes_evaluations():
    """The point of the index: fewer descriptions scored per query."""
    ontology = OntologyGenerator(11).random_ontology(
        n_service_classes=60, n_data_classes=90
    )
    gen = ProfileGenerator(ontology, seed=11)
    paths = _Paths(ontology)
    profiles = gen.profiles(300)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    request = gen.request_for(profiles[0], generalize=1, max_results=5)
    paths.assert_equivalent(request, max_results=5)
    assert paths.linear.descriptions_evaluated == len(profiles)
    assert paths.indexed.descriptions_evaluated < len(profiles)


def test_keyword_only_query_falls_back_to_linear():
    ontology = OntologyGenerator(5).random_ontology()
    gen = ProfileGenerator(ontology, seed=5)
    paths = _Paths(ontology)
    for i, profile in enumerate(gen.profiles(20)):
        paths.put(_ad(i, profile))
    index = paths.indexed_store.index_for("semantic")
    fallbacks_before = index.fallbacks
    paths.assert_equivalent(ServiceRequest.build(keywords=["anything"]))
    assert index.fallbacks == fallbacks_before + 1
    assert paths.indexed.descriptions_evaluated == paths.linear.descriptions_evaluated


def test_late_ontology_attachment_is_picked_up():
    """A registry that fetches its ontology later (E12) starts pruning."""
    ontology = OntologyGenerator(9).random_ontology()
    gen = ProfileGenerator(ontology, seed=9)
    model = SemanticModel()  # no ontology yet
    store = AdvertisementStore()
    evaluator = QueryEvaluator(store, ModelRegistry([model]))
    profiles = gen.profiles(15)
    for i, profile in enumerate(profiles):
        store.put(_ad(i, profile))
    request = gen.request_for(profiles[0], generalize=1)
    assert evaluator.evaluate("semantic", request) == []  # cannot evaluate
    model.attach_ontology(ontology)
    hits = evaluator.evaluate("semantic", request)
    linear = QueryEvaluator(
        AdvertisementStore(), ModelRegistry([SemanticModel(ontology)]),
        use_indexes=False,
    )
    for i, profile in enumerate(profiles):
        linear.store.put(_ad(i, profile))
    linear_hits = linear.evaluate("semantic", request)
    assert [(h.advertisement.ad_id, h.degree, h.score) for h in hits] \
        == [(h.advertisement.ad_id, h.degree, h.score) for h in linear_hits]


def test_store_clear_resets_index():
    ontology = OntologyGenerator(2).random_ontology()
    gen = ProfileGenerator(ontology, seed=2)
    paths = _Paths(ontology)
    for i, profile in enumerate(gen.profiles(10)):
        paths.put(_ad(i, profile))
    paths.indexed_store.clear()
    paths.linear_store.clear()
    request = gen.random_request()
    assert paths.assert_equivalent(request) == []
    assert paths.indexed_store.candidates("semantic", request) == []


def test_mid_run_growth_refreshes_every_cache_layer():
    """Ontology growth must flush bitset closures, the degree memo, and
    the index's concept/posting caches — no stale-version answers."""
    from repro.semantics.matchmaker import DegreeOfMatch

    ontology = OntologyGenerator(13).random_ontology()
    gen = ProfileGenerator(ontology, seed=13)
    paths = _Paths(ontology)
    profiles = gen.profiles(30)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    reasoner = paths.indexed_model.reasoner
    matchmaker = paths.indexed_model.matchmaker
    index = paths.indexed_store.index_for("semantic")
    parent = profiles[0].outputs[0]
    request = ServiceRequest.build(outputs=[parent])
    # Warm every layer: closure bitsets, degree memo, posting bitsets.
    paths.assert_equivalent(request)
    assert matchmaker._degree_cache and index._mask_cache
    parent_bits_before = reasoner.closure_bits(parent)

    ontology.add_class("gen:DataLate", parents=[parent])
    # (1) closure bitsets: the new class gets an id, its closure embeds
    # the parent's closure, and subsumption sees the new edge.
    late_bits = reasoner.closure_bits("gen:DataLate")
    assert late_bits & parent_bits_before == reasoner.closure_bits(parent)
    assert late_bits != reasoner.closure_bits(parent)
    assert reasoner.subsumes(parent, "gen:DataLate")
    # (2) concept-degree memo: dropped wholesale on the version bump, and
    # degrees over the new vocabulary come out right.
    assert matchmaker.concept_degree(parent, "gen:DataLate") \
        == DegreeOfMatch.SUBSUMES
    assert matchmaker.concept_degree("gen:DataLate", parent) \
        == DegreeOfMatch.EXACT  # direct parent rule
    # (3) candidate sets: an ad in the new vocabulary is found through the
    # requested parent concept (the index rebuilt its posting tables).
    rebuilds_before = index.rebuilds
    paths.put(_ad(777, ServiceProfile.build(
        "svc-late", profiles[0].category, outputs=["gen:DataLate"])))
    candidates = index.candidate_ids(request)
    assert candidates is not None and "ad-000777" in candidates
    assert index.rebuilds == rebuilds_before + 1
    hits = paths.assert_equivalent(request)
    assert any(h.advertisement.ad_id == "ad-000777" for h in hits)


def test_ontology_swap_rebuilds_index_even_at_same_version():
    """``attach_ontology`` replaces the reasoner object; the index must
    key its sync on ontology identity, not just the version counter."""
    ontology_a = OntologyGenerator(21).random_ontology()
    # Same generator seed -> structurally identical ontology, *different*
    # object with an independent (equal) version counter.
    ontology_b = OntologyGenerator(21).random_ontology()
    assert ontology_a.version == ontology_b.version
    gen = ProfileGenerator(ontology_a, seed=21)
    paths = _Paths(ontology_a)
    profiles = gen.profiles(25)
    for i, profile in enumerate(profiles):
        paths.put(_ad(i, profile))
    request = gen.request_for(profiles[0], generalize=1, max_results=5)
    paths.assert_equivalent(request, max_results=5)
    index = paths.indexed_store.index_for("semantic")
    rebuilds_before = index.rebuilds
    paths.indexed_model.attach_ontology(ontology_b)
    paths.linear_model.attach_ontology(ontology_b)
    paths.assert_equivalent(request, max_results=5)
    assert index.rebuilds == rebuilds_before + 1
    # The swapped-in ontology can still grow and be picked up.
    ontology_b.add_class("gen:DataSwap", parents=[profiles[0].outputs[0]])
    paths.put(_ad(888, ServiceProfile.build(
        "svc-swap", profiles[0].category, outputs=["gen:DataSwap"])))
    hits = paths.assert_equivalent(
        ServiceRequest.build(outputs=[profiles[0].outputs[0]]))
    assert any(h.advertisement.ad_id == "ad-000888" for h in hits)
