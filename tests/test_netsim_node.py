"""Unit tests for node lifecycle, dispatch, and timers."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.netsim.network import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator


class Typed(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.pings = 0
        self.others = 0

    def handle_ping(self, envelope):
        self.pings += 1

    def handle_message(self, envelope):
        self.others += 1


@pytest.fixture
def net():
    network = Network(Simulator(seed=1))
    network.add_lan("lan")
    return network


def test_dispatch_by_msg_type(net):
    a = net.add_node(Typed("a"), "lan")
    b = net.add_node(Typed("b"), "lan")
    a.send("b", "ping")
    a.send("b", "unknown-type")
    net.sim.run(until=1.0)
    assert b.pings == 1
    assert b.others == 1


def test_hyphenated_msg_type_dispatch(net):
    class Hy(Node):
        got = 0

        def handle_registry_probe(self, envelope):
            Hy.got += 1

    a = net.add_node(Typed("a"), "lan")
    h = net.add_node(Hy("h"), "lan")
    a.send("h", "registry-probe")
    net.sim.run(until=1.0)
    assert Hy.got == 1


def test_unknown_messages_counted(net):
    a = net.add_node(Node("a"), "lan")
    b = net.add_node(Node("b"), "lan")
    a.send("b", "mystery")
    net.sim.run(until=1.0)
    assert b.unknown_messages == 1


def test_send_requires_attachment():
    with pytest.raises(NetworkError):
        Node("floating").send("x", "ping")


def test_crashed_node_ignores_delivery(net):
    a = net.add_node(Typed("a"), "lan")
    b = net.add_node(Typed("b"), "lan")
    b.crash()
    a.send("b", "ping")
    net.sim.run(until=1.0)
    assert b.pings == 0


def test_crash_cancels_timers(net):
    node = net.add_node(Typed("n"), "lan")
    fired = []
    node.after(1.0, lambda: fired.append("once"))
    node.every(1.0, lambda: fired.append("tick"))
    node.crash()
    net.sim.run(until=5.0)
    assert fired == []


def test_timer_guard_on_crash_between_schedule_and_fire(net):
    node = net.add_node(Typed("n"), "lan")
    fired = []
    node.after(2.0, lambda: fired.append(1))
    net.sim.schedule(1.0, node.crash)
    net.sim.run(until=5.0)
    assert fired == []


def test_restart_invokes_hook(net):
    events = []

    class Hooked(Node):
        def on_crash(self):
            events.append("crash")

        def on_restart(self):
            events.append("restart")

    node = net.add_node(Hooked("n"), "lan")
    node.crash()
    node.restart()
    assert events == ["crash", "restart"]


def test_crash_is_idempotent(net):
    node = net.add_node(Typed("n"), "lan")
    node.crash()
    node.crash()
    assert node.crash_count == 1


def test_restart_noop_when_alive(net):
    node = net.add_node(Typed("n"), "lan")
    node.restart()  # no crash happened
    assert node.alive


def test_timer_fires_when_alive(net):
    node = net.add_node(Typed("n"), "lan")
    fired = []
    node.after(1.0, lambda: fired.append(net.sim.now))
    net.sim.run(until=2.0)
    assert fired == [1.0]


def test_timer_cancel(net):
    node = net.add_node(Typed("n"), "lan")
    fired = []
    timer = node.after(1.0, lambda: fired.append(1))
    assert timer.pending
    timer.cancel()
    net.sim.run(until=2.0)
    assert fired == []
    assert not timer.pending


def test_periodic_stops_on_crash_but_new_after_restart(net):
    node = net.add_node(Typed("n"), "lan")
    ticks = []
    node.every(1.0, lambda: ticks.append(net.sim.now))
    net.sim.schedule(2.5, node.crash)
    net.sim.run(until=4.0)
    assert ticks == [1.0, 2.0]
    node.restart()
    node.every(1.0, lambda: ticks.append(net.sim.now))
    net.sim.run(until=6.0)
    assert ticks == [1.0, 2.0, 5.0, 6.0]


def test_forward_preserves_payload_and_bumps_hops(net):
    a = net.add_node(Typed("a"), "lan")
    b = net.add_node(Typed("b"), "lan")
    c = net.add_node(Typed("c"), "lan")
    received = []
    c.handle_message = lambda env: received.append(env)
    env = a.send("b", "data", payload="body")
    net.sim.run(until=0.5)
    b.forward(env, "c")
    net.sim.run(until=1.0)
    assert received[0].payload == "body"
    assert received[0].hops == 1
    assert received[0].src == "b"
