"""Unit tests for query evaluation and response merging."""

from __future__ import annotations

import pytest

from repro.descriptions.base import ModelRegistry
from repro.descriptions.semantic import SemanticModel
from repro.descriptions.uri import UriModel
from repro.registry.advertisements import Advertisement
from repro.registry.matching import QueryEvaluator, QueryHit
from repro.registry.rim import RegistryInfoModel
from repro.registry.store import AdvertisementStore
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


def _uri_ad(ad_id, type_uri):
    model = UriModel()
    profile = ServiceProfile.build(ad_id, type_uri)
    return Advertisement(
        ad_id=ad_id, service_node=f"node-{ad_id}", service_name=ad_id,
        endpoint=f"svc://{ad_id}", model_id="uri",
        description=model.describe(profile, f"svc://{ad_id}"),
    )


@pytest.fixture
def evaluator():
    store = AdvertisementStore()
    models = ModelRegistry([UriModel(), SemanticModel(battlefield_ontology())])
    store.put(_uri_ad("ad-1", "ncw:RadarService"))
    store.put(_uri_ad("ad-2", "ncw:RadarService"))
    store.put(_uri_ad("ad-3", "ncw:MessagingService"))
    return QueryEvaluator(store, models)


def _uri_query(type_uri):
    return UriModel().query_from(ServiceRequest.build(type_uri))


def test_evaluate_matches_model_scoped(evaluator):
    hits = evaluator.evaluate("uri", _uri_query("ncw:RadarService"))
    assert [h.advertisement.ad_id for h in hits] == ["ad-1", "ad-2"]
    assert evaluator.queries_evaluated == 1


def test_evaluate_response_control(evaluator):
    hits = evaluator.evaluate("uri", _uri_query("ncw:RadarService"), max_results=1)
    assert len(hits) == 1
    assert hits[0].advertisement.ad_id == "ad-1"  # deterministic tie-break


def test_evaluate_unknown_model_discarded(evaluator):
    assert evaluator.evaluate("wsdl2", object()) == []
    assert evaluator.queries_discarded == 1


def test_evaluate_unevaluable_model_discarded():
    store = AdvertisementStore()
    models = ModelRegistry([SemanticModel()])  # no ontology attached
    evaluator = QueryEvaluator(store, models)
    query = ServiceRequest.build("ncw:RadarService")
    assert evaluator.evaluate("semantic", query) == []
    assert evaluator.queries_discarded == 1


def test_semantic_hits_ranked_by_degree():
    ontology = battlefield_ontology()
    store = AdvertisementStore()
    model = SemanticModel(ontology)
    for name, category in (
        ("exact", "ncw:RadarService"),
        ("narrow", "ncw:AirSurveillanceRadarService"),
    ):
        profile = ServiceProfile.build(name, category, outputs=["ncw:AirTrack"])
        store.put(Advertisement(
            ad_id=f"ad-{name}", service_node=name, service_name=name,
            endpoint=f"svc://{name}", model_id="semantic", description=profile,
        ))
    evaluator = QueryEvaluator(store, ModelRegistry([model]))
    query = ServiceRequest.build("ncw:RadarService")
    hits = evaluator.evaluate("semantic", query)
    assert hits[0].advertisement.service_name == "exact"
    assert hits[0].degree > hits[-1].degree


def test_merge_dedupes_by_uuid(evaluator):
    batch = evaluator.evaluate("uri", _uri_query("ncw:RadarService"))
    merged = QueryEvaluator.merge([batch, batch, batch])
    assert len(merged) == 2


def test_merge_keeps_best_ranked_copy():
    ad = _uri_ad("ad-x", "t")
    weak = QueryHit(advertisement=ad, degree=1, score=0.2)
    strong = QueryHit(advertisement=ad, degree=3, score=0.9)
    merged = QueryEvaluator.merge([[weak], [strong]])
    assert merged == [strong]


def test_merge_respects_max_results():
    batches = [[QueryHit(_uri_ad(f"ad-{i}", "t"), 1, 0.5)] for i in range(5)]
    assert len(QueryEvaluator.merge(batches, max_results=2)) == 2


def test_merge_empty():
    assert QueryEvaluator.merge([]) == []
    assert QueryEvaluator.merge([[], []]) == []


def test_hit_sizes_track_advertisement():
    hit = QueryHit(_uri_ad("ad-1", "t"), 1, 0.5)
    assert hit.size_bytes() > 0


# -- RIM ---------------------------------------------------------------------

def test_rim_describe_and_stats():
    rim = RegistryInfoModel(registry_id="r1", lan_name="lan-a",
                            supported_models=["uri", "semantic"])
    desc = rim.describe(advertisement_count=3, neighbor_count=2,
                        artifact_names=("battlefield",))
    assert desc.registry_id == "r1"
    assert desc.supported_models == ("semantic", "uri")
    assert desc.artifact_names == ("battlefield",)
    assert desc.size_bytes() > 0
    rim.publishes += 1
    assert rim.stats()["publishes"] == 1


def test_rim_taxonomy_registration():
    rim = RegistryInfoModel(registry_id="r1", lan_name="lan-a")
    ontology = battlefield_ontology()
    rim.register_taxonomy(ontology)
    assert rim.taxonomy("battlefield") is ontology
    assert rim.taxonomy("missing") is None
