"""Unit tests for configuration validation and protocol payloads."""

from __future__ import annotations

import pytest

from repro.core import protocol
from repro.core.config import DiscoveryConfig
from repro.errors import ReproError
from repro.registry.advertisements import Advertisement
from repro.registry.matching import QueryHit
from repro.registry.rim import RegistryDescription


def test_defaults_are_valid():
    config = DiscoveryConfig()
    assert config.renew_interval == pytest.approx(24.0)


def test_unknown_strategy_rejected():
    with pytest.raises(ReproError):
        DiscoveryConfig(strategy="telepathy")


def test_unknown_cooperation_rejected():
    with pytest.raises(ReproError):
        DiscoveryConfig(cooperation="osmosis")


def test_renew_fraction_bounds():
    with pytest.raises(ReproError):
        DiscoveryConfig(renew_fraction=0.0)
    with pytest.raises(ReproError):
        DiscoveryConfig(renew_fraction=1.0)


def test_lease_duration_positive():
    with pytest.raises(ReproError):
        DiscoveryConfig(lease_duration=0.0)


def test_negative_ttl_rejected():
    with pytest.raises(ReproError):
        DiscoveryConfig(default_ttl=-1)


def test_config_is_frozen():
    config = DiscoveryConfig()
    with pytest.raises(AttributeError):
        config.default_ttl = 7  # type: ignore[misc]


# -- payloads -------------------------------------------------------------------

def _ad():
    return Advertisement(
        ad_id="ad-1", service_node="n", service_name="s", endpoint="e",
        model_id="uri", description="desc",
    )


def test_query_payload_with_ttl_copy():
    payload = protocol.QueryPayload(query_id="q1", model_id="uri",
                                    query="x", max_results=3, ttl=4)
    lowered = payload.with_ttl(2)
    assert lowered.ttl == 2
    assert payload.ttl == 4
    assert lowered.query_id == "q1"
    assert lowered.max_results == 3


def test_response_payload_size_scales_with_hits():
    empty = protocol.ResponsePayload(query_id="q", hits=())
    one = protocol.ResponsePayload(
        query_id="q", hits=(QueryHit(_ad(), 1, 0.5),)
    )
    assert one.size_bytes() > empty.size_bytes()


def test_publish_payload_size_includes_description():
    small = protocol.PublishPayload(
        service_node="n", service_name="s", endpoint="e",
        model_id="uri", description="tiny",
    )
    large = protocol.PublishPayload(
        service_node="n", service_name="s", endpoint="e",
        model_id="semantic", description="x" * 4000,
    )
    assert large.size_bytes() > small.size_bytes()


def test_ad_forward_dedup_key():
    payload = protocol.AdForwardPayload(advertisement=_ad(),
                                        lease_duration=10.0, epoch=3)
    assert payload.dedup_key() == ("ad-1", 1, 3)


def test_walk_payload_size_counts_visited():
    short = protocol.WalkPayload(query_id="q", model_id="uri", query="x",
                                 coordinator="r0", remaining=3)
    long = protocol.WalkPayload(query_id="q", model_id="uri", query="x",
                                coordinator="r0", remaining=3,
                                visited=("r1", "r2", "r3"))
    assert long.size_bytes() > short.size_bytes()


def test_registry_list_payload_size():
    desc = RegistryDescription(
        registry_id="r0", lan_name="lan", supported_models=("uri",),
        advertisement_count=0, neighbor_count=0,
    )
    payload = protocol.RegistryListPayload(registries=(desc, desc))
    assert payload.size_bytes() > desc.size_bytes()


def test_artifact_payloads():
    request = protocol.ArtifactRequestPayload(artifact_name="battlefield")
    assert request.size_bytes() > 0
    found = protocol.ArtifactReplyPayload(artifact_name="x", artifact="y" * 100)
    missing = protocol.ArtifactReplyPayload(artifact_name="x", found=False)
    assert found.size_bytes() > missing.size_bytes()
