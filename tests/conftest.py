"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.semantics.generator import battlefield_ontology, emergency_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest
from repro.semantics.reasoner import Reasoner


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> Network:
    net = Network(sim)
    net.add_lan("lan-a")
    net.add_lan("lan-b")
    return net


@pytest.fixture
def ontology():
    return battlefield_ontology()


@pytest.fixture
def emergency():
    return emergency_ontology()


@pytest.fixture
def reasoner(ontology) -> Reasoner:
    return Reasoner(ontology)


@pytest.fixture
def radar_profile() -> ServiceProfile:
    return ServiceProfile.build(
        "radar-1",
        "ncw:AirSurveillanceRadarService",
        inputs=["ncw:GridPosition"],
        outputs=["ncw:AirTrack"],
        qos={"latency_ms": 50.0, "coverage_km": 40.0},
        provider="battalion-hq",
        text="Air surveillance radar feed",
    )


@pytest.fixture
def sensor_request() -> ServiceRequest:
    return ServiceRequest.build(
        "ncw:SensorService",
        outputs=["ncw:Track"],
        inputs=["ncw:GridPosition"],
    )


@pytest.fixture
def small_system(ontology) -> DiscoverySystem:
    """One LAN, one registry, ready to run."""
    system = DiscoverySystem(seed=7, ontology=ontology)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    return system


@pytest.fixture
def wan_system(ontology) -> DiscoverySystem:
    """Three LANs, one registry each, ring-federated."""
    system = DiscoverySystem(seed=7, ontology=ontology)
    for i in range(3):
        system.add_lan(f"lan-{i}")
        system.add_registry(f"lan-{i}")
    system.federate_ring()
    return system


@pytest.fixture
def fast_config() -> DiscoveryConfig:
    """Short timers for quick integration tests."""
    return DiscoveryConfig(
        beacon_interval=1.0,
        lease_duration=5.0,
        purge_interval=1.0,
        ping_interval=1.0,
        signalling_interval=2.0,
        query_timeout=2.0,
        aggregation_timeout=0.3,
    )
