"""Fault injection, retry policy, and invariant checking.

Covers the robustness subsystem end to end: :class:`RetryPolicy` math,
timed loss windows and latency spikes, declarative :class:`FaultPlan`
schedules (including the deterministic churn builder), the post-scenario
invariant sweep, and lossy-network discovery behaviour (retry exhaustion
falling back to LAN multicast, lease expiry and republish across fault
windows, seeded determinism of whole fault scenarios).
"""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.invariants import assert_invariants, check_invariants
from repro.core.retry import RetryPolicy
from repro.core.system import DiscoverySystem
from repro.errors import InvariantError, NetworkError, SimulationError
from repro.netsim.faults import FaultPlan
from repro.netsim.messages import Envelope
from repro.netsim.network import LatencySpike, LossWindow, Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.semantics.generator import emergency_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest


# -- RetryPolicy ----------------------------------------------------------


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(base=1.0, factor=2.0, cap=5.0, jitter=0.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 4.0
        assert policy.delay(4) == 5.0  # capped
        assert policy.delay(10) == 5.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base=1.0, factor=2.0, cap=16.0, jitter=0.25)
        first = policy.delay(2, seed=7, key="q-1")
        again = policy.delay(2, seed=7, key="q-1")
        assert first == again
        assert 2.0 * 0.75 <= first <= 2.0 * 1.25
        # Different keys/seeds/attempts de-synchronize.
        assert policy.delay(2, seed=7, key="q-2") != first
        assert policy.delay(2, seed=8, key="q-1") != first

    def test_attempts_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.attempts_exhausted(2)
        assert policy.attempts_exhausted(3)
        assert policy.attempts_exhausted(4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"base": -1.0},
            {"factor": 0.5},
            {"cap": 0.0},
            {"max_attempts": 0},
            {"jitter": -0.1},
            {"jitter": 1.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(Exception):
            RetryPolicy(**kwargs)


# -- loss windows and latency spikes --------------------------------------


class Recorder(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Envelope] = []

    def handle_message(self, envelope):
        self.received.append(envelope)


@pytest.fixture
def net():
    sim = Simulator(seed=3)
    network = Network(sim)
    network.add_lan("lan-a")
    network.add_lan("lan-b")
    return network


def _add(net, node_id, lan):
    return net.add_node(Recorder(node_id), lan)


class TestLossWindows:
    def test_blackout_window_drops_then_expires(self, net):
        a = _add(net, "a", "lan-a")
        b = _add(net, "b", "lan-a")
        net.add_loss_window(LossWindow(start=0.0, end=5.0, rate=1.0))
        a.send("b", "m1")
        net.sim.run(until=1.0)
        assert b.received == []
        assert net.stats.drops_by_reason["fault-loss"] == 1
        net.sim.run(until=6.0)
        a.send("b", "m2")
        net.sim.run(until=7.0)
        assert len(b.received) == 1
        assert b.received[0].msg_type == "m2"

    def test_lan_scoped_window_spares_other_traffic(self, net):
        a = _add(net, "a", "lan-a")
        b = _add(net, "b", "lan-b")
        c = _add(net, "c", "lan-b")
        net.add_loss_window(
            LossWindow(start=0.0, end=10.0, rate=1.0, lan="lan-a")
        )
        a.send("b", "doomed")
        c.send("b", "fine")
        net.sim.run(until=1.0)
        assert len(b.received) == 1
        assert b.received[0].src == "c"

    def test_link_scoped_window(self, net):
        a = _add(net, "a", "lan-a")
        b = _add(net, "b", "lan-b")
        net.add_loss_window(
            LossWindow(start=0.0, end=10.0, rate=1.0,
                       link=frozenset(("lan-a", "lan-b")))
        )
        a.send("b", "doomed")
        net.sim.run(until=1.0)
        assert b.received == []
        assert net.stats.drops_by_reason["fault-loss"] == 1

    def test_multicast_respects_fault_loss(self, net):
        a = _add(net, "a", "lan-a")
        _add(net, "b", "lan-a")
        _add(net, "c", "lan-a")
        net.add_loss_window(LossWindow(start=0.0, end=5.0, rate=1.0))
        a.multicast("hello")
        net.sim.run(until=1.0)
        assert net.stats.drops_by_reason["fault-loss"] == 2

    def test_unknown_lan_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_loss_window(
                LossWindow(start=0.0, end=1.0, rate=0.5, lan="lan-zzz")
            )

    def test_invalid_window_rejected(self):
        with pytest.raises(NetworkError):
            LossWindow(start=0.0, end=1.0, rate=1.5)
        with pytest.raises(NetworkError):
            LossWindow(start=2.0, end=1.0, rate=0.5)

    def test_windows_compose_as_independent_probabilities(self, net):
        net.add_loss_window(LossWindow(start=0.0, end=10.0, rate=0.5))
        net.add_loss_window(LossWindow(start=0.0, end=10.0, rate=0.5))
        assert net._fault_loss("lan-a", "lan-a") == pytest.approx(0.75)
        # Outside the window: no loss.
        net.sim.schedule_at(20.0, lambda: None)
        net.sim.run(until=20.0)
        assert net._fault_loss("lan-a", "lan-a") == 0.0


class TestLatencySpikes:
    def test_spike_delays_delivery(self, net):
        a = _add(net, "a", "lan-a")
        b = _add(net, "b", "lan-a")
        net.add_latency_spike(LatencySpike(start=0.0, end=5.0, extra=1.0))
        arrival = {}
        b.handle_message = lambda env: arrival.setdefault("t", net.sim.now)
        a.send("b", "slow")
        net.sim.run(until=3.0)
        assert arrival["t"] == pytest.approx(net.lan_latency + 1.0)

    def test_spike_expires(self, net):
        a = _add(net, "a", "lan-a")
        b = _add(net, "b", "lan-a")
        net.add_latency_spike(LatencySpike(start=0.0, end=5.0, extra=1.0))
        arrival = {}
        b.handle_message = lambda env: arrival.setdefault("t", net.sim.now)
        net.sim.schedule_at(6.0, lambda: a.send("b", "fast"))
        net.sim.run(until=10.0)
        assert arrival["t"] == pytest.approx(6.0 + net.lan_latency)


# -- FaultPlan ------------------------------------------------------------


class TestFaultPlan:
    def test_actions_are_time_sorted(self):
        plan = FaultPlan().restart(30.0, "n1").crash(10.0, "n1").heal(20.0)
        times = [a.time for a in plan.actions()]
        assert times == [10.0, 20.0, 30.0]
        assert len(plan) == 3

    def test_describe_mentions_every_action(self):
        plan = (
            FaultPlan()
            .crash(1.0, "n1")
            .partition(2.0, [["lan-a"], ["lan-b"]])
            .loss_burst(3.0, 4.0, 0.5, lan="lan-a")
            .latency_spike(3.0, 4.0, 0.2)
            .heal(9.0)
        )
        text = "\n".join(plan.describe())
        assert "crash n1" in text
        assert "partition" in text
        assert "loss 0.5" in text
        assert "latency" in text

    def test_apply_executes_crash_and_restart(self, net):
        node = _add(net, "n1", "lan-a")
        plan = FaultPlan().crash(5.0, "n1").restart(10.0, "n1")
        applied = plan.apply(net)
        net.sim.run(until=7.0)
        assert not node.alive
        net.sim.run(until=12.0)
        assert node.alive
        assert applied.counts() == {"crash": 1, "restart": 1}
        assert net.stats.faults["crash"] == 1
        assert net.stats.faults["restart"] == 1

    def test_crash_on_dead_node_is_a_noop(self, net):
        node = _add(net, "n1", "lan-a")
        node.crash()
        applied = FaultPlan().crash(1.0, "n1").apply(net)
        net.sim.run(until=2.0)
        assert applied.counts() == {}

    def test_partition_and_heal_via_plan(self, net):
        _add(net, "a", "lan-a")
        _add(net, "b", "lan-b")
        plan = FaultPlan().partition(1.0, [["lan-a"], ["lan-b"]]).heal(5.0)
        plan.apply(net)
        net.sim.run(until=2.0)
        assert not net.reachable("a", "b")
        net.sim.run(until=6.0)
        assert net.reachable("a", "b")

    def test_apply_in_the_past_raises(self, net):
        net.sim.schedule_at(10.0, lambda: None)
        net.sim.run(until=10.0)
        with pytest.raises(SimulationError):
            FaultPlan().crash(5.0, "n1").apply(net)

    def test_churn_is_deterministic(self):
        kwargs = dict(rate=0.2, window=60.0, seed=5, mean_downtime=10.0)
        first = FaultPlan.churn(["n1", "n2", "n3"], **kwargs)
        again = FaultPlan.churn(["n1", "n2", "n3"], **kwargs)
        assert first.describe() == again.describe()
        other = FaultPlan.churn(["n1", "n2", "n3"], rate=0.2, window=60.0,
                                seed=6, mean_downtime=10.0)
        assert first.describe() != other.describe()

    def test_churn_respects_window_and_pool(self):
        plan = FaultPlan.churn(["n1", "n2"], rate=1.0, window=30.0, seed=1)
        assert plan.actions(), "expected some churn at rate 1.0 over 30 s"
        for action in plan.actions():
            assert 0.0 <= action.time < 30.0
            assert action.node_id in ("n1", "n2")
        # Permanent crashes: each node crashes at most once.
        crashed = [a.node_id for a in plan.actions() if a.kind == "crash"]
        assert len(crashed) == len(set(crashed))

    def test_churn_validates_inputs(self):
        with pytest.raises(SimulationError):
            FaultPlan.churn([], rate=1.0, window=10.0)
        with pytest.raises(SimulationError):
            FaultPlan.churn(["n1"], rate=0.0, window=10.0)


class TestDiskFaultActions:
    def test_describe_mentions_node_and_file(self):
        plan = (FaultPlan()
                .disk_torn_write(1.0, "n1")
                .disk_corrupt(2.0, "n1", file="snap"))
        text = "\n".join(plan.describe())
        assert "disk-torn-write n1:wal" in text
        assert "disk-corruption n1:snap" in text

    def test_no_disk_attached_is_a_noop(self, net):
        _add(net, "n1", "lan-a")
        applied = (FaultPlan()
                   .disk_torn_write(1.0, "n1")
                   .disk_corrupt(1.5, "n1")
                   .apply(net))
        net.sim.run(until=2.0)
        assert applied.counts() == {}

    def test_tear_and_corrupt_hit_the_attached_disk(self, net):
        _add(net, "n1", "lan-a")
        disk = net.disk("n1")
        disk.append("wal", b"A" * 16)
        applied = (FaultPlan()
                   .disk_torn_write(1.0, "n1")
                   .disk_corrupt(2.0, "n1")
                   .apply(net))
        net.sim.run(until=3.0)
        assert applied.counts() == {"disk-torn-write": 1,
                                    "disk-corruption": 1}
        assert disk.torn_writes == 1 and disk.corruptions == 1
        assert net.stats.faults["disk-torn-write"] == 1
        assert net.stats.faults["disk-corruption"] == 1


class TestFaultComposition:
    """Overlapping and interleaved fault actions from one plan."""

    def test_overlapping_loss_burst_and_latency_spike_same_scope(self, net):
        a = _add(net, "a", "lan-a")
        a2 = _add(net, "a2", "lan-a")
        b = _add(net, "b", "lan-b")
        plan = (FaultPlan()
                .loss_burst(1.0, 2.0, 1.0, link=("lan-a", "lan-b"))
                .latency_spike(1.0, 2.0, 0.5, lan="lan-a"))
        plan.apply(net)
        arrival = {}
        a2.handle_message = lambda env: arrival.setdefault("t", net.sim.now)
        net.sim.schedule_at(1.2, lambda: a.send("b", "doomed"))
        net.sim.schedule_at(1.2, lambda: a.send("a2", "delayed"))
        net.sim.run(until=4.0)
        # Cross-link traffic died in the loss window; intra-LAN traffic
        # rode the concurrent latency spike — both faults applied.
        assert b.received == []
        assert net.stats.drops_by_reason["fault-loss"] == 1
        assert arrival["t"] == pytest.approx(1.2 + net.lan_latency + 0.5)

    def test_crash_while_partitioned_heal_before_restart(self, net):
        a = _add(net, "a", "lan-a")
        b = _add(net, "b", "lan-b")
        plan = (FaultPlan()
                .partition(1.0, [["lan-a"], ["lan-b"]])
                .crash(2.0, "a")
                .heal(3.0)
                .restart(4.0, "a"))
        applied = plan.apply(net)
        net.sim.run(until=2.5)
        assert not a.alive and not net.reachable("a", "b")
        # Healed but still crashed: the partition is gone, the node isn't.
        net.sim.run(until=3.5)
        assert net.reachable("a", "b") and not a.alive
        b.send("a", "into-the-void")
        net.sim.run(until=3.9)
        assert net.stats.drops_by_reason["dead-dst"] == 1
        net.sim.run(until=4.5)
        assert a.alive
        b.send("a", "welcome-back")
        net.sim.run(until=5.0)
        assert [env.msg_type for env in a.received] == ["welcome-back"]
        assert applied.counts() == {"partition": 1, "crash": 1,
                                    "heal": 1, "restart": 1}

    def test_restart_on_still_partitioned_lan(self, net):
        a = _add(net, "a", "lan-a")
        a2 = _add(net, "a2", "lan-a")
        b = _add(net, "b", "lan-b")
        plan = (FaultPlan()
                .partition(1.0, [["lan-a"], ["lan-b"]])
                .crash(2.0, "a")
                .restart(3.0, "a")
                .heal(6.0))
        plan.apply(net)
        net.sim.run(until=4.0)
        # Back up behind the partition: LAN traffic flows, WAN doesn't.
        assert a.alive and not net.reachable("a", "b")
        a.send("a2", "local")
        a.send("b", "blocked")
        net.sim.run(until=5.0)
        assert [env.msg_type for env in a2.received] == ["local"]
        assert b.received == []
        assert net.stats.drops_by_reason["unreachable"] >= 1
        net.sim.run(until=7.0)
        a.send("b", "after-heal")
        net.sim.run(until=8.0)
        assert [env.msg_type for env in b.received] == ["after-heal"]


# -- invariant checker ----------------------------------------------------


def _quiesced_system(ontology):
    system = DiscoverySystem(seed=11, ontology=ontology)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    system.add_service("lan-0", ServiceProfile.build(
        "aid-1", "ems:AmbulanceDispatchService", outputs=["ems:UnitLocation"]))
    client = system.add_client("lan-0")
    system.run(until=3.0)
    call = system.discover(client, ServiceRequest.build(
        "ems:MedicalService", outputs=["ems:Location"]))
    system.run_for(2.0)
    return system, client, call


class TestInvariants:
    def test_clean_system_passes(self, emergency):
        system, client, call = _quiesced_system(emergency)
        assert call.completed
        assert client._by_wire_id == {}
        assert check_invariants(system) == []
        assert_invariants(system)  # does not raise

    def test_stale_wire_id_detected(self, emergency):
        system, client, call = _quiesced_system(emergency)
        client._by_wire_id["stale/1"] = call
        violations = check_invariants(system)
        assert any("stale wire-id" in v for v in violations)
        with pytest.raises(InvariantError):
            assert_invariants(system)

    def test_double_completion_detected(self, emergency):
        system, client, call = _quiesced_system(emergency)
        client._complete(call, [], via="again")
        assert any("completed 2 times" in v for v in check_invariants(system))

    def test_lease_outliving_ad_detected(self, emergency):
        system, _, _ = _quiesced_system(emergency)
        registry = system.registries[0]
        for ad in registry.store.all():
            registry.store.remove(ad.ad_id)
        violations = check_invariants(system)
        assert any("outlives" in v for v in violations)


# -- lossy-network discovery end to end -----------------------------------


def _fast_system(ontology, *, seed=21, loss_rate=0.0):
    config = DiscoveryConfig(
        beacon_interval=1.0,
        lease_duration=5.0,
        purge_interval=1.0,
        ping_interval=1.0,
        signalling_interval=2.0,
        query_timeout=1.0,
        aggregation_timeout=0.2,
    )
    return DiscoverySystem(seed=seed, config=config, ontology=ontology,
                           loss_rate=loss_rate)


def test_retry_exhaustion_falls_back_to_lan_multicast(emergency):
    """All registries dead: the client retries across the failover cache,
    exhausts the budget, and still finds the service via LAN multicast."""
    system = _fast_system(emergency)
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    system.add_registry("lan-0")
    system.add_service("lan-0", ServiceProfile.build(
        "aid-1", "ems:AmbulanceDispatchService", outputs=["ems:UnitLocation"]))
    client = system.add_client("lan-0")
    system.run(until=5.0)
    for registry in system.registries:
        registry.crash()
    call = system.discover(client, ServiceRequest.build(
        "ems:MedicalService", outputs=["ems:Location"]), timeout=30.0)
    assert call.completed
    assert call.via == "fallback"
    assert call.service_names() == ["aid-1"]
    assert client.query_retries >= 1
    assert system.network.stats.retries["query"] == client.query_retries
    assert client._by_wire_id == {}
    assert_invariants(system)


def test_discovery_survives_ambient_loss_deterministically(emergency):
    """Same seed + loss rate → bit-identical runs, drained bookkeeping."""

    def one_run():
        system = _fast_system(emergency, seed=33, loss_rate=0.25)
        system.add_lan("lan-0")
        system.add_registry("lan-0")
        system.add_service("lan-0", ServiceProfile.build(
            "aid-1", "ems:AmbulanceDispatchService", outputs=["ems:UnitLocation"]))
        client = system.add_client("lan-0")
        system.run(until=5.0)
        calls = [
            system.discover(client, ServiceRequest.build(
                "ems:MedicalService", outputs=["ems:Location"]), timeout=20.0)
            for _ in range(3)
        ]
        system.run_for(10.0)
        assert client._by_wire_id == {}
        assert_invariants(system)
        return (
            system.traffic(),
            [(c.completed, c.via, tuple(c.service_names())) for c in calls],
        )

    assert one_run() == one_run()


def test_lease_expires_and_ad_purged_during_partition(emergency):
    """A WAN partition separates a service from its registry: the lease
    lapses and the advertisement is purged (soft state); after heal and
    re-attachment the service republishes under a fresh lease."""
    system = _fast_system(emergency)
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    registry = system.add_registry("lan-0")
    service = system.add_service("lan-1", ServiceProfile.build(
        "aid-1", "ems:AmbulanceDispatchService", outputs=["ems:UnitLocation"]))
    system.sim.schedule(0.5, lambda: service.tracker.seed(registry.node_id))
    system.run(until=3.0)
    assert len(registry.store) == 3  # one ad per description model
    old_leases = {r.lease_id for r in service._published.values()}

    plan = (FaultPlan()
            .partition(3.0, [["lan-0"], ["lan-1"]])
            .heal(20.0))
    applied = plan.apply(system)
    system.run(until=19.0)
    # Inside the window, past the lease duration: everything purged.
    assert len(registry.store) == 0
    assert len(registry.leases) == 0
    assert registry.leases.expired_total >= 3

    system.run(until=21.0)
    system.sim.schedule(0.0, lambda: service.tracker.seed(registry.node_id))
    system.run_for(10.0)
    assert len(registry.store) == 3
    new_leases = {r.lease_id for r in service._published.values()}
    assert new_leases.isdisjoint(old_leases)
    assert applied.counts() == {"partition": 1, "heal": 1}
    assert_invariants(system)


def test_lease_republish_after_lan_blackout(emergency):
    """A total LAN loss burst outlasting the lease: the registry purges the
    ad mid-window, and the service re-probes and republishes on its own
    once the burst ends — no manual intervention."""
    system = _fast_system(emergency)
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    service = system.add_service("lan-0", ServiceProfile.build(
        "aid-1", "ems:AmbulanceDispatchService", outputs=["ems:UnitLocation"]))
    system.run(until=3.0)
    assert len(registry.store) == 3

    FaultPlan().loss_burst(3.0, 12.0, 1.0, lan="lan-0").apply(system)
    system.run(until=14.0)
    assert len(registry.store) == 0  # lease lapsed inside the blackout

    system.run(until=40.0)
    assert len(registry.store) == 3  # autonomous re-probe + republish
    assert all(r.acked for r in service._published.values())
    assert system.network.stats.drops_by_reason["fault-loss"] > 0
    assert_invariants(system)


def test_publish_retry_recovers_from_single_lost_publish(emergency):
    """One lost PUBLISH no longer waits for the failover heuristic: the
    retransmission timer resends it within a couple of seconds, keeping
    the healthy attachment."""
    system = DiscoverySystem(seed=9, ontology=emergency)  # default timers
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    service = system.add_service("lan-0", ServiceProfile.build(
        "aid-1", "ems:AmbulanceDispatchService", outputs=["ems:UnitLocation"]))
    system.run(until=3.0)
    assert all(r.acked for r in service._published.values())
    # A short blackout swallows the republish (and nothing else).
    FaultPlan().loss_burst(3.0, 0.8, 1.0, lan="lan-0").apply(system)
    system.sim.schedule_at(3.1, lambda: service.update_profile(service.profile))
    system.run(until=10.0)
    assert service.publish_retries >= 1
    assert system.network.stats.retries["publish"] >= 1
    assert all(r.acked for r in service._published.values())
    assert service.tracker.failovers == 0
    assert len(registry.store) == 3


def test_renew_retry_survives_transient_loss(emergency):
    """A loss burst swallowing one renewal round no longer looks like a
    dead registry: the retransmission resolves it before the next tick's
    failover heuristic fires."""
    system = DiscoverySystem(seed=9, ontology=emergency)  # renew tick at 24 s
    system.add_lan("lan-0")
    registry = system.add_registry("lan-0")
    service = system.add_service("lan-0", ServiceProfile.build(
        "aid-1", "ems:AmbulanceDispatchService", outputs=["ems:UnitLocation"]))
    system.run(until=3.0)
    FaultPlan().loss_burst(23.9, 0.5, 1.0, lan="lan-0").apply(system)
    system.run(until=40.0)
    assert service.renew_retries >= 1
    assert system.network.stats.retries["renew"] >= 1
    assert service.tracker.failovers == 0
    assert service.tracker.current == registry.node_id
    assert all(not r.renew_outstanding for r in service._published.values())
    assert_invariants(system)


# -- canonical fault scenarios (E3 / E11) ---------------------------------


@pytest.mark.slow
def test_e3_fault_scenario_is_deterministic():
    from repro.experiments.e3_robustness import run_fault_scenario

    first = run_fault_scenario(seed=2)
    again = run_fault_scenario(seed=2)
    assert first == again
    assert first["faults"]["crash"] == 1
    assert first["faults"]["partition"] == 1
    assert first["faults"]["loss-window"] == 1
    assert first["completed"] == first["queries"]


@pytest.mark.slow
def test_e11_fault_scenario_is_deterministic():
    from repro.experiments.e11_survivability import run_fault_scenario

    first = run_fault_scenario(seed=2)
    again = run_fault_scenario(seed=2)
    assert first == again
    # The partition bites while it is open and heals afterwards.
    assert first["connected_during"] <= first["connected_before"]
    assert first["connected_after"] >= first["connected_during"]
