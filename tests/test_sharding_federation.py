"""Membership churn in the sharded federation.

Graceful leaves shrink the ring and drain in-flight aggregation state;
crashes do *not* shrink the ring (replica selection and hinted handoff
mask them, so flapping cannot thrash keys); and a promoted warm standby
inherits the dead registry's ring identity so promotion moves no keys
between the surviving members.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import COOPERATION_REPLICATE_ADS, DiscoveryConfig
from repro.core.forwarding import PendingAggregation
from repro.core.invariants import check_convergence, check_shard_placement
from repro.core.sharding import ShardingConfig
from repro.core.system import DiscoverySystem
from repro.semantics.generator import battlefield_ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

REQUEST = ServiceRequest.build("ncw:SensorService", outputs=["ncw:Track"])


def _radar(name):
    return ServiceProfile.build(name, "ncw:RadarService",
                                outputs=["ncw:AirTrack"])


def _cluster(seed=11, *, n=4, r=3, w=2, services=4, standby_on=None,
             inherit=True):
    config = DiscoveryConfig(
        cooperation=COOPERATION_REPLICATE_ADS, default_ttl=0,
        antientropy_interval=2.0, lease_duration=30.0, purge_interval=2.0,
        query_timeout=2.0, aggregation_timeout=0.3,
        sharding=ShardingConfig(
            enabled=True, replication_factor=r, write_quorum=w,
            quorum_timeout=0.5, standby_inherit_ring=inherit,
        ),
    )
    system = DiscoverySystem(seed=seed, ontology=battlefield_ontology(),
                             config=config)
    registries = []
    for i in range(n):
        system.add_lan(f"lan-{i}")
    for i in range(n):
        registries.append(
            system.add_registry(f"lan-{i}", node_id=f"registry-{i:02d}",
                                seeds=(f"registry-{(i + 1) % n:02d}",))
        )
    standby = None
    if standby_on is not None:
        standby = system.add_standby_registry(
            standby_on, node_id="standby-00", lan_target=1,
            seeds=tuple(r.node_id for r in registries),
        )
    for i in range(services):
        system.add_service(f"lan-{i % n}", _radar(f"radar-{i}"))
    return system, registries, standby


# -- graceful departure -----------------------------------------------------


def test_graceful_leave_shrinks_ring_and_rebalances():
    system, registries, _ = _cluster()
    client = system.add_client("lan-0")
    system.run(until=10.0)
    leaver = registries[3]
    leaver_ads = {ad.ad_id for ad in leaver.store.all()}
    assert leaver_ads
    leaver.federation.leave()
    leaver.crash()  # departed for real, not merely quiet
    system.run_for(15.0)
    survivors = registries[:3]
    for registry in survivors:
        assert leaver.node_id not in registry.shard.ring
    assert any(r.shard.rebalances > 0 for r in survivors)
    # With three survivors and R=3 every ad is fully replicated again,
    # including the copies only the leaver used to own.
    assert check_shard_placement(system) == []
    assert check_convergence(system) == []
    live = {ad.ad_id for r in survivors for ad in r.store.all()}
    assert live  # the leaver's departure did not lose the shard
    call = system.discover(client, REQUEST, timeout=20.0)
    assert call.completed and len(call.hits) == 4


def test_leave_drains_pending_aggregations():
    """on_peer_departed / on_departing release waiting fan-outs at once
    instead of riding out the aggregation timeout (satellite 1)."""
    system, registries, _ = _cluster()
    system.run(until=5.0)
    coordinator = registries[0]

    completed = []
    pending = PendingAggregation(
        coordinator, query_id="q-drain", local_hits=[],
        targets=("registry-03",), timeout=30.0, max_results=None,
        on_complete=lambda hits, responders: completed.append(responders),
    )
    coordinator._pending["q-drain"] = pending
    coordinator.on_peer_departed("registry-03", left_ring=True)
    assert pending.done and completed == [1]
    # The departed member's ring slot and router state went with it.
    assert "registry-03" not in coordinator.shard.ring
    assert not coordinator.router.cooldowns.in_cooldown("registry-03")

    flushed = []
    ours = PendingAggregation(
        coordinator, query_id="q-flush", local_hits=[],
        targets=("registry-01", "registry-02"), timeout=30.0,
        max_results=None,
        on_complete=lambda hits, responders: flushed.append(responders),
    )
    coordinator._pending["q-flush"] = ours
    coordinator.on_departing()  # we are the one leaving
    assert ours.done and flushed == [1]


def test_crash_does_not_shrink_ring():
    system, registries, _ = _cluster()
    system.run(until=10.0)
    victim = registries[2]
    victim.crash()
    system.run_for(15.0)
    for registry in registries:
        if registry is not victim:
            assert victim.node_id in registry.shard.ring
    victim.restart()
    system.run_for(15.0)
    assert check_shard_placement(system) == []
    assert check_convergence(system) == []


# -- standby promotion ring inheritance -------------------------------------


def test_standby_promotion_inherits_ring_identity():
    system, registries, standby = _cluster(standby_on="lan-0")
    client = system.add_client("lan-1")
    system.run(until=10.0)
    registries[0].crash()
    system.run_for(20.0)
    assert standby.active and standby.promotions == 1
    # The heir occupies the dead registry's exact virtual-node positions.
    assert standby.ring_identity == registries[0].node_id
    for peer in registries[1:]:
        assert peer.shard.ring.ring_id_of(standby.node_id) \
            == registries[0].node_id
    system.run_for(10.0)
    assert check_shard_placement(system) == []
    call = system.discover(client, REQUEST, timeout=20.0)
    assert call.completed and len(call.hits) == 4


def test_standby_inheritance_limits_rebalance_movement():
    """Regression for the promotion-churn satellite: with ring
    inheritance on, promotion moves no keys between surviving members,
    so strictly fewer advertisements cross the wire than when the
    standby hashes to fresh positions."""
    moved = {}
    for inherit in (True, False):
        system, registries, standby = _cluster(standby_on="lan-0",
                                               inherit=inherit)
        system.run(until=10.0)
        baseline = sum(r.shard.ads_moved_in for r in system.registries)
        registries[0].crash()
        system.run_for(30.0)
        assert standby.active
        moved[inherit] = (
            sum(r.shard.ads_moved_in for r in system.registries) - baseline
        )
    assert moved[True] <= moved[False]


def test_demoted_standby_resets_ring_identity():
    system, registries, standby = _cluster(standby_on="lan-0")
    system.run(until=10.0)
    registries[0].crash()
    system.run_for(20.0)
    assert standby.active
    assert standby.ring_identity == registries[0].node_id
    registries[0].restart()
    system.run_for(30.0)  # failback: the standby yields to the original
    assert not standby.active
    assert standby.ring_identity == standby.node_id


# -- placement checker ------------------------------------------------------


def test_placement_checker_detects_stray_copy():
    system, registries, _ = _cluster()
    system.run(until=20.0)  # ring converged, stray sweeps drained
    assert check_shard_placement(system) == []
    # Plant a copy on a registry outside the ad's replica set.
    donor = next(r for r in registries if len(r.store))
    ad = next(iter(donor.store.all()))
    r = system.config.sharding.replication_factor
    outsider = next(
        reg for reg in registries
        if not reg.shard.ring.owns(reg.node_id, ad.ad_id, r)
    )
    outsider.store.put(replace(ad))
    violations = check_shard_placement(system)
    assert any(ad.ad_id in v and outsider.node_id in v for v in violations)


def test_placement_checker_vacuous_when_sharding_off():
    system = DiscoverySystem(seed=3, ontology=battlefield_ontology(),
                             config=DiscoveryConfig())
    system.add_lan("lan-0")
    system.add_registry("lan-0")
    system.add_service("lan-0", _radar("radar"))
    system.run(until=5.0)
    assert check_shard_placement(system) == []
