"""Unit tests for service profiles and requests."""

from __future__ import annotations

import pytest

from repro.errors import DescriptionError
from repro.semantics.profiles import QoSConstraint, ServiceProfile, ServiceRequest


def test_profile_build_normalizes(radar_profile):
    assert radar_profile.inputs == ("ncw:GridPosition",)
    assert radar_profile.qos_value("latency_ms") == 50.0
    assert radar_profile.qos_value("missing") is None


def test_profile_requires_name_and_category():
    with pytest.raises(DescriptionError):
        ServiceProfile.build("", "cat")
    with pytest.raises(DescriptionError):
        ServiceProfile.build("name", "")


def test_profile_concepts(radar_profile):
    assert radar_profile.concepts() == frozenset({
        "ncw:AirSurveillanceRadarService", "ncw:GridPosition", "ncw:AirTrack",
    })


def test_profile_qos_dict_roundtrip(radar_profile):
    assert radar_profile.qos_dict() == {"latency_ms": 50.0, "coverage_km": 40.0}


def test_profile_is_hashable(radar_profile):
    assert hash(radar_profile) == hash(radar_profile)
    assert radar_profile in {radar_profile}


def test_profile_size_grows_with_parameters():
    small = ServiceProfile.build("s", "cat")
    big = ServiceProfile.build(
        "s", "cat",
        inputs=["a", "b"], outputs=["c", "d", "e"],
        qos={"q1": 1.0, "q2": 2.0}, text="long description " * 10,
    )
    assert big.size_bytes() > small.size_bytes() > 0


def test_profile_size_dominates_uri_string():
    """The paper: semantic advertisements are 'quite large' next to URIs."""
    profile = ServiceProfile.build("s", "ncw:RadarService", outputs=["ncw:Track"])
    assert profile.size_bytes() > 10 * len("ncw:RadarService")


def test_request_requires_some_constraint():
    with pytest.raises(DescriptionError):
        ServiceRequest.build(None)


def test_request_with_only_keywords_is_valid():
    request = ServiceRequest.build(None, keywords=["radar"])
    assert request.keywords == ("radar",)


def test_request_max_results_validation():
    with pytest.raises(DescriptionError):
        ServiceRequest.build("cat", max_results=0)


def test_request_qos_constraints_sorted():
    request = ServiceRequest.build(
        "cat", qos={"z_attr": (None, 5.0), "a_attr": (1.0, None)}
    )
    assert [c.attribute for c in request.qos_constraints] == ["a_attr", "z_attr"]


def test_qos_constraint_bounds():
    constraint = QoSConstraint("latency", minimum=10.0, maximum=100.0)
    assert constraint.satisfied_by(50.0)
    assert constraint.satisfied_by(10.0)   # inclusive
    assert constraint.satisfied_by(100.0)  # inclusive
    assert not constraint.satisfied_by(9.9)
    assert not constraint.satisfied_by(100.1)
    assert not constraint.satisfied_by(None)


def test_qos_constraint_one_sided():
    low = QoSConstraint("x", minimum=1.0)
    assert low.satisfied_by(999.0)
    high = QoSConstraint("x", maximum=1.0)
    assert high.satisfied_by(-999.0)


def test_qos_constraint_rejects_nan():
    constraint = QoSConstraint("x", minimum=0.0)
    assert not constraint.satisfied_by(float("nan"))


def test_request_size_bytes(sensor_request):
    assert sensor_request.size_bytes() > 0
    bigger = ServiceRequest.build(
        "cat", outputs=["a", "b", "c"], inputs=["d"],
        qos={"q": (0.0, 1.0)}, keywords=["k1", "k2"],
    )
    assert bigger.size_bytes() > ServiceRequest.build("cat").size_bytes()
