"""Tests for the metrics layer: retrieval, staleness, bandwidth, topology."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.client_node import DiscoveryCall
from repro.metrics.bandwidth import TrafficWindow
from repro.metrics.retrieval import RetrievalScores, score_call, score_queries
from repro.metrics.staleness import registry_staleness, response_staleness
from repro.metrics.topology import (
    characteristic_path_length,
    clustering_coefficient,
    discovery_graph,
    largest_component_fraction,
    reachability_under_removal,
)
from repro.netsim.stats import TrafficStats
from repro.registry.advertisements import Advertisement
from repro.registry.matching import QueryHit
from repro.semantics.profiles import ServiceRequest
from repro.workloads.queries import IssuedQuery


def _call(names, query_id="q1"):
    call = DiscoveryCall(
        query_id=query_id,
        request=ServiceRequest.build("cat"),
        model_id="uri",
        issued_at=0.0,
    )
    call.completed = True
    call.hits = [
        QueryHit(
            Advertisement(ad_id=f"ad-{n}", service_node=n, service_name=n,
                          endpoint="e", model_id="uri", description="d"),
            1, 0.5,
        )
        for n in names
    ]
    return call


def _issued(names, relevant, query_id="q1"):
    return IssuedQuery(call=_call(names, query_id), relevant=frozenset(relevant),
                       client="c", issued_at=0.0)


# -- retrieval ------------------------------------------------------------------

def test_score_call_perfect():
    assert score_call(_call(["a", "b"]), frozenset({"a", "b"})) == (1.0, 1.0)


def test_score_call_partial():
    precision, recall = score_call(_call(["a", "x"]), frozenset({"a", "b"}))
    assert precision == 0.5
    assert recall == 0.5


def test_score_call_empty_cases():
    assert score_call(_call([]), frozenset()) == (1.0, 1.0)
    assert score_call(_call([]), frozenset({"a"})) == (0.0, 0.0)
    assert score_call(_call(["x"]), frozenset()) == (0.0, 1.0)


def test_score_queries_macro_average():
    scores = score_queries([
        _issued(["a"], {"a"}),
        _issued([], {"b"}),
    ])
    assert scores.queries == 2
    assert scores.recall == 0.5
    assert 0 < scores.f1 < 1


def test_score_queries_alive_only_filter():
    scores = score_queries(
        [_issued(["a"], {"a", "dead"})],
        alive_only=frozenset({"a"}),
    )
    assert scores.recall == 1.0


def test_score_queries_skips_incomplete():
    incomplete = _issued(["a"], {"a"})
    incomplete.call.completed = False
    assert score_queries([incomplete]).queries == 0


def test_retrieval_scores_empty():
    scores = RetrievalScores.from_pairs([])
    assert scores.queries == 0
    assert scores.f1 == 0.0


# -- staleness ----------------------------------------------------------------------

def test_response_staleness_counts_dead_hits():
    issued = [_issued(["alive", "dead"], {"alive"}, query_id="q1")]
    staleness = response_staleness(issued, {"q1": frozenset({"dead"})})
    assert staleness == 0.5


def test_response_staleness_no_hits():
    issued = [_issued([], set(), query_id="q1")]
    assert response_staleness(issued, {}) == 0.0


def test_registry_staleness_over_system(small_system):
    from repro.semantics.profiles import ServiceProfile

    profile = ServiceProfile.build("radar", "ncw:RadarService",
                                   outputs=["ncw:AirTrack"])
    service = small_system.add_service("lan-0", profile)
    small_system.run(until=2.0)
    assert registry_staleness(small_system) == 0.0
    service.crash()
    assert registry_staleness(small_system) == 1.0  # purge hasn't run yet


# -- bandwidth -------------------------------------------------------------------------

def test_traffic_window_deltas():
    stats = TrafficStats()
    stats.record_send("query", "a", 100, wan=False, multicast=False)
    window = TrafficWindow.open(stats, now=10.0)
    stats.record_send("query", "a", 300, wan=True, multicast=False)
    stats.record_send("renew", "b", 50, wan=False, multicast=False)
    report = window.close(now=20.0)
    assert report["bytes_sent"] == 350
    assert report["bytes_per_second"] == pytest.approx(35.0)
    assert window.bytes_by_type() == {"query": 300, "renew": 50}
    assert window.query_bytes() == 300
    assert window.maintenance_bytes() == 50


def test_traffic_window_ignores_pre_window_traffic():
    stats = TrafficStats()
    stats.record_send("publish", "a", 1000, wan=False, multicast=False)
    window = TrafficWindow.open(stats, now=0.0)
    assert window.close(now=1.0)["bytes_sent"] == 0
    assert window.maintenance_bytes() == 0


def test_stats_max_node_load():
    stats = TrafficStats()
    stats.record_delivery("a", 10)
    stats.record_delivery("b", 99)
    node, load = stats.max_node_load()
    assert (node, load) == ("b", 99)


def test_stats_reset():
    stats = TrafficStats()
    stats.record_send("x", "a", 5, wan=True, multicast=True)
    stats.reset()
    assert stats.snapshot() == TrafficStats().snapshot()


# -- topology ------------------------------------------------------------------------------

def test_discovery_graph_registry_attachments(wan_system):
    from repro.semantics.profiles import ServiceProfile

    profile = ServiceProfile.build("radar", "ncw:RadarService",
                                   outputs=["ncw:AirTrack"])
    wan_system.add_service("lan-0", profile)
    wan_system.add_client("lan-1")
    wan_system.run(until=3.0)
    graph = discovery_graph(wan_system)
    assert graph.number_of_nodes() == 5  # 3 registries + service + client
    assert largest_component_fraction(graph) == 1.0


def test_discovery_graph_alive_only(wan_system):
    wan_system.run(until=2.0)
    wan_system.registries[0].crash()
    graph = discovery_graph(wan_system)
    assert wan_system.registries[0].node_id not in graph


def test_discovery_graph_decentralized_cliques():
    from repro.core.system import DiscoverySystem
    from repro.semantics.generator import battlefield_ontology
    from repro.semantics.profiles import ServiceProfile

    system = DiscoverySystem(seed=1, ontology=battlefield_ontology())
    system.add_lan("lan-0")
    system.add_lan("lan-1")
    for lan in ("lan-0", "lan-1"):
        system.add_client(lan)
        system.add_service(lan, ServiceProfile.build(
            f"s-{lan}", "ncw:RadarService", outputs=["ncw:AirTrack"]))
    system.run(until=1.0)
    graph = discovery_graph(system)
    # Two disconnected 2-cliques.
    assert largest_component_fraction(graph) == 0.5
    assert clustering_coefficient(graph) == 0.0  # pairs have no triangles


def test_path_length_star_vs_line():
    star = nx.star_graph(4)
    line = nx.path_graph(5)
    assert characteristic_path_length(star) < characteristic_path_length(line)


def test_path_length_trivial_graphs():
    assert characteristic_path_length(nx.Graph()) == 0.0
    single = nx.Graph()
    single.add_node("a")
    assert characteristic_path_length(single) == 0.0


def test_reachability_under_removal_hub_attack():
    star = nx.star_graph(5)  # node 0 is the hub
    curve = reachability_under_removal(star, [0])
    assert curve[0] == pytest.approx(1 / 6)
    ring = nx.cycle_graph(6)
    ring_curve = reachability_under_removal(ring, [0])
    assert ring_curve[0] > curve[0]


def test_reachability_curve_monotone_nonincreasing():
    graph = nx.barbell_graph(4, 1)
    order = sorted(graph.nodes, key=lambda n: -graph.degree(n))
    curve = reachability_under_removal(graph, [str(n) for n in order] or order)
    curve2 = reachability_under_removal(graph, list(order))
    assert all(a >= b for a, b in zip(curve2, curve2[1:]))
