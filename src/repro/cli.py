"""Command-line interface: run experiments and demos without writing code.

Usage (installed entry point or ``python -m repro``)::

    python -m repro list                       # available experiments
    python -m repro experiment e4              # run one, print its table
    python -m repro experiment e4 --seed 3
    python -m repro experiment e4 --json       # machine-readable dump
    python -m repro experiment all             # run everything
    python -m repro ablations                  # the knob sweeps
    python -m repro trace e7                   # render a causal query trace
    python -m repro metrics e7                 # render the metrics registry
    python -m repro metrics e7 --format prom   # Prometheus text exposition
    python -m repro health e20                 # capacity-planning report
    python -m repro demo                       # 30-second guided demo

Experiment runners are imported lazily so ``list`` stays fast.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from typing import Callable

#: Experiment id -> (module, human description). Kept in sync with
#: DESIGN.md §3.
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "e1": ("repro.experiments.e1_topology",
           "Fig. 1/§3 — the three discovery topologies"),
    "e2": ("repro.experiments.e2_response_control",
           "§3.1 — response implosion vs registry response control"),
    "e3": ("repro.experiments.e3_robustness",
           "§3 — recall under random/targeted registry failures"),
    "e4": ("repro.experiments.e4_staleness",
           "§4.8 — stale advertisements under churn (leasing vs none)"),
    "e5": ("repro.experiments.e5_matchmaking",
           "§4.2 — semantic vs syntactic matchmaking"),
    "e6": ("repro.experiments.e6_lan_fallback",
           "Fig. 3 — LAN discovery modes across a registry outage"),
    "e7": ("repro.experiments.e7_wan_federation",
           "Figs. 2/4 — WAN federation: seeding, cooperation, gateways"),
    "e8": ("repro.experiments.e8_forwarding",
           "§4.9 — flooding vs ring vs walk vs informed forwarding"),
    "e9": ("repro.experiments.e9_signalling",
           "§4.5 — failover via registry signalling"),
    "e10": ("repro.experiments.e10_stack",
            "Fig. 5 — description models on one generic stack"),
    "e11": ("repro.experiments.e11_survivability",
            "MILCOM — survivability of the three topologies"),
    "e12": ("repro.experiments.e12_repository",
            "§4.6 — the registry network as ontology repository"),
    "e13": ("repro.experiments.e13_notifications",
            "extension — notification push vs polling"),
    "e14": ("repro.experiments.e14_mediation",
            "§4.3 — mediator selection / translator chains"),
    "e15": ("repro.experiments.e15_standby",
            "§4.9 — registry-role negotiation (standby promotion)"),
    "e16": ("repro.experiments.e16_mobility",
            "§1 — roaming services across LANs"),
    "e17": ("repro.experiments.e17_overload",
            "§3.1 — overload protection: admission control, priority "
            "shedding, BUSY back-off"),
    "e18": ("repro.experiments.e18_routing",
            "§3.1 — adaptive load-aware routing under skewed registry "
            "load"),
    "e19": ("repro.experiments.e19_recovery",
            "extension — durable crash recovery (WAL + snapshot vs "
            "memory-only)"),
    "e20": ("repro.experiments.e20_health",
            "extension — runtime health under faults (alarms, flight "
            "recorders, SLO burn)"),
    "e21": ("repro.experiments.e21_sharding",
            "extension — sharded, replicated federation (quorum writes, "
            "read cover, self-healing)"),
}

#: Experiments whose ``run`` accepts ``report_dir`` and emits a
#: capacity-planning report (see :mod:`repro.obs.report`).
HEALTH_EXPERIMENTS = ("e17", "e18", "e19", "e20")


def _runner(experiment_id: str) -> Callable:
    module_name, _description = EXPERIMENTS[experiment_id]
    module = importlib.import_module(module_name)
    return module.run


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(key) for key in EXPERIMENTS)
    for key, (_module, description) in EXPERIMENTS.items():
        print(f"{key.ljust(width)}  {description}")
    print(f"{'ablations'.ljust(width)}  §4 knob sweeps (lease/beacon/ttl/zip)")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    targets = list(EXPERIMENTS) if args.id == "all" else [args.id]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(try 'list')", file=sys.stderr)
        return 2
    dumps = []
    for target in targets:
        result = _runner(target)(seed=args.seed)
        if args.json:
            dumps.append(result.to_json())
            continue
        print(result.table())
        if args.chart:
            _print_chart(result, args.chart)
        print()
    if args.json:
        payload = dumps[0] if len(dumps) == 1 else dumps
        print(json.dumps(payload, indent=2, default=str))
    return 0


def _print_chart(result, value_column: str) -> int:
    """Render one numeric column as ASCII bars under the table."""
    from repro.experiments.common import bar_chart

    if value_column not in result.columns():
        print(f"no column {value_column!r}; columns: "
              f"{', '.join(result.columns())}", file=sys.stderr)
        return 2
    label = result.columns()[0]
    print()
    print(bar_chart(result, label=label, value=value_column))
    return 0


def cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import run

    result = run(seed=args.seed)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, default=str))
    else:
        print(result.table())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a canonical traced capture and render one query's span tree."""
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r} (try 'list')",
              file=sys.stderr)
        return 2
    from repro.obs.capture import run_traced

    run = run_traced(args.experiment, seed=args.seed)
    if args.jsonl:
        print(run.recorder.export_jsonl())
        return 0
    if args.all:
        trace_ids = run.recorder.traces()
    elif run.sample_trace is not None:
        trace_ids = [run.sample_trace]
    else:
        trace_ids = []
    if not trace_ids:
        print("no completed traces recorded", file=sys.stderr)
        return 1
    for trace_id in trace_ids:
        print(run.recorder.render(trace_id))
        print()
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a canonical traced capture and render its metrics registry."""
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r} (try 'list')",
              file=sys.stderr)
        return 2
    from repro.obs.capture import run_traced

    run = run_traced(args.experiment, seed=args.seed)
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(json.dumps(run.metrics.snapshot(), indent=2, default=str))
    elif fmt == "prom":
        print(run.metrics.render_prom())
    else:
        print(run.metrics.render())
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Run a health-instrumented experiment; render its capacity report."""
    if args.experiment not in HEALTH_EXPERIMENTS:
        print(f"unknown health experiment {args.experiment!r} "
              f"(one of: {', '.join(HEALTH_EXPERIMENTS)})", file=sys.stderr)
        return 2
    import pathlib

    from repro.obs.report import render_report

    module = importlib.import_module(EXPERIMENTS[args.experiment][0])
    module.run(seed=args.seed, report_dir=args.dir)
    path = pathlib.Path(args.dir) / (
        f"health_{args.experiment}_seed{args.seed}.json"
    )
    report = json.loads(path.read_text())
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        print(render_report(report))
        print(f"\nwritten: {path}")
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    """A guided single-LAN walk-through (the quickstart, narrated)."""
    from repro import DiscoverySystem, ServiceProfile, ServiceRequest
    from repro.semantics import emergency_ontology

    print("building a one-LAN deployment (registry + ambulance service)...")
    system = DiscoverySystem(seed=1, ontology=emergency_ontology())
    system.add_lan("field-hq")
    system.add_registry("field-hq")
    system.add_service("field-hq", ServiceProfile.build(
        "medevac-dispatch", "ems:AmbulanceDispatchService",
        outputs=["ems:UnitLocation"], qos={"latency_ms": 120.0}))
    client = system.add_client("field-hq")
    system.run(until=2.0)
    print("bootstrap done: probe -> attach -> publish -> lease")
    request = ServiceRequest.build("ems:MedicalService",
                                   outputs=["ems:Location"])
    print("querying for any MedicalService producing Locations "
          "(broader terms than advertised)...")
    call = system.discover(client, request)
    print(f"  found {call.service_names()} via {call.via} "
          f"in {call.latency * 1000:.1f} ms simulated")
    print("crashing the registry; querying again (fallback mode)...")
    system.registries[0].crash()
    call = system.discover(client, request, timeout=30.0)
    print(f"  found {call.service_names()} via {call.via} — "
          "the decentralized LAN fallback (Fig. 3)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic service discovery in dynamic environments — "
                    "experiments and demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=cmd_list)

    experiment = sub.add_parser("experiment",
                                help="run one experiment (or 'all')")
    experiment.add_argument("id", help="experiment id, e.g. e4, or 'all'")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--chart", metavar="COLUMN", default=None,
        help="also render COLUMN as an ASCII bar chart",
    )
    experiment.add_argument(
        "--json", action="store_true",
        help="print the result as JSON instead of a table",
    )
    experiment.set_defaults(func=cmd_experiment)

    ablations = sub.add_parser("ablations", help="run the §4 knob sweeps")
    ablations.add_argument("--seed", type=int, default=0)
    ablations.add_argument(
        "--json", action="store_true",
        help="print the result as JSON instead of a table",
    )
    ablations.set_defaults(func=cmd_ablations)

    trace = sub.add_parser(
        "trace",
        help="run a traced capture of an experiment scenario and "
             "render a query's causal span tree",
    )
    trace.add_argument("experiment", help="experiment id, e.g. e7")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--all", action="store_true",
                       help="render every recorded trace, not just one")
    trace.add_argument("--jsonl", action="store_true",
                       help="dump the raw trace records as JSON Lines")
    trace.set_defaults(func=cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run a traced capture of an experiment scenario and "
             "render its metrics registry",
    )
    metrics.add_argument("experiment", help="experiment id, e.g. e7")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--json", action="store_true",
                         help="print the metrics snapshot as JSON "
                              "(same as --format json)")
    metrics.add_argument("--format", choices=("text", "json", "prom"),
                         default="text",
                         help="output format; 'prom' renders Prometheus "
                              "text exposition")
    metrics.set_defaults(func=cmd_metrics)

    health = sub.add_parser(
        "health",
        help="run a health-instrumented experiment and render its "
             "capacity-planning report",
    )
    health.add_argument("experiment",
                        help=f"one of: {', '.join(HEALTH_EXPERIMENTS)}")
    health.add_argument("--seed", type=int, default=0)
    health.add_argument("--dir", default="benchmarks/results",
                        help="directory the JSON report is written to")
    health.add_argument("--json", action="store_true",
                        help="print the raw JSON report instead")
    health.set_defaults(func=cmd_health)

    sub.add_parser("demo", help="a 30-second guided demo").set_defaults(
        func=cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
