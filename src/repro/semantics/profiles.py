"""OWL-S-profile-like service descriptions and requests.

A :class:`ServiceProfile` describes what a service *provides*: a service
category concept, the input concepts it consumes, the output concepts it
produces, and numeric QoS attributes. A :class:`ServiceRequest` is the
"partial template" the paper describes clients submitting: desired
category/outputs, the inputs the client can supply, and QoS constraints.

Both carry a byte-size model reflecting their XML serializations — the
paper stresses that "semantic service advertisements can become quite
large, compared to for example URI strings", and experiment E10 measures
exactly that.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass

from repro.errors import DescriptionError

#: Base size of an OWL-S profile document: namespaces, profile skeleton,
#: grounding stub. Calibrated against typical OWL-S 1.1 sample profiles.
_PROFILE_BASE_BYTES = 2048

#: Per-parameter (input/output) serialization cost.
_PARAMETER_BYTES = 128

#: Per-QoS-attribute serialization cost.
_QOS_BYTES = 96

#: Base size of a request template (no grounding section).
_REQUEST_BASE_BYTES = 1024


@dataclass(frozen=True, slots=True)
class QoSConstraint:
    """A numeric constraint on one QoS attribute.

    ``minimum``/``maximum`` are inclusive bounds; either may be ``None``.
    """

    attribute: str
    minimum: float | None = None
    maximum: float | None = None

    def satisfied_by(self, value: float | None) -> bool:
        """Whether ``value`` (``None`` = attribute absent) meets the bounds."""
        if value is None or math.isnan(value):
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True


@dataclass(frozen=True, slots=True)
class ServiceProfile:
    """A semantic advertisement of one service's capability.

    Attributes
    ----------
    service_name:
        Human-readable name (also usable by keyword matchers).
    category:
        Ontology concept classifying the service (e.g. ``"ont:RadarService"``).
    inputs / outputs:
        Ontology concepts the service consumes / produces.
    qos:
        Numeric quality-of-service attributes (latency, coverage radius,
        confidence, ...).
    provider:
        Identifier of the providing organization/node.
    text:
        Free-text description (used by keyword matchers only).
    """

    service_name: str
    category: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    qos: tuple[tuple[str, float], ...] = ()
    provider: str = ""
    text: str = ""

    def __post_init__(self) -> None:
        if not self.service_name:
            raise DescriptionError("service_name must be non-empty")
        if not self.category:
            raise DescriptionError("category must be non-empty")

    @staticmethod
    def build(
        service_name: str,
        category: str,
        *,
        inputs: tuple[str, ...] | list[str] = (),
        outputs: tuple[str, ...] | list[str] = (),
        qos: dict[str, float] | None = None,
        provider: str = "",
        text: str = "",
    ) -> "ServiceProfile":
        """Ergonomic constructor accepting lists and dicts.

        Concept URIs are ``sys.intern``-ed: stores hold many profiles
        drawn from a small concept vocabulary, so interning collapses the
        duplicated strings and makes the matchmaker's per-pair cache keys
        hash/compare on pointer-identical objects.
        """
        return ServiceProfile(
            service_name=service_name,
            category=sys.intern(category),
            inputs=tuple(sys.intern(c) for c in inputs),
            outputs=tuple(sys.intern(c) for c in outputs),
            qos=tuple(sorted((qos or {}).items())),
            provider=provider,
            text=text,
        )

    def qos_value(self, attribute: str) -> float | None:
        """The value of one QoS attribute, or ``None`` if absent."""
        for name, value in self.qos:
            if name == attribute:
                return value
        return None

    def qos_dict(self) -> dict[str, float]:
        """QoS attributes as a plain dict."""
        return dict(self.qos)

    def concepts(self) -> frozenset[str]:
        """Every ontology concept this profile references."""
        return frozenset({self.category, *self.inputs, *self.outputs})

    def size_bytes(self) -> int:
        """Modelled size of the OWL-S/XML serialization."""
        concept_bytes = sum(
            _PARAMETER_BYTES + len(c.encode("utf-8")) for c in (*self.inputs, *self.outputs)
        )
        return (
            _PROFILE_BASE_BYTES
            + len(self.service_name.encode("utf-8"))
            + len(self.category.encode("utf-8"))
            + concept_bytes
            + len(self.qos) * _QOS_BYTES
            + len(self.text.encode("utf-8"))
        )


@dataclass(frozen=True, slots=True)
class ServiceRequest:
    """A client's partial template: what it needs and what it can provide.

    Attributes
    ----------
    category:
        Desired service category concept (or ``None`` for any).
    desired_outputs:
        Concepts the client needs produced. A matching service must cover
        every one of them.
    provided_inputs:
        Concepts the client can supply. A matching service must not
        require anything outside this set (up to subsumption).
    qos_constraints:
        Hard numeric constraints; services violating any are rejected.
    keywords:
        Free-text terms (used only by the keyword baseline matcher).
    max_results:
        Query response control (§3): the registry returns at most this
        many, best first. ``None`` disables the cap — the configuration
        under which the paper's "response implosion" occurs.
    """

    category: str | None = None
    desired_outputs: tuple[str, ...] = ()
    provided_inputs: tuple[str, ...] = ()
    qos_constraints: tuple[QoSConstraint, ...] = ()
    keywords: tuple[str, ...] = ()
    max_results: int | None = None

    def __post_init__(self) -> None:
        if self.category is None and not self.desired_outputs and not self.keywords:
            raise DescriptionError(
                "request must constrain at least one of: category, outputs, keywords"
            )
        if self.max_results is not None and self.max_results < 1:
            raise DescriptionError(f"max_results must be >= 1, got {self.max_results}")

    @staticmethod
    def build(
        category: str | None = None,
        *,
        outputs: tuple[str, ...] | list[str] = (),
        inputs: tuple[str, ...] | list[str] = (),
        qos: dict[str, tuple[float | None, float | None]] | None = None,
        keywords: tuple[str, ...] | list[str] = (),
        max_results: int | None = None,
    ) -> "ServiceRequest":
        """Ergonomic constructor; ``qos`` maps attribute -> (min, max)."""
        constraints = tuple(
            QoSConstraint(attribute=name, minimum=low, maximum=high)
            for name, (low, high) in sorted((qos or {}).items())
        )
        return ServiceRequest(
            category=sys.intern(category) if category is not None else None,
            desired_outputs=tuple(sys.intern(c) for c in outputs),
            provided_inputs=tuple(sys.intern(c) for c in inputs),
            qos_constraints=constraints,
            keywords=tuple(keywords),
            max_results=max_results,
        )

    def size_bytes(self) -> int:
        """Modelled size of the serialized query template."""
        concept_bytes = sum(
            _PARAMETER_BYTES + len(c.encode("utf-8"))
            for c in (*self.desired_outputs, *self.provided_inputs)
        )
        category_bytes = len(self.category.encode("utf-8")) if self.category else 0
        keyword_bytes = sum(len(k.encode("utf-8")) for k in self.keywords)
        return (
            _REQUEST_BASE_BYTES
            + category_bytes
            + concept_bytes
            + len(self.qos_constraints) * _QOS_BYTES
            + keyword_bytes
        )
