"""Semantic substrate: ontologies, subsumption reasoning, and matchmaking.

The paper assumes "a shared semantic model, or ontology" and semantic
service descriptions in the OWL-S/WSMO tradition, but leaves the machinery
abstract. This package is a self-contained implementation of exactly what
the discovery architecture needs:

* :class:`~repro.semantics.ontology.Ontology` — named classes with
  subclass axioms forming a rooted DAG, plus object properties.
* :class:`~repro.semantics.reasoner.Reasoner` — cached transitive
  subsumption, least common ancestors, and edge-based semantic distance.
* :class:`~repro.semantics.profiles.ServiceProfile` /
  :class:`~repro.semantics.profiles.ServiceRequest` — OWL-S-profile-like
  descriptions of capabilities and needs (category, inputs, outputs, QoS),
  with byte-size models reflecting their XML serializations.
* :class:`~repro.semantics.matchmaker.Matchmaker` — the classic
  Paolucci-et-al. degree-of-match algorithm
  (exact / plug-in / subsumes / fail) with QoS-aware ranking.
* :mod:`~repro.semantics.generator` — deterministic random ontologies and
  the hand-written emergency-response and battlefield ontologies used by
  the example scenarios.
"""

from repro.semantics.ontology import Ontology, THING
from repro.semantics.reasoner import Reasoner
from repro.semantics.profiles import QoSConstraint, ServiceProfile, ServiceRequest
from repro.semantics.matchmaker import DegreeOfMatch, MatchResult, Matchmaker
from repro.semantics.generator import (
    OntologyGenerator,
    ProfileGenerator,
    emergency_ontology,
    battlefield_ontology,
)

__all__ = [
    "DegreeOfMatch",
    "Matchmaker",
    "MatchResult",
    "Ontology",
    "OntologyGenerator",
    "ProfileGenerator",
    "QoSConstraint",
    "Reasoner",
    "ServiceProfile",
    "ServiceRequest",
    "THING",
    "battlefield_ontology",
    "emergency_ontology",
]
