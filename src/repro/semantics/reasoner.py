"""Subsumption reasoner with caching.

The registry-side matchmaking the paper calls for ("inference mechanisms
can be used to find matches based on a subtype hierarchy — e.g. a Radar is
a kind of Sensor") needs three primitives, all provided here:

* :meth:`Reasoner.subsumes` — reflexive transitive subclass test,
* :meth:`Reasoner.lca_set` — least common ancestors,
* :meth:`Reasoner.distance` — edge-count semantic distance through an LCA,
  used to break ties when ranking candidate services.

Subsumption is backed by precomputed **ancestor-or-self closure bitsets**:
every class gets an immutable int whose bit ``i`` is set iff the class
with dense concept id ``i`` (see :meth:`Ontology.concept_id`) is the class
itself or one of its transitive superclasses. ``subsumes(g, s)`` is then a
single shift-and-mask on ``closure_bits(s)``, and closure *expansion* (the
concept index's bulk operation) walks only the set bits. Bitsets are
memoized per class and rebuilt lazily after an ontology version bump, so
repeated matchmaking over a stable ontology is O(1) per subsumption test
after warm-up and mid-run ontology growth never serves stale closures.

The version check happens once per public entry point (:meth:`Reasoner.sync`),
not once per internal cache lookup: callers composing many lookups (the
matchmaker, the concept index) pay a single integer compare per query
instead of one per traversed concept.
"""

from __future__ import annotations

from repro.semantics.ontology import Ontology, THING


class Reasoner:
    """Cached subsumption reasoning over one :class:`Ontology`."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._closure_bits: dict[str, int] = {}
        self._ancestor_cache: dict[str, frozenset[str]] = {}
        self._depth_cache: dict[str, int] = {}
        self._updist_cache: dict[str, dict[str, int]] = {}
        self._cached_version = ontology.version
        self.subsumption_checks = 0

    def sync(self) -> None:
        """Drop all caches if the ontology's version counter advanced.

        Every public method calls this once on entry; the unchecked
        ``_closure``/``_ancestors``/``_depth``/``_up_distances`` internals
        assume it already ran for the current call.
        """
        if self._cached_version != self.ontology.version:
            self._closure_bits.clear()
            self._ancestor_cache.clear()
            self._depth_cache.clear()
            self._updist_cache.clear()
            self._cached_version = self.ontology.version

    def _closure(self, uri: str) -> int:
        """Ancestor-or-self bitset of ``uri``, memoized.

        Computed bottom-up over the parent DAG (a class's closure is its
        own bit OR-ed with its parents' closures), iteratively so deep
        hierarchies cannot overflow the recursion limit.
        """
        bits = self._closure_bits
        cached = bits.get(uri)
        if cached is not None:
            return cached
        ontology = self.ontology
        stack = [uri]
        while stack:
            current = stack[-1]
            if current in bits:
                stack.pop()
                continue
            pending = [p for p in ontology.parents(current) if p not in bits]
            if pending:
                stack.extend(pending)
                continue
            closure = 1 << ontology.concept_id(current)
            for parent in ontology.parents(current):
                closure |= bits[parent]
            bits[current] = closure
            stack.pop()
        return bits[uri]

    def _up_distances(self, uri: str) -> dict[str, int]:
        """Minimum superclass-edge counts from ``uri`` to each ancestor
        (including ``uri`` itself at 0), cached. BFS over parent edges."""
        cached = self._updist_cache.get(uri)
        if cached is not None:
            return cached
        distances = {uri: 0}
        frontier = [uri]
        while frontier:
            next_frontier = []
            for current in frontier:
                for parent in self.ontology.parents(current):
                    if parent not in distances:
                        distances[parent] = distances[current] + 1
                        next_frontier.append(parent)
            frontier = next_frontier
        self._updist_cache[uri] = distances
        return distances

    def _ancestors(self, uri: str) -> frozenset[str]:
        """Strict ancestors, cached, without the version check.

        Expanded from the closure bitset (set-bit walk), not by
        re-traversing the DAG.
        """
        cached = self._ancestor_cache.get(uri)
        if cached is None:
            ontology = self.ontology
            strict = self._closure(uri) & ~(1 << ontology.concept_id(uri))
            cached = frozenset(ontology.uris_from_bits(strict))
            self._ancestor_cache[uri] = cached
        return cached

    def _depth(self, uri: str) -> int:
        """Depth below THING, cached, without the version check."""
        cached = self._depth_cache.get(uri)
        if cached is None:
            cached = self.ontology.depth(uri)
            self._depth_cache[uri] = cached
        return cached

    def ancestors_of(self, uri: str) -> frozenset[str]:
        """Strict ancestors of ``uri``, cached."""
        self.sync()
        return self._ancestors(uri)

    def closure_bits(self, uri: str) -> int:
        """Ancestor-or-self closure of ``uri`` as a concept-id bitset.

        Bit ``i`` is set iff ``ontology.concept_uri(i)`` is ``uri`` itself
        or a transitive superclass. The int is immutable and safe to hold
        across calls for the current ontology version; it is rebuilt after
        a version bump.
        """
        self.sync()
        return self._closure(uri)

    def depth_of(self, uri: str) -> int:
        """Shortest-chain depth of ``uri`` below THING, cached."""
        self.sync()
        return self._depth(uri)

    def subsumes(self, general: str, specific: str) -> bool:
        """True iff ``general`` is ``specific`` or a (transitive) superclass.

        ``subsumes("ont:Sensor", "ont:Radar")`` is the paper's example.
        """
        self.subsumption_checks += 1
        if general == specific:
            return True
        self.sync()
        ontology = self.ontology
        if general not in ontology:
            return False
        return bool(self._closure(specific) >> ontology.concept_id(general) & 1)

    def related(self, a: str, b: str) -> bool:
        """True iff the classes are comparable (either subsumes the other)."""
        return self.subsumes(a, b) or self.subsumes(b, a)

    def lca_set(self, a: str, b: str) -> frozenset[str]:
        """Least common ancestors: deepest classes subsuming both.

        THING is always a common ancestor, so the result is non-empty.
        """
        self.sync()
        common = (self._ancestors(a) | {a}) & (self._ancestors(b) | {b})
        if not common:  # pragma: no cover - THING is universal
            return frozenset({THING})
        max_depth = max(self._depth(c) for c in common)
        return frozenset(c for c in common if self._depth(c) == max_depth)

    def distance(self, a: str, b: str) -> int:
        """Edge-count semantic distance: the shortest up-up path between
        the classes through any common ancestor.

        Zero for identical classes; grows as classes sit further apart in
        the hierarchy. Computed from true minimal up-paths (not depths),
        so it stays non-negative and symmetric even in multiple-
        inheritance DAGs with "shortcut" edges to the root. Used as a
        ranking tie-breaker by the matchmaker.
        """
        if a == b:
            return 0
        self.sync()
        up_a = self._up_distances(a)
        up_b = self._up_distances(b)
        common = up_a.keys() & up_b.keys()
        return min(up_a[c] + up_b[c] for c in common)

    def similarity(self, a: str, b: str) -> float:
        """Wu-Palmer-style similarity in (0, 1]: 1.0 for identical classes.

        Clamped to 1.0 — with multiple inheritance an LCA's shortest root
        chain can exceed a class's own shortcut depth, which would push
        the raw ratio above 1.
        """
        if a == b:
            return 1.0
        lcas = self.lca_set(a, b)
        lca_depth = max(self._depth(c) for c in lcas)
        denominator = self._depth(a) + self._depth(b)
        if denominator == 0:
            return 1.0
        return min(1.0, (2.0 * lca_depth) / denominator)
