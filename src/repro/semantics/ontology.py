"""Ontology model: a rooted DAG of named classes.

Classes are identified by URI-like strings (``"ont:Sensor"``). Every class
is (transitively) a subclass of :data:`THING`. Multiple inheritance is
allowed; cycles are rejected at insertion time so the subsumption relation
is always a partial order.

The ontology carries a monotonically increasing ``version`` so reasoners
can cache transitive closures and invalidate them on change.

Every class additionally receives a dense integer *concept id* (THING is
0, later classes count up). The id space lets reasoners represent a
class's ancestor-or-self closure as an immutable int bitset — bit ``i``
set iff the class with concept id ``i`` is in the closure — turning
subsumption tests and closure expansion into O(1) bit operations on the
matchmaking hot path. Ids are append-only (classes cannot be removed), so
they stay valid across monotone ontology growth; consumers key their
caches on ``version`` exactly as they do for the closure caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import CycleError, OntologyError, UnknownClassError

#: The universal root class. Present in every ontology.
THING = "owl:Thing"

#: Modelled serialization cost of one class definition (an ``owl:Class``
#: element with ``rdfs:subClassOf`` references), in bytes.
_CLASS_XML_OVERHEAD = 160

#: Modelled serialization cost of one property definition.
_PROPERTY_XML_OVERHEAD = 220


@dataclass(frozen=True)
class ObjectProperty:
    """An object property with a domain and range class."""

    name: str
    domain: str
    range: str


class Ontology:
    """A class hierarchy (rooted DAG) with object properties.

    Parameters
    ----------
    name:
        Human-readable ontology name; also used as the repository key
        when ontologies are hosted in the registry network (§4.6).
    """

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self.version = 0
        self._parents: dict[str, set[str]] = {THING: set()}
        self._children: dict[str, set[str]] = {THING: set()}
        self._properties: dict[str, ObjectProperty] = {}
        #: Dense concept-id space: uri -> id and the inverse, append-only.
        self._ids: dict[str, int] = {THING: 0}
        self._uri_by_id: list[str] = [THING]

    # -- construction ---------------------------------------------------

    def add_class(self, uri: str, parents: Iterable[str] = (THING,)) -> str:
        """Define class ``uri`` as a subclass of each of ``parents``.

        Re-adding an existing class adds the new parent edges (monotone
        extension). Raises :class:`CycleError` if an edge would create a
        cycle and :class:`UnknownClassError` for undefined parents.
        """
        if not uri:
            raise OntologyError("class URI must be non-empty")
        parent_list = list(parents) or [THING]
        for parent in parent_list:
            if parent not in self._parents:
                raise UnknownClassError(f"unknown parent class {parent!r}")
        if uri not in self._parents:
            self._parents[uri] = set()
            self._children[uri] = set()
            self._ids[uri] = len(self._uri_by_id)
            self._uri_by_id.append(uri)
        for parent in parent_list:
            if parent == uri or self._reaches(uri, parent):
                raise CycleError(f"subclass axiom {uri!r} -> {parent!r} would create a cycle")
            self._parents[uri].add(parent)
            self._children[parent].add(uri)
        self.version += 1
        return uri

    def add_subtree(self, root: str, tree: dict) -> None:
        """Bulk-define a hierarchy from nested dicts.

        ``tree`` maps child names to their own subtree dicts::

            ont.add_subtree("ont:Sensor", {"ont:Radar": {}, "ont:Camera": {"ont:IRCamera": {}}})
        """
        if root not in self._parents:
            self.add_class(root)
        for child, subtree in tree.items():
            self.add_class(child, parents=[root])
            if subtree:
                self.add_subtree(child, subtree)

    def add_property(self, name: str, domain: str, range_: str) -> ObjectProperty:
        """Define an object property between two existing classes."""
        self._require(domain)
        self._require(range_)
        if name in self._properties:
            raise OntologyError(f"duplicate property {name!r}")
        prop = ObjectProperty(name=name, domain=domain, range=range_)
        self._properties[name] = prop
        self.version += 1
        return prop

    # -- queries --------------------------------------------------------

    def __contains__(self, uri: str) -> bool:
        return uri in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def classes(self) -> list[str]:
        """All class URIs, sorted."""
        return sorted(self._parents)

    def properties(self) -> list[ObjectProperty]:
        """All object properties, sorted by name."""
        return [self._properties[name] for name in sorted(self._properties)]

    def concept_id(self, uri: str) -> int:
        """The dense integer id of ``uri`` (THING is 0, append-only)."""
        self._require(uri)
        return self._ids[uri]

    def concept_count(self) -> int:
        """Size of the dense id space (== number of classes)."""
        return len(self._uri_by_id)

    def concept_uri(self, concept_id: int) -> str:
        """The class URI holding ``concept_id``."""
        return self._uri_by_id[concept_id]

    def uris_from_bits(self, bits: int) -> list[str]:
        """Expand a concept-id bitset into its class URIs.

        The inverse of building a closure bitset: bit ``i`` set means the
        class with concept id ``i`` is a member. Iterates set bits only,
        so expansion is proportional to the closure size, not the
        ontology size.
        """
        uris = []
        by_id = self._uri_by_id
        while bits:
            low = bits & -bits
            uris.append(by_id[low.bit_length() - 1])
            bits ^= low
        return uris

    def parents(self, uri: str) -> frozenset[str]:
        """Direct superclasses of ``uri``."""
        self._require(uri)
        return frozenset(self._parents[uri])

    def children(self, uri: str) -> frozenset[str]:
        """Direct subclasses of ``uri``."""
        self._require(uri)
        return frozenset(self._children[uri])

    def ancestors(self, uri: str) -> frozenset[str]:
        """All strict superclasses of ``uri`` (transitive)."""
        self._require(uri)
        seen: set[str] = set()
        stack = list(self._parents[uri])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._parents[current])
        return frozenset(seen)

    def descendants(self, uri: str) -> frozenset[str]:
        """All strict subclasses of ``uri`` (transitive)."""
        self._require(uri)
        seen: set[str] = set()
        stack = list(self._children[uri])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._children[current])
        return frozenset(seen)

    def leaves(self) -> list[str]:
        """Classes with no subclasses, sorted."""
        return sorted(uri for uri, kids in self._children.items() if not kids)

    def depth(self, uri: str) -> int:
        """Length of the shortest superclass chain from ``uri`` to THING."""
        self._require(uri)
        if uri == THING:
            return 0
        frontier = {uri}
        depth = 0
        while frontier:
            if THING in frontier:
                return depth
            depth += 1
            frontier = {p for c in frontier for p in self._parents[c]}
        raise OntologyError(f"class {uri!r} is disconnected from THING")  # pragma: no cover

    def iter_edges(self) -> Iterator[tuple[str, str]]:
        """All (child, parent) subclass edges."""
        for child in sorted(self._parents):
            for parent in sorted(self._parents[child]):
                yield child, parent

    # -- serialization model ---------------------------------------------

    def size_bytes(self) -> int:
        """Modelled size of the OWL/XML serialization of this ontology.

        Used when the registry network ships ontologies to clients (§4.6).
        """
        class_bytes = sum(
            _CLASS_XML_OVERHEAD + len(uri.encode("utf-8")) for uri in self._parents
        )
        edge_bytes = sum(len(p.encode("utf-8")) for _c, p in self.iter_edges())
        property_bytes = len(self._properties) * _PROPERTY_XML_OVERHEAD
        return class_bytes + edge_bytes + property_bytes

    # -- internals ------------------------------------------------------

    def _require(self, uri: str) -> None:
        if uri not in self._parents:
            raise UnknownClassError(f"unknown class {uri!r} in ontology {self.name!r}")

    def _reaches(self, start: str, goal: str) -> bool:
        """True if ``goal`` is reachable from ``start`` via child edges."""
        if start not in self._children:
            return False
        stack = [start]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._children.get(current, ()))
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Ontology {self.name!r}: {len(self)} classes, v{self.version}>"
