"""Degree-of-match semantic matchmaking.

Implements the capability-matching algorithm of Paolucci, Kawamura, Payne
and Sycara ("Semantic Matching of Web Services Capabilities", ISWC 2002) —
the matchmaker the OWL-S line of work the paper cites builds on — extended
with the QoS filtering and ranked selection the paper's registries need for
query response control.

Degrees, from strongest to weakest, for a requested output ``outR``
against an advertised output ``outA``:

* ``EXACT``    — ``outA == outR``, or ``outR`` is a *direct* subclass of
  ``outA`` (the provider advertised at the immediately more general level).
* ``PLUGIN``   — ``outA`` subsumes ``outR``: the advertised output is more
  general, so the service can plausibly "plug in" for the request.
* ``SUBSUMES`` — ``outR`` subsumes ``outA``: the service provides something
  more specific than asked; it partially satisfies the request.
* ``FAIL``     — the concepts are unrelated.

For inputs the direction flips: the *service's* advertised input ``inA``
is matched against the concepts the client can provide, because the client
must be able to feed the service.

The overall degree of a profile is the minimum over all requested outputs
(every desired output must be served), combined with the input and
category degrees; ranking is lexicographic on (degree, score), where the
score blends semantic similarity and QoS headroom.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

from repro.semantics.profiles import ServiceProfile, ServiceRequest
from repro.semantics.reasoner import Reasoner


class DegreeOfMatch(enum.IntEnum):
    """Match strength; higher is better, ``FAIL`` means no match."""

    FAIL = 0
    SUBSUMES = 1
    PLUGIN = 2
    EXACT = 3


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of matching one profile against one request.

    ``degree`` is the overall (weakest-link) degree; ``score`` in [0, 1]
    is used only to rank results of equal degree. ``failed_constraints``
    lists QoS attributes that disqualified the profile.
    """

    profile: ServiceProfile
    degree: DegreeOfMatch
    score: float
    output_degree: DegreeOfMatch
    input_degree: DegreeOfMatch
    category_degree: DegreeOfMatch
    failed_constraints: tuple[str, ...] = ()

    @property
    def matched(self) -> bool:
        """Whether the profile satisfies the request at all."""
        return self.degree > DegreeOfMatch.FAIL

    def sort_key(self) -> tuple:
        """Descending-quality sort key (degree, then score, then name)."""
        return (-int(self.degree), -self.score, self.profile.service_name)


class Matchmaker:
    """Ranks :class:`ServiceProfile` advertisements against requests.

    Parameters
    ----------
    reasoner:
        Subsumption reasoner over the shared ontology. Profiles or
        requests referencing concepts missing from the ontology simply
        fail to match (the paper's motivation for hosting ontologies in
        the registry network — see experiment E12).
    """

    def __init__(self, reasoner: Reasoner) -> None:
        self.reasoner = reasoner
        self.evaluations = 0
        #: Memoized (requested, advertised) -> degree, valid for one
        #: ontology version (mirrors ``Reasoner.sync``).
        self._degree_cache: dict[tuple[str, str], DegreeOfMatch] = {}
        #: Memoized (requested, advertised) -> Wu-Palmer similarity; same
        #: lifetime as the degree cache. Similarity dominates per-candidate
        #: scoring cost (LCA + depth computations), and stores draw their
        #: concepts from a small vocabulary, so the pair space is tiny.
        self._similarity_cache: dict[tuple[str, str], float] = {}
        self._cached_version = reasoner.ontology.version

    def _sync(self) -> None:
        """One version check per query entry: drop memoized degrees when
        the ontology changed, and let the reasoner do the same."""
        version = self.reasoner.ontology.version
        if version != self._cached_version:
            self._degree_cache.clear()
            self._similarity_cache.clear()
            self._cached_version = version
        self.reasoner.sync()

    # -- concept-level degrees -------------------------------------------

    def concept_degree(self, requested: str, advertised: str) -> DegreeOfMatch:
        """Paolucci degree of ``advertised`` against ``requested``."""
        self._sync()
        return self._degree(requested, advertised)

    def _degree(self, requested: str, advertised: str) -> DegreeOfMatch:
        """Memoized degree; ``_sync`` must have run for the current query."""
        key = (requested, advertised)
        cached = self._degree_cache.get(key)
        if cached is None:
            cached = self._compute_degree(requested, advertised)
            self._degree_cache[key] = cached
        return cached

    def _compute_degree(self, requested: str, advertised: str) -> DegreeOfMatch:
        ontology = self.reasoner.ontology
        if requested not in ontology or advertised not in ontology:
            return DegreeOfMatch.FAIL
        if requested == advertised:
            return DegreeOfMatch.EXACT
        if advertised in ontology.parents(requested):
            # Requested is a direct subclass of advertised: treated as exact.
            return DegreeOfMatch.EXACT
        if self.reasoner.subsumes(advertised, requested):
            return DegreeOfMatch.PLUGIN
        if self.reasoner.subsumes(requested, advertised):
            return DegreeOfMatch.SUBSUMES
        return DegreeOfMatch.FAIL

    def _best_output_degree(self, requested: str, profile: ServiceProfile) -> DegreeOfMatch:
        """Best degree any advertised output achieves for one requested output."""
        best = DegreeOfMatch.FAIL
        for advertised in profile.outputs:
            degree = self._degree(requested, advertised)
            if degree > best:
                best = degree
                if best is DegreeOfMatch.EXACT:
                    break
        return best

    def _input_degree(self, profile: ServiceProfile, request: ServiceRequest) -> DegreeOfMatch:
        """Whether the client can feed every input the service requires.

        For each advertised input ``inA`` the client must provide some
        concept ``inR`` with ``inA`` subsuming ``inR`` (the service accepts
        anything at least as specific as what it asks for). Requests that
        declare no inputs are taken as unconstrained clients.
        """
        if not profile.inputs:
            return DegreeOfMatch.EXACT
        if not request.provided_inputs:
            return DegreeOfMatch.EXACT
        overall = DegreeOfMatch.EXACT
        for advertised in profile.inputs:
            best = DegreeOfMatch.FAIL
            for provided in request.provided_inputs:
                degree = self._degree(advertised, provided)
                if degree > best:
                    best = degree
                    if best is DegreeOfMatch.EXACT:
                        break
            overall = min(overall, best)
            if overall is DegreeOfMatch.FAIL:
                break
        return overall

    # -- profile-level matching ------------------------------------------

    def match(self, profile: ServiceProfile, request: ServiceRequest) -> MatchResult:
        """Evaluate one advertisement against one request."""
        self.evaluations += 1
        self._sync()

        failed = ()
        if request.qos_constraints:
            failed = tuple(
                constraint.attribute
                for constraint in request.qos_constraints
                if not constraint.satisfied_by(profile.qos_value(constraint.attribute))
            )
        if failed:
            return MatchResult(
                profile=profile,
                degree=DegreeOfMatch.FAIL,
                score=0.0,
                output_degree=DegreeOfMatch.FAIL,
                input_degree=DegreeOfMatch.FAIL,
                category_degree=DegreeOfMatch.FAIL,
                failed_constraints=failed,
            )

        if request.category is not None:
            category_degree = self._degree(request.category, profile.category)
        else:
            category_degree = DegreeOfMatch.EXACT

        if request.desired_outputs:
            output_degree = min(
                (self._best_output_degree(out, profile) for out in request.desired_outputs),
                default=DegreeOfMatch.FAIL,
            )
        else:
            output_degree = DegreeOfMatch.EXACT

        input_degree = self._input_degree(profile, request)

        overall = min(category_degree, output_degree, input_degree)
        # The QoS gate above already established every constraint holds, so
        # the satisfied ratio on the scoring path is 1.0 by construction —
        # pass it through instead of re-evaluating each constraint.
        score = self._score(profile, request, qos_ratio=1.0) \
            if overall > DegreeOfMatch.FAIL else 0.0
        return MatchResult(
            profile=profile,
            degree=overall,
            score=score,
            output_degree=output_degree,
            input_degree=input_degree,
            category_degree=category_degree,
        )

    def rank(
        self,
        profiles: list[ServiceProfile],
        request: ServiceRequest,
        *,
        limit: int | None = None,
    ) -> list[MatchResult]:
        """All matching profiles, best first, optionally capped at ``limit``.

        The cap implements the paper's registry-side *query response
        control*: constrained clients "delegate service selection to
        registry nodes (they may return only the best service
        advertisement)".
        """
        matched = (r for profile in profiles if (r := self.match(profile, request)).matched)
        if limit is not None:
            # Top-k selection: O(n log k) instead of a full O(n log n) sort.
            # ``nsmallest`` is stable (equivalent to ``sorted(...)[:k]``),
            # so capped results stay a prefix of the full ranking.
            return heapq.nsmallest(limit, matched, key=MatchResult.sort_key)
        return sorted(matched, key=MatchResult.sort_key)

    # -- scoring ----------------------------------------------------------

    def _similarity(self, requested: str, advertised: str) -> float:
        """Memoized Wu-Palmer similarity; ``_sync`` must already have run."""
        key = (requested, advertised)
        cached = self._similarity_cache.get(key)
        if cached is None:
            cached = self.reasoner.similarity(requested, advertised)
            self._similarity_cache[key] = cached
        return cached

    def _score(
        self,
        profile: ServiceProfile,
        request: ServiceRequest,
        *,
        qos_ratio: float = 1.0,
    ) -> float:
        """Tie-break score in [0, 1]: semantic similarity + QoS headroom.

        ``qos_ratio`` is the caller's already-known fraction of satisfied
        QoS constraints (``match`` only scores profiles that passed every
        constraint, so it passes 1.0).
        """
        parts: list[float] = []
        ontology = self.reasoner.ontology
        if request.category is not None and profile.category in ontology \
                and request.category in ontology:
            parts.append(self._similarity(request.category, profile.category))
        for requested in request.desired_outputs:
            if requested not in ontology:
                continue
            best = 0.0
            for advertised in profile.outputs:
                if advertised in ontology:
                    sim = self._similarity(requested, advertised)
                    if sim > best:
                        best = sim
            parts.append(best)
        if request.qos_constraints:
            parts.append(qos_ratio)
        if not parts:
            return 1.0
        return sum(parts) / len(parts)
