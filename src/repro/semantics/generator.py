"""Ontology and profile generators.

Two kinds of semantic models feed the experiments:

* Hand-written domain ontologies for the paper's two motivating scenarios:
  :func:`emergency_ontology` (the crisis-management example of §1) and
  :func:`battlefield_ontology` (the network-centric battlefield of the
  companion MILCOM paper, including its "a Radar is a kind of Sensor"
  example).
* Deterministic random ontologies (:class:`OntologyGenerator`) and service
  profiles/requests over them (:class:`ProfileGenerator`), used for
  parameter sweeps where the hierarchy shape must be controlled.

Random ontologies contain two disjoint subtrees under THING — service
categories (``gen:Service...``) and data concepts (``gen:Data...``) — so
that generated profiles draw categories and input/output concepts from the
appropriate vocabulary, as OWL-S profiles do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.semantics.matchmaker import DegreeOfMatch, Matchmaker
from repro.semantics.ontology import Ontology, THING
from repro.semantics.profiles import ServiceProfile, ServiceRequest

#: QoS attributes the generators draw from, with (low, high) value ranges.
QOS_ATTRIBUTES: dict[str, tuple[float, float]] = {
    "latency_ms": (5.0, 500.0),
    "coverage_km": (1.0, 100.0),
    "confidence": (0.5, 1.0),
    "update_rate_hz": (0.1, 10.0),
}


def emergency_ontology() -> Ontology:
    """The crisis-management ontology of the paper's §1 scenario.

    Multiple agencies (medical, fire, police, logistics) spontaneously
    form a network; their services and information products are organized
    under ``ems:Service`` and ``ems:Information``.
    """
    ont = Ontology("emergency")
    ont.add_subtree("ems:Service", {
        "ems:MedicalService": {
            "ems:TriageService": {},
            "ems:AmbulanceDispatchService": {},
            "ems:HospitalCapacityService": {},
            "ems:CasualtyTrackingService": {},
        },
        "ems:FireService": {
            "ems:FirePredictionService": {},
            "ems:HazmatAdvisoryService": {},
        },
        "ems:PoliceService": {
            "ems:PerimeterControlService": {},
            "ems:EvacuationRoutingService": {},
        },
        "ems:LogisticsService": {
            "ems:SupplyTrackingService": {},
            "ems:ShelterAllocationService": {},
            "ems:TransportBookingService": {},
        },
        "ems:InformationService": {
            "ems:MappingService": {
                "ems:SatelliteMappingService": {},
                "ems:DroneMappingService": {},
            },
            "ems:WeatherService": {},
            "ems:AlertingService": {},
            "ems:TranslationService": {},
        },
    })
    ont.add_subtree("ems:Information", {
        "ems:Location": {
            "ems:IncidentLocation": {},
            "ems:UnitLocation": {},
            "ems:ShelterLocation": {},
        },
        "ems:Report": {
            "ems:CasualtyReport": {},
            "ems:DamageReport": {},
            "ems:WeatherReport": {},
            "ems:HazmatReport": {},
        },
        "ems:Map": {
            "ems:RoadMap": {},
            "ems:FloodMap": {},
            "ems:ThermalMap": {},
        },
        "ems:Resource": {
            "ems:MedicalResource": {
                "ems:BloodSupply": {},
                "ems:HospitalBed": {},
            },
            "ems:Vehicle": {
                "ems:Ambulance": {},
                "ems:FireTruck": {},
                "ems:Helicopter": {},
            },
        },
        "ems:Alert": {
            "ems:EvacuationAlert": {},
            "ems:WeatherAlert": {},
        },
    })
    ont.add_property("ems:locatedAt", "ems:Resource", "ems:Location")
    ont.add_property("ems:covers", "ems:Map", "ems:Location")
    ont.add_property("ems:reports", "ems:Service", "ems:Report")
    return ont


def battlefield_ontology() -> Ontology:
    """The network-centric battlefield ontology (MILCOM companion paper).

    Includes the subsumption example used by the paper: "a Radar is a kind
    of Sensor".
    """
    ont = Ontology("battlefield")
    ont.add_subtree("ncw:Service", {
        "ncw:SensorService": {
            "ncw:RadarService": {
                "ncw:AirSurveillanceRadarService": {},
                "ncw:GroundSurveillanceRadarService": {},
            },
            "ncw:CameraService": {
                "ncw:IRCameraService": {},
                "ncw:TVCameraService": {},
            },
            "ncw:AcousticSensorService": {},
        },
        "ncw:TrackService": {
            "ncw:AirTrackService": {},
            "ncw:GroundTrackService": {},
            "ncw:SurfaceTrackService": {},
        },
        "ncw:C2Service": {
            "ncw:OrderDistributionService": {},
            "ncw:SituationAwarenessService": {},
            "ncw:BlueForceTrackingService": {},
        },
        "ncw:LogisticsService": {
            "ncw:FuelStatusService": {},
            "ncw:AmmunitionStatusService": {},
        },
        "ncw:CommunicationService": {
            "ncw:TacticalDataLinkService": {},
            "ncw:MessagingService": {},
        },
    })
    ont.add_subtree("ncw:Entity", {
        "ncw:Sensor": {
            "ncw:Radar": {
                "ncw:AirSurveillanceRadar": {},
                "ncw:GroundSurveillanceRadar": {},
            },
            "ncw:Camera": {
                "ncw:IRCamera": {},
                "ncw:TVCamera": {},
            },
            "ncw:AcousticSensor": {},
        },
        "ncw:Track": {
            "ncw:AirTrack": {},
            "ncw:GroundTrack": {},
            "ncw:SurfaceTrack": {},
        },
        "ncw:Unit": {
            "ncw:Platoon": {},
            "ncw:Company": {},
            "ncw:Battalion": {},
        },
        "ncw:Position": {
            "ncw:GridPosition": {},
            "ncw:GeodeticPosition": {},
        },
        "ncw:Order": {
            "ncw:MovementOrder": {},
            "ncw:FireOrder": {},
        },
    })
    ont.add_property("ncw:produces", "ncw:SensorService", "ncw:Track")
    ont.add_property("ncw:positionedAt", "ncw:Unit", "ncw:Position")
    return ont


class OntologyGenerator:
    """Deterministic random ontologies for parameter sweeps.

    Parameters
    ----------
    seed:
        Private RNG seed; the same seed always yields the same ontology.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def random_ontology(
        self,
        *,
        n_service_classes: int = 40,
        n_data_classes: int = 60,
        max_branching: int = 4,
        multi_parent_prob: float = 0.1,
    ) -> Ontology:
        """A random two-subtree ontology (service categories + data concepts).

        Each new class attaches under a uniformly chosen existing class of
        its subtree, bounded by ``max_branching``; with probability
        ``multi_parent_prob`` a second parent is added (keeping the DAG
        acyclic by construction since parents always precede children).
        """
        if n_service_classes < 1 or n_data_classes < 1:
            raise WorkloadError("ontologies need at least one class per subtree")
        ont = Ontology(f"generated-{self.rng.getrandbits(32):08x}")
        self._grow_subtree(ont, "gen:Service", "gen:Service", n_service_classes,
                           max_branching, multi_parent_prob)
        self._grow_subtree(ont, "gen:Data", "gen:Data", n_data_classes,
                           max_branching, multi_parent_prob)
        return ont

    def _grow_subtree(
        self,
        ont: Ontology,
        root: str,
        prefix: str,
        count: int,
        max_branching: int,
        multi_parent_prob: float,
    ) -> None:
        ont.add_class(root)
        members = [root]
        child_counts: dict[str, int] = {root: 0}
        for index in range(count):
            candidates = [m for m in members if child_counts[m] < max_branching]
            parent = self.rng.choice(candidates or members)
            uri = f"{prefix}{index}"
            parents = [parent]
            if len(members) > 2 and self.rng.random() < multi_parent_prob:
                extra = self.rng.choice(members)
                if extra not in parents:
                    parents.append(extra)
            ont.add_class(uri, parents=parents)
            for p in parents:
                child_counts[p] = child_counts.get(p, 0) + 1
            members.append(uri)
            child_counts[uri] = 0


@dataclass
class LabelledRequest:
    """A request plus the ground-truth set of relevant service names."""

    request: ServiceRequest
    relevant: frozenset[str]


class ProfileGenerator:
    """Random service profiles and requests over one ontology.

    The generator knows which subtree holds categories and which holds
    data concepts; for the hand-written ontologies those are the
    ``*:Service`` and non-service subtrees respectively.
    """

    def __init__(self, ontology: Ontology, seed: int = 0) -> None:
        self.ontology = ontology
        self.rng = random.Random(seed)
        roots = [c for c in ontology.classes()
                 if c != THING and THING in ontology.parents(c)]
        service_roots = [r for r in roots if "Service" in r]
        data_roots = [r for r in roots if r not in service_roots]
        if not service_roots or not data_roots:
            raise WorkloadError(
                f"ontology {ontology.name!r} lacks separate service/data subtrees"
            )
        self.category_pool = sorted(
            set().union(*(ontology.descendants(r) for r in service_roots)) | set(service_roots)
        )
        self.data_pool = sorted(
            set().union(*(ontology.descendants(r) for r in data_roots)) | set(data_roots)
        )

    # -- profiles ---------------------------------------------------------

    def random_profile(self, index: int, *, provider: str = "") -> ServiceProfile:
        """One random service profile named ``svc-{index}``."""
        category = self.rng.choice(self.category_pool)
        n_outputs = self.rng.randint(1, 3)
        n_inputs = self.rng.randint(0, 2)
        outputs = tuple(self.rng.sample(self.data_pool, min(n_outputs, len(self.data_pool))))
        inputs = tuple(self.rng.sample(self.data_pool, min(n_inputs, len(self.data_pool))))
        qos = {
            name: round(self.rng.uniform(low, high), 3)
            for name, (low, high) in QOS_ATTRIBUTES.items()
            if self.rng.random() < 0.75
        }
        return ServiceProfile.build(
            service_name=f"svc-{index}",
            category=category,
            inputs=inputs,
            outputs=outputs,
            qos=qos,
            provider=provider or f"provider-{index % 7}",
            text=f"Service {index} providing {' and '.join(outputs)}",
        )

    def profiles(self, count: int) -> list[ServiceProfile]:
        """``count`` random profiles, deterministically."""
        return [self.random_profile(i) for i in range(count)]

    # -- requests ---------------------------------------------------------

    def request_for(
        self,
        profile: ServiceProfile,
        *,
        generalize: int = 0,
        max_results: int | None = None,
    ) -> ServiceRequest:
        """A request the given profile should satisfy.

        ``generalize`` walks the profile's category and outputs ``n`` steps
        up the hierarchy, producing requests phrased in broader terms —
        the situation where semantic matching wins and string matching
        fails (experiment E5).
        """
        category = self._generalized(profile.category, generalize)
        outputs = tuple(self._generalized(c, generalize) for c in profile.outputs[:2])
        return ServiceRequest.build(
            category=category,
            outputs=outputs,
            max_results=max_results,
        )

    def random_request(self, *, max_results: int | None = None) -> ServiceRequest:
        """An unanchored random request."""
        category = self.rng.choice(self.category_pool)
        outputs = tuple(self.rng.sample(self.data_pool, self.rng.randint(1, 2)))
        return ServiceRequest.build(category=category, outputs=outputs, max_results=max_results)

    def _generalized(self, concept: str, steps: int) -> str:
        current = concept
        for _step in range(steps):
            parents = [p for p in self.ontology.parents(current) if p != THING]
            if not parents:
                break
            current = sorted(parents)[self.rng.randrange(len(parents))]
        return current

    # -- ground truth -------------------------------------------------------

    def labelled_requests(
        self,
        profiles: list[ServiceProfile],
        count: int,
        *,
        generalize: int = 1,
        min_degree: DegreeOfMatch = DegreeOfMatch.SUBSUMES,
    ) -> list[LabelledRequest]:
        """Requests anchored at random profiles, with ground-truth relevance.

        Ground truth is defined by the full-ontology matchmaker: a profile
        is relevant iff its degree of match is at least ``min_degree``.
        Syntactic baselines are then scored against this truth (E5).
        """
        from repro.semantics.reasoner import Reasoner

        matchmaker = Matchmaker(Reasoner(self.ontology))
        labelled = []
        for _ in range(count):
            anchor = self.rng.choice(profiles)
            request = self.request_for(anchor, generalize=generalize)
            relevant = frozenset(
                p.service_name
                for p in profiles
                if matchmaker.match(p, request).degree >= min_degree
            )
            labelled.append(LabelledRequest(request=request, relevant=relevant))
        return labelled
