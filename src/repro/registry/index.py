"""Inverted concept indexing for sub-linear semantic matchmaking.

A full store scan per query is the scalability ceiling of a centralized
semantic registry (the survey literature's standing criticism, and the
reason the paper wants registry-side selection to stay cheap). This module
prunes the scan: every stored semantic advertisement is indexed under its
category/output concepts *and their ancestor closure*, so a request's
desired concepts map straight to the plugin/subsumes-compatible candidate
set before any degree-of-match scoring runs.

Correctness contract (verified property-style in
``tests/test_registry_index.py`` and ``tests/test_query_path_properties.py``):
the candidate set is a **superset** of the advertisements the linear scan
would accept. Two concepts are related (degree > FAIL) only if one is an
ancestor-or-self of the other; indexing each advertised concept under its
ancestor-or-self closure and looking up the requested concept's
ancestor-or-self closure covers both directions:

* advertised at-or-below requested (EXACT/SUBSUMES) — the *closure* table
  keys every advertisement under its concepts' ancestor-or-self closure,
  so one lookup of the requested concept finds every advertisement
  advertising it or a descendant;
* advertised strictly above requested (EXACT-direct-parent/PLUGIN) — the
  *exact* table keys every advertisement under its own concepts only, so
  looking up the requested concept's ancestors finds precisely the
  advertisements advertising one of those more general concepts.

Splitting the two directions across two tables is what keeps the candidate
set tight: looking up ancestors in the closure table instead would drag in
every advertisement sharing a subtree root — a full scan in disguise.
THING would be a closure key on every advertisement (everything's
ancestor), so closure keys exclude it; an advertisement literally
advertising THING still carries THING as its exact key, and a request for
THING matches every indexed profile by construction.

Representation: each advertisement occupies a dense integer *slot*, and
posting lists are intersected as int **bitsets** over the slot space —
the per-field candidate pulls AND together (smallest posting first, with
early exit on empty), so selectivity multiplies across the requested
category and *every* desired output instead of being bounded by one
field. The same per-field table membership classifies every candidate
with its exact per-field degree, which :meth:`candidate_buckets` exposes
as descending **degree upper bounds** (the overall degree can only be
lowered further by input/QoS checks, never raised). The query evaluator
uses those bounds for bounded top-k early termination: buckets whose
upper bound can no longer crack the top k are never even enumerated.

The candidate set is concept-exact per field; residual false positives
(e.g. QoS-violating or input-incompatible profiles) are harmless because
the matchmaker still scores every candidate, so indexed and linear query
paths return bit-identical results. Requests carrying no concepts
(keyword-only templates) and non-profile payloads fall back to the linear
scan transparently.

The index is maintained incrementally on ``put``/``remove`` and rebuilt
lazily when the ontology's version counter moves or the ontology object is
swapped (mirroring ``Reasoner.sync``), so mid-run ontology growth — the
repository experiments do this — never yields stale candidates. Bulk
loads stay cheap because ancestor-closure keys are memoized per *concept*
(expanded once from the reasoner's closure bitsets), not recomputed per
advertisement, and the per-concept posting bitsets are materialized
lazily at query time and invalidated per key on mutation.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, Iterator, TYPE_CHECKING

from repro.semantics.ontology import THING
from repro.semantics.profiles import ServiceProfile, ServiceRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.descriptions.semantic import SemanticModel
    from repro.registry.advertisements import Advertisement


class ConceptIndexer(abc.ABC):
    """Store-side candidate pruning for one description model.

    The :class:`~repro.registry.store.AdvertisementStore` notifies an
    attached indexer on every mutation; the query evaluator asks it for
    candidate advertisement ids. Returning ``None`` from
    :meth:`candidate_ids` means "cannot prune this query" and routes the
    evaluator to the plain linear scan.
    """

    #: The description model whose advertisements this indexer covers.
    model_id: str = ""

    @abc.abstractmethod
    def add(self, ad: "Advertisement") -> None:
        """A record of this model entered the store (or was replaced)."""

    @abc.abstractmethod
    def discard(self, ad: "Advertisement") -> None:
        """A record of this model left the store."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Drop all index state (store cleared or index re-attached)."""

    @abc.abstractmethod
    def candidate_ids(self, query: Any) -> set[str] | None:
        """Superset of matching ad ids, or ``None`` to force a linear scan."""

    def candidate_buckets(self, query: Any) -> Iterator[tuple[int, list[str]]] | None:
        """Candidates grouped by descending match-degree upper bound.

        Yields ``(upper_bound, ad_ids)`` pairs with strictly descending
        bounds; the union of all groups must obey the same superset
        contract as :meth:`candidate_ids`, and no advertisement outside a
        group may ever match above that group's bound. ``None`` (the
        default) means the indexer cannot rank this query and the
        evaluator should fall back to unranked candidates.
        """
        return None


#: Table order used throughout: closure tables first, exact tables second.
_CATEGORY_CLOSURE, _OUTPUT_CLOSURE, _CATEGORY_EXACT, _OUTPUT_EXACT = range(4)


class SemanticConceptIndex(ConceptIndexer):
    """Inverted ancestor-closure index over semantic advertisements.

    Holds a reference to the node's :class:`SemanticModel` rather than a
    fixed ontology: the model may receive its ontology later (repository
    fetch, experiment E12) or swap it, and the index follows along by
    rebuilding on the next lookup.

    Indexable advertisements occupy dense integer slots; posting lists
    are ``set[int]`` of slots with lazily cached int-bitset form, so the
    per-query field combination is a handful of big-int AND/OR operations
    regardless of posting-list length. Freed slots are recycled, and every
    mutation invalidates exactly the posting bitsets it touched.
    """

    model_id = "semantic"

    def __init__(self, model: "SemanticModel") -> None:
        self._model = model
        #: ad_id -> profile for every indexable record (rebuild source).
        self._profiles: dict[str, ServiceProfile] = {}
        #: Records whose description is not a ServiceProfile; always kept
        #: in the candidate set so indexed evaluation sees exactly what a
        #: linear scan would.
        self._unindexable: set[str] = set()
        #: Dense slot space for indexable records.
        self._slot_of: dict[str, int] = {}
        self._ad_at: list[str | None] = []
        self._free_slots: list[int] = []
        #: Posting tables (see module doc), all mapping concept -> slots.
        self._tables: tuple[dict[str, set[int]], ...] = tuple({} for _ in range(4))
        #: ad_id -> per-table concept keys, for exact removal.
        self._keys: dict[str, tuple[tuple[str, ...], ...]] = {}
        #: concept -> ancestor-closure keys, shared across all ads using
        #: the concept (the bulk-put fix: closures expand once per concept
        #: per ontology version, not once per advertisement).
        self._closure_key_cache: dict[str, frozenset[str]] = {}
        #: (table, concept) -> posting bitset, built on first use and
        #: dropped whenever that posting list mutates.
        self._mask_cache: dict[tuple[int, str], int] = {}
        #: Bitset of every occupied slot; ``None`` marks it dirty.
        self._profiles_mask: int | None = 0
        self._indexed_ontology: Any = None
        self._indexed_version: int | None = None
        self.rebuilds = 0
        self.lookups = 0
        self.fallbacks = 0

    # -- store notifications ---------------------------------------------

    def add(self, ad: "Advertisement") -> None:
        description = ad.description
        self._forget(ad.ad_id)
        if not isinstance(description, ServiceProfile):
            self._unindexable.add(ad.ad_id)
            return
        self._profiles[ad.ad_id] = description
        slot = self._allocate_slot(ad.ad_id)
        if self._in_sync():
            self._insert_keys(ad.ad_id, slot, description)

    def discard(self, ad: "Advertisement") -> None:
        self._forget(ad.ad_id)

    def reset(self) -> None:
        self._profiles.clear()
        self._unindexable.clear()
        self._slot_of.clear()
        self._ad_at.clear()
        self._free_slots.clear()
        self._clear_tables()
        self._profiles_mask = 0
        self._indexed_ontology = None
        self._indexed_version = None

    def _forget(self, ad_id: str) -> None:
        """Drop every trace of one record (replacement or removal)."""
        self._unindexable.discard(ad_id)
        if self._profiles.pop(ad_id, None) is None:
            return
        self._drop_keys(ad_id)
        slot = self._slot_of.pop(ad_id)
        self._ad_at[slot] = None
        self._free_slots.append(slot)
        self._profiles_mask = None

    def _allocate_slot(self, ad_id: str) -> int:
        if self._free_slots:
            slot = self._free_slots.pop()
            self._ad_at[slot] = ad_id
        else:
            slot = len(self._ad_at)
            self._ad_at.append(ad_id)
        self._slot_of[ad_id] = slot
        self._profiles_mask = None
        return slot

    def _clear_tables(self) -> None:
        for table in self._tables:
            table.clear()
        self._keys.clear()
        self._closure_key_cache.clear()
        self._mask_cache.clear()

    # -- candidate lookup ------------------------------------------------

    def candidate_ids(self, query: Any) -> set[str] | None:
        """Ads plausibly matching ``query``, or ``None`` for linear scan.

        The result is the intersection of the per-concept candidate sets:
        the requested category (when given) must relate to the advertised
        category, and *every* desired output must relate to some advertised
        output — exactly the conditions under which the matchmaker can
        return a degree above FAIL.
        """
        masks = self._query_masks(query)
        if masks is None:
            return None
        found = set(self._ids_from_mask(masks[0] | masks[1] | masks[2]))
        if self._unindexable:
            found |= self._unindexable
        return found

    def candidate_buckets(self, query: Any) -> Iterator[tuple[int, list[str]]] | None:
        """Candidates in descending degree-upper-bound groups.

        The bound per group is the exact per-field degree implied by the
        posting tables (EXACT for the concept itself or a direct parent,
        PLUGIN for a farther ancestor, SUBSUMES for a descendant),
        minimized across the requested fields — a true upper bound on the
        overall degree, since input and QoS checks can only lower it.
        Unindexable records ride in the strongest group so they are always
        scored. Groups are enumerated lazily: a consumer that stops early
        never pays for expanding the weaker posting bitsets. Consume the
        iterator before the next store mutation.
        """
        masks = self._query_masks(query)
        if masks is None:
            return None

        def _groups() -> Iterator[tuple[int, list[str]]]:
            exact, plugin, subsumes = masks
            strongest = self._ids_from_mask(exact)
            if self._unindexable:
                strongest.extend(sorted(self._unindexable))
            if strongest:
                yield 3, strongest
            if plugin:
                yield 2, self._ids_from_mask(plugin)
            if subsumes:
                yield 1, self._ids_from_mask(subsumes)

        return _groups()

    def _query_masks(self, query: Any) -> tuple[int, int, int] | None:
        """Disjoint candidate bitsets by degree upper bound (3, 2, 1)."""
        if self._model.ontology is None or not isinstance(query, ServiceRequest):
            self.fallbacks += 1
            return None
        if query.category is None and not query.desired_outputs:
            # Keyword-only request: no concept to prune on.
            self.fallbacks += 1
            return None
        self._ensure_synced()
        reasoner = self._model.reasoner
        assert reasoner is not None
        reasoner.sync()
        self.lookups += 1
        fields = []
        if query.category is not None:
            fields.append(
                self._field_masks(_CATEGORY_CLOSURE, _CATEGORY_EXACT, query.category)
            )
        for requested in query.desired_outputs:
            fields.append(
                self._field_masks(_OUTPUT_CLOSURE, _OUTPUT_EXACT, requested)
            )
        # Cumulative per-field masks: degree >= 3 / >= 2 / >= 1, combined
        # smallest posting first so the intersection narrows fastest.
        cumulative = [(m3, m3 | m2, m3 | m2 | m1) for m3, m2, m1 in fields]
        cumulative.sort(key=lambda field: field[2].bit_count())
        at_least_3, at_least_2, at_least_1 = cumulative[0]
        for c3, c2, c1 in cumulative[1:]:
            if not at_least_1:
                break
            at_least_3 &= c3
            at_least_2 &= c2
            at_least_1 &= c1
        return (
            at_least_3,
            at_least_2 & ~at_least_3,
            at_least_1 & ~at_least_2,
        )

    def _field_masks(
        self, closure_table: int, exact_table: int, concept: str
    ) -> tuple[int, int, int]:
        """One field's posting bitsets, split by that field's exact degree.

        * EXACT (3): ads advertising ``concept`` itself or one of its
          *direct* parents (the matchmaker's direct-parent rule);
        * PLUGIN (2): ads advertising a farther strict ancestor;
        * SUBSUMES (1): ads advertising ``concept`` or a descendant (the
          closure posting; overlap with the stronger masks is removed by
          the caller's cumulative combination).

        Out-of-ontology concepts get empty postings — the matchmaker can
        never match them, so they must never make an ad a candidate.
        """
        reasoner = self._model.reasoner
        ontology = reasoner.ontology
        if concept not in ontology:
            return (0, 0, 0)
        if concept == THING:
            # Only a literal THING advertisement is EXACT for a THING
            # request; every other indexed profile relates at SUBSUMES.
            return (self._mask(exact_table, THING), 0, self._all_profiles_mask())
        parents = ontology.parents(concept)
        exact = self._mask(exact_table, concept)
        for parent in parents:
            exact |= self._mask(exact_table, parent)
        plugin = 0
        for ancestor in reasoner.ancestors_of(concept):
            if ancestor not in parents:
                plugin |= self._mask(exact_table, ancestor)
        return (exact, plugin, self._mask(closure_table, concept))

    def _mask(self, table: int, concept: str) -> int:
        """Posting bitset for one (table, concept) key, lazily cached."""
        key = (table, concept)
        cached = self._mask_cache.get(key)
        if cached is None:
            cached = self._bits_of(self._tables[table].get(concept, ()))
            self._mask_cache[key] = cached
        return cached

    def _all_profiles_mask(self) -> int:
        """Bitset of every occupied slot, rebuilt only when dirtied."""
        if self._profiles_mask is None:
            self._profiles_mask = self._bits_of(self._slot_of.values())
        return self._profiles_mask

    def _bits_of(self, slots: Iterable[int]) -> int:
        """Build a bitset from slot numbers in O(slots + space/8)."""
        buf = bytearray(len(self._ad_at) // 8 + 1)
        for slot in slots:
            buf[slot >> 3] |= 1 << (slot & 7)
        return int.from_bytes(buf, "little")

    def _ids_from_mask(self, bits: int) -> list[str]:
        """Expand a slot bitset to ad ids (ascending slot order)."""
        ad_at = self._ad_at
        found = []
        while bits:
            low = bits & -bits
            found.append(ad_at[low.bit_length() - 1])
            bits ^= low
        return found

    # -- maintenance -----------------------------------------------------

    def _in_sync(self) -> bool:
        ontology = self._model.ontology
        return (
            ontology is not None
            and self._indexed_ontology is ontology
            and self._indexed_version == ontology.version
        )

    def _ensure_synced(self) -> None:
        """Rebuild the concept maps if the ontology moved underneath us."""
        if self._in_sync():
            return
        ontology = self._model.ontology
        self._clear_tables()
        self._indexed_ontology = ontology
        self._indexed_version = ontology.version
        self.rebuilds += 1
        slot_of = self._slot_of
        for ad_id, profile in self._profiles.items():
            self._insert_keys(ad_id, slot_of[ad_id], profile)

    def _insert_keys(self, ad_id: str, slot: int, profile: ServiceProfile) -> None:
        ontology = self._model.ontology
        per_table = (
            tuple(self._closure_keys(profile.category)),
            tuple(
                key
                for output in profile.outputs
                for key in self._closure_keys(output)
            ),
            (profile.category,) if profile.category in ontology else (),
            tuple(o for o in profile.outputs if o in ontology),
        )
        self._keys[ad_id] = per_table
        mask_cache = self._mask_cache
        for table_id, keys in enumerate(per_table):
            table = self._tables[table_id]
            for key in keys:
                bucket = table.get(key)
                if bucket is None:
                    table[key] = bucket = set()
                bucket.add(slot)
                mask_cache.pop((table_id, key), None)

    def _closure_keys(self, concept: str) -> frozenset[str]:
        """Ancestor-or-self keys for one advertised concept, memoized.

        Expanded from the reasoner's closure bitset. Out-of-ontology
        concepts get no keys. THING is kept only when it *is* the
        advertised concept (see module doc).
        """
        cached = self._closure_key_cache.get(concept)
        if cached is None:
            reasoner = self._model.reasoner
            ontology = reasoner.ontology
            if concept not in ontology:
                cached = frozenset()
            elif concept == THING:
                cached = frozenset((THING,))
            else:
                # THING holds concept id 0 in every ontology; drop its bit
                # so it never becomes a closure key.
                bits = reasoner.closure_bits(concept) & ~1
                cached = frozenset(ontology.uris_from_bits(bits))
            self._closure_key_cache[concept] = cached
        return cached

    def _drop_keys(self, ad_id: str) -> None:
        per_table = self._keys.pop(ad_id, None)
        if per_table is None:
            return
        slot = self._slot_of[ad_id]
        mask_cache = self._mask_cache
        for table_id, keys in enumerate(per_table):
            table = self._tables[table_id]
            for key in keys:
                bucket = table.get(key)
                if bucket is not None:
                    bucket.discard(slot)
                    if not bucket:
                        del table[key]
                mask_cache.pop((table_id, key), None)
