"""Inverted concept indexing for sub-linear semantic matchmaking.

A full store scan per query is the scalability ceiling of a centralized
semantic registry (the survey literature's standing criticism, and the
reason the paper wants registry-side selection to stay cheap). This module
prunes the scan: every stored semantic advertisement is indexed under its
category/output concepts *and their ancestor closure*, so a request's
desired concepts map straight to the plugin/subsumes-compatible candidate
set before any degree-of-match scoring runs.

Correctness contract (verified property-style in
``tests/test_registry_index.py``): the candidate set is a **superset** of
the advertisements the linear scan would accept. Two concepts are related
(degree > FAIL) only if one is an ancestor-or-self of the other; indexing
each advertised concept under its ancestor-or-self closure and looking up
the requested concept's ancestor-or-self closure covers both directions:

* advertised at-or-below requested (EXACT/SUBSUMES) — the *closure* table
  keys every advertisement under its concepts' ancestor-or-self closure,
  so one lookup of the requested concept finds every advertisement
  advertising it or a descendant;
* advertised strictly above requested (EXACT-direct-parent/PLUGIN) — the
  *exact* table keys every advertisement under its own concepts only, so
  looking up the requested concept's ancestors finds precisely the
  advertisements advertising one of those more general concepts.

Splitting the two directions across two tables is what keeps the candidate
set tight: looking up ancestors in the closure table instead would drag in
every advertisement sharing a subtree root — a full scan in disguise.
THING would be a closure key on every advertisement (everything's
ancestor), so closure keys exclude it; an advertisement literally
advertising THING still carries THING as its exact key, and a request for
THING matches every indexed profile by construction.

The candidate set is concept-exact per field; residual false positives
(e.g. QoS-violating or input-incompatible profiles) are harmless because
the matchmaker still scores every candidate, so indexed and linear query
paths return bit-identical results. Requests carrying no concepts
(keyword-only templates) and non-profile payloads fall back to the linear
scan transparently.

The index is maintained incrementally on ``put``/``remove`` and rebuilt
lazily when the ontology's version counter moves or the ontology object is
swapped (mirroring ``Reasoner.sync``), so mid-run ontology growth — the
repository experiments do this — never yields stale candidates.
"""

from __future__ import annotations

import abc
from typing import Any, TYPE_CHECKING

from repro.semantics.ontology import THING
from repro.semantics.profiles import ServiceProfile, ServiceRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.descriptions.semantic import SemanticModel
    from repro.registry.advertisements import Advertisement


class ConceptIndexer(abc.ABC):
    """Store-side candidate pruning for one description model.

    The :class:`~repro.registry.store.AdvertisementStore` notifies an
    attached indexer on every mutation; the query evaluator asks it for
    candidate advertisement ids. Returning ``None`` from
    :meth:`candidate_ids` means "cannot prune this query" and routes the
    evaluator to the plain linear scan.
    """

    #: The description model whose advertisements this indexer covers.
    model_id: str = ""

    @abc.abstractmethod
    def add(self, ad: "Advertisement") -> None:
        """A record of this model entered the store (or was replaced)."""

    @abc.abstractmethod
    def discard(self, ad: "Advertisement") -> None:
        """A record of this model left the store."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Drop all index state (store cleared or index re-attached)."""

    @abc.abstractmethod
    def candidate_ids(self, query: Any) -> set[str] | None:
        """Superset of matching ad ids, or ``None`` to force a linear scan."""


class SemanticConceptIndex(ConceptIndexer):
    """Inverted ancestor-closure index over semantic advertisements.

    Holds a reference to the node's :class:`SemanticModel` rather than a
    fixed ontology: the model may receive its ontology later (repository
    fetch, experiment E12) or swap it, and the index follows along by
    rebuilding on the next lookup.
    """

    model_id = "semantic"

    def __init__(self, model: "SemanticModel") -> None:
        self._model = model
        #: ad_id -> profile for every indexable record (rebuild source).
        self._profiles: dict[str, ServiceProfile] = {}
        #: Records whose description is not a ServiceProfile; always kept
        #: in the candidate set so indexed evaluation sees exactly what a
        #: linear scan would.
        self._unindexable: set[str] = set()
        #: Closure tables: concept -> ad ids advertising it *or a
        #: descendant* in that field (the EXACT/SUBSUMES direction).
        self._category_closure: dict[str, set[str]] = {}
        self._output_closure: dict[str, set[str]] = {}
        #: Exact tables: concept -> ad ids advertising precisely it
        #: (looked up via requested-concept ancestors: the PLUGIN direction).
        self._category_exact: dict[str, set[str]] = {}
        self._output_exact: dict[str, set[str]] = {}
        #: ad_id -> keys per table, for exact removal.
        self._keys: dict[str, tuple[frozenset[str], ...]] = {}
        self._indexed_ontology: Any = None
        self._indexed_version: int | None = None
        self.rebuilds = 0
        self.lookups = 0
        self.fallbacks = 0

    # -- store notifications ---------------------------------------------

    def add(self, ad: "Advertisement") -> None:
        description = ad.description
        self._drop_keys(ad.ad_id)
        if not isinstance(description, ServiceProfile):
            self._profiles.pop(ad.ad_id, None)
            self._unindexable.add(ad.ad_id)
            return
        self._unindexable.discard(ad.ad_id)
        self._profiles[ad.ad_id] = description
        if self._in_sync():
            self._insert_keys(ad.ad_id, description)

    def discard(self, ad: "Advertisement") -> None:
        self._profiles.pop(ad.ad_id, None)
        self._unindexable.discard(ad.ad_id)
        self._drop_keys(ad.ad_id)

    def reset(self) -> None:
        self._profiles.clear()
        self._unindexable.clear()
        self._clear_tables()
        self._indexed_ontology = None
        self._indexed_version = None

    def _tables(self) -> tuple[dict[str, set[str]], ...]:
        return (self._category_closure, self._output_closure,
                self._category_exact, self._output_exact)

    def _clear_tables(self) -> None:
        for table in self._tables():
            table.clear()
        self._keys.clear()

    # -- candidate lookup ------------------------------------------------

    def candidate_ids(self, query: Any) -> set[str] | None:
        """Ads plausibly matching ``query``, or ``None`` for linear scan.

        The result is the intersection of the per-concept candidate sets:
        the requested category (when given) must relate to the advertised
        category, and *every* desired output must relate to some advertised
        output — exactly the conditions under which the matchmaker can
        return a degree above FAIL.
        """
        if self._model.ontology is None or not isinstance(query, ServiceRequest):
            self.fallbacks += 1
            return None
        if query.category is None and not query.desired_outputs:
            # Keyword-only request: no concept to prune on.
            self.fallbacks += 1
            return None
        self._ensure_synced()
        reasoner = self._model.reasoner
        assert reasoner is not None
        reasoner.sync()
        self.lookups += 1
        pruned: set[str] | None = None
        if query.category is not None:
            pruned = self._lookup(
                self._category_closure, self._category_exact, query.category
            )
        for requested in query.desired_outputs:
            if pruned is not None and not pruned:
                break
            found = self._lookup(self._output_closure, self._output_exact, requested)
            pruned = found if pruned is None else pruned & found
        assert pruned is not None
        if self._unindexable:
            pruned = pruned | self._unindexable
        return pruned

    def _lookup(
        self,
        closure_table: dict[str, set[str]],
        exact_table: dict[str, set[str]],
        concept: str,
    ) -> set[str]:
        """Ids of ads advertising a concept related to ``concept``.

        Ads advertising ``concept`` or a descendant come from one closure
        lookup; ads advertising a strict ancestor come from exact lookups
        along the requested concept's ancestor chain.
        """
        reasoner = self._model.reasoner
        ontology = reasoner.ontology
        if concept not in ontology:
            return set()
        if concept == THING:
            # THING subsumes every advertised concept: all profiles relate.
            return set(self._profiles)
        found = set(closure_table.get(concept, ()))
        for ancestor in reasoner.ancestors_of(concept):
            bucket = exact_table.get(ancestor)
            if bucket:
                found |= bucket
        return found

    # -- maintenance -----------------------------------------------------

    def _in_sync(self) -> bool:
        ontology = self._model.ontology
        return (
            ontology is not None
            and self._indexed_ontology is ontology
            and self._indexed_version == ontology.version
        )

    def _ensure_synced(self) -> None:
        """Rebuild the concept maps if the ontology moved underneath us."""
        if self._in_sync():
            return
        ontology = self._model.ontology
        self._clear_tables()
        self._indexed_ontology = ontology
        self._indexed_version = ontology.version
        self.rebuilds += 1
        for ad_id, profile in self._profiles.items():
            self._insert_keys(ad_id, profile)

    def _insert_keys(self, ad_id: str, profile: ServiceProfile) -> None:
        ontology = self._model.ontology
        category_closure = self._closure_keys(profile.category)
        category_exact = frozenset(
            {profile.category} if profile.category in ontology else ()
        )
        output_closure: set[str] = set()
        for output in profile.outputs:
            output_closure |= self._closure_keys(output)
        output_exact = frozenset(o for o in profile.outputs if o in ontology)
        per_table = (category_closure, frozenset(output_closure),
                     category_exact, output_exact)
        self._keys[ad_id] = per_table
        for table, keys in zip(self._tables(), per_table):
            for key in keys:
                table.setdefault(key, set()).add(ad_id)

    def _closure_keys(self, concept: str) -> frozenset[str]:
        """Ancestor-or-self keys for one advertised concept.

        Out-of-ontology concepts get no keys — the matchmaker can never
        match them, so they must never make an ad a candidate. THING is
        kept only when it *is* the advertised concept (see module doc).
        """
        reasoner = self._model.reasoner
        if concept not in reasoner.ontology:
            return frozenset()
        return frozenset(
            {concept, *(a for a in reasoner.ancestors_of(concept) if a != THING)}
        )

    def _drop_keys(self, ad_id: str) -> None:
        per_table = self._keys.pop(ad_id, None)
        if per_table is None:
            return
        for table, keys in zip(self._tables(), per_table):
            for key in keys:
                bucket = table.get(key)
                if bucket is not None:
                    bucket.discard(ad_id)
                    if not bucket:
                        del table[key]
