"""Registry information model (RIM).

"Often, registry technologies have their own Registry Information Model,
or RIM … An agreed-upon taxonomy of service types can be registered with
some of the registry technologies."

Our RIM is deliberately thin — the paper argues *against* forcing service
descriptions through RIM fields ("the registry cannot assist in
fine-grained service matching, since it does not know the meaning of the
custom fields") — so it holds only what the registry itself must know:

* which description models it supports (the plug-ins),
* which taxonomies/ontologies have been uploaded to it (§4.6 repository),
* operational statistics exposed to peers during registry signalling
  ("capacity and statistics reports" in the protocol-profiling list).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.semantics.ontology import Ontology


@dataclass(frozen=True)
class RegistryDescription:
    """The self-description a registry shares with clients and peers.

    ``artifact_names`` advertises the repository content (§4.6) so peers
    lacking an ontology know where to fetch it from.
    """

    registry_id: str
    lan_name: str
    supported_models: tuple[str, ...]
    advertisement_count: int
    neighbor_count: int
    artifact_names: tuple[str, ...] = ()
    #: Content summary: index terms of stored advertisements (§4.9 —
    #: "summary information about the advertisements present in a
    #: registry"). Empty when summaries are disabled.
    summary_terms: tuple[str, ...] = ()
    #: When this snapshot was taken (simulated time); gossip keeps the
    #: freshest snapshot per registry.
    issued_at: float = 0.0
    #: Consistent-hash ring identity (sharded federation): the id whose
    #: virtual-node positions this registry occupies. Empty when sharding
    #: is off (and then contributes zero bytes); differs from
    #: ``registry_id`` only for a promoted warm standby, which inherits
    #: the dead registry's positions.
    ring_id: str = ""

    def size_bytes(self) -> int:
        return (
            len(self.registry_id) + len(self.lan_name)
            + sum(len(m) + 8 for m in self.supported_models)
            + sum(len(a) + 8 for a in self.artifact_names)
            + sum(len(t) + 8 for t in self.summary_terms)
            + len(self.ring_id) + 32
        )


@dataclass
class RegistryInfoModel:
    """Mutable registry-side RIM: taxonomies, capabilities, statistics."""

    registry_id: str
    lan_name: str
    supported_models: list[str] = field(default_factory=list)
    taxonomies: dict[str, Ontology] = field(default_factory=dict)
    publishes: int = 0
    renews: int = 0
    removals: int = 0
    queries_served: int = 0
    queries_forwarded: int = 0

    def register_taxonomy(self, ontology: Ontology) -> None:
        """Upload a service taxonomy/ontology to this registry (§4.6)."""
        self.taxonomies[ontology.name] = ontology

    def taxonomy(self, name: str) -> Ontology | None:
        """A previously uploaded taxonomy, or ``None``."""
        return self.taxonomies.get(name)

    def describe(self, *, advertisement_count: int, neighbor_count: int,
                 artifact_names: tuple[str, ...] = (),
                 summary_terms: tuple[str, ...] = (),
                 issued_at: float = 0.0,
                 ring_id: str = "") -> RegistryDescription:
        """A snapshot suitable for beacons and signalling messages."""
        return RegistryDescription(
            registry_id=self.registry_id,
            lan_name=self.lan_name,
            supported_models=tuple(sorted(self.supported_models)),
            advertisement_count=advertisement_count,
            neighbor_count=neighbor_count,
            artifact_names=artifact_names,
            summary_terms=summary_terms,
            issued_at=issued_at,
            ring_id=ring_id,
        )

    def stats(self) -> dict[str, int]:
        """Operational counters (for experiment tables and signalling)."""
        return {
            "publishes": self.publishes,
            "renews": self.renews,
            "removals": self.removals,
            "queries_served": self.queries_served,
            "queries_forwarded": self.queries_forwarded,
        }
