"""Query evaluation over the store, with response control.

The evaluator is where the paper's "opportunity to allow service selection
support in registries … to relieve constrained clients" lives: it
dispatches a query payload to its description model, scores every stored
advertisement of that model, and returns the best hits — capped when the
query carries a ``max_results`` header (query response control, §3).

Two optimizations keep the scored set far below the candidate set while
returning bit-identical results:

* **QoS pre-filter** — before any semantic scoring, each candidate is
  offered to the model's cheap :meth:`~repro.descriptions.base.DescriptionModel.prefilter`;
  an advertisement that cannot satisfy the request's hard QoS constraints
  would evaluate to FAIL anyway, so rejecting it early never changes the
  hit list.
* **Bounded top-k early termination** — when the query carries
  ``max_results`` and the store can rank candidates by degree upper bound
  (:meth:`~repro.registry.store.AdvertisementStore.ranked_candidates`),
  candidates are scored strongest-group first and scoring stops as soon
  as the k-th best hit's degree strictly exceeds the next group's bound:
  no unscored advertisement can then displace any of the top k, so the
  capped ranking equals the exhaustive one bit for bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterator

from repro.descriptions.base import DescriptionModel, ModelRegistry
from repro.registry.advertisements import Advertisement
from repro.registry.store import AdvertisementStore


@dataclass(frozen=True, slots=True)
class QueryHit:
    """One matching advertisement with its rank information."""

    advertisement: Advertisement
    degree: int
    score: float

    def sort_key(self) -> tuple:
        """Descending-quality ordering; UUID breaks ties deterministically."""
        return (-self.degree, -self.score, self.advertisement.ad_id)

    def size_bytes(self) -> int:
        """A hit on the wire is the full advertisement plus rank fields."""
        return self.advertisement.size_bytes() + 16


class QueryEvaluator:
    """Evaluates model-typed queries against an advertisement store.

    At construction the evaluator attaches each model's concept indexer
    (when the model provides one) to the store, so queries are scored only
    against index-pruned candidate sets; models without an indexer — and
    queries an indexer cannot prune — take the linear scan, with
    bit-identical results either way. Set ``use_indexes=False`` to force
    linear scans everywhere (the benchmark baseline).
    """

    def __init__(
        self,
        store: AdvertisementStore,
        models: ModelRegistry,
        *,
        use_indexes: bool = True,
    ) -> None:
        self.store = store
        self.models = models
        self.queries_evaluated = 0
        self.queries_discarded = 0
        #: Stored descriptions actually scored, across all queries — the
        #: number a concept index exists to shrink.
        self.descriptions_evaluated = 0
        #: Candidates rejected by the model's QoS pre-filter before any
        #: semantic scoring (they would have evaluated to FAIL).
        self.prefiltered = 0
        #: Queries whose top-k settled before every candidate was scored.
        self.early_terminations = 0
        if use_indexes:
            for model_id in models.model_ids():
                indexer = models.get(model_id).make_index()
                if indexer is not None:
                    store.attach_index(indexer)

    def evaluate(
        self,
        model_id: str | None,
        query: Any,
        *,
        max_results: int | None = None,
    ) -> list[QueryHit]:
        """All matching advertisements for ``query``, best first.

        Queries in unsupported models are silently discarded (counted) —
        "nodes quickly filter and silently discard messages they cannot
        understand anyway". ``max_results`` of ``None`` returns every
        match (the no-response-control configuration).
        """
        model = self.models.get_or_discard(model_id)
        if model is None or not model.can_evaluate():
            self.queries_discarded += 1
            return []
        self.queries_evaluated += 1
        if max_results is not None:
            ranked = self.store.ranked_candidates(model.model_id, query)
            if ranked is not None:
                return self._evaluate_top_k(model, query, ranked, max_results)
        hits = []
        for ad in self.store.candidates(model.model_id, query):
            self.descriptions_evaluated += 1
            if not model.prefilter(ad.description, query):
                self.prefiltered += 1
                continue
            verdict = model.evaluate(ad.description, query)
            if verdict.matched:
                hits.append(QueryHit(advertisement=ad, degree=verdict.degree,
                                     score=verdict.score))
        if max_results is not None:
            # Top-k selection (O(n log k)); ``nsmallest`` is stable, so
            # this is exactly the full sort's prefix.
            return heapq.nsmallest(max_results, hits, key=QueryHit.sort_key)
        hits.sort(key=QueryHit.sort_key)
        return hits

    def _evaluate_top_k(
        self,
        model: DescriptionModel,
        query: Any,
        ranked: Iterator[tuple[int, list[Advertisement]]],
        max_results: int,
    ) -> list[QueryHit]:
        """Score ranked candidate groups until the top-k cannot change.

        Groups arrive in strictly descending degree-upper-bound order, so
        once ``max_results`` hits hold a degree strictly above the next
        group's bound, every unscored candidate ranks below all of them
        (the sort key compares degree first) and scoring stops. Hits are
        deterministic per (advertisement, query), so the capped ranking is
        bit-identical to exhaustively scoring every candidate.
        """
        hits: list[QueryHit] = []
        for upper_bound, ads in ranked:
            if len(hits) >= max_results and sum(
                1 for hit in hits if hit.degree > upper_bound
            ) >= max_results:
                self.early_terminations += 1
                break
            for ad in ads:
                self.descriptions_evaluated += 1
                if not model.prefilter(ad.description, query):
                    self.prefiltered += 1
                    continue
                verdict = model.evaluate(ad.description, query)
                if verdict.matched:
                    hits.append(QueryHit(advertisement=ad, degree=verdict.degree,
                                         score=verdict.score))
        return heapq.nsmallest(max_results, hits, key=QueryHit.sort_key)

    @staticmethod
    def merge(
        batches: list[list[QueryHit]],
        *,
        max_results: int | None = None,
    ) -> list[QueryHit]:
        """Merge hit lists from several registries, de-duplicating by UUID.

        The paper: UUIDs "could also be used to correlate query responses
        received from different registry nodes with a registry node's own
        results." The highest-ranked copy of each advertisement wins.
        """
        best: dict[str, QueryHit] = {}
        for batch in batches:
            for hit in batch:
                ad_id = hit.advertisement.ad_id
                current = best.get(ad_id)
                if current is None or hit.sort_key() < current.sort_key():
                    best[ad_id] = hit
        merged = sorted(best.values(), key=QueryHit.sort_key)
        if max_results is not None:
            merged = merged[:max_results]
        return merged
