"""Query evaluation over the store, with response control.

The evaluator is where the paper's "opportunity to allow service selection
support in registries … to relieve constrained clients" lives: it
dispatches a query payload to its description model, scores every stored
advertisement of that model, and returns the best hits — capped when the
query carries a ``max_results`` header (query response control, §3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

from repro.descriptions.base import ModelRegistry
from repro.registry.advertisements import Advertisement
from repro.registry.store import AdvertisementStore


@dataclass(frozen=True)
class QueryHit:
    """One matching advertisement with its rank information."""

    advertisement: Advertisement
    degree: int
    score: float

    def sort_key(self) -> tuple:
        """Descending-quality ordering; UUID breaks ties deterministically."""
        return (-self.degree, -self.score, self.advertisement.ad_id)

    def size_bytes(self) -> int:
        """A hit on the wire is the full advertisement plus rank fields."""
        return self.advertisement.size_bytes() + 16


class QueryEvaluator:
    """Evaluates model-typed queries against an advertisement store.

    At construction the evaluator attaches each model's concept indexer
    (when the model provides one) to the store, so queries are scored only
    against index-pruned candidate sets; models without an indexer — and
    queries an indexer cannot prune — take the linear scan, with
    bit-identical results either way. Set ``use_indexes=False`` to force
    linear scans everywhere (the benchmark baseline).
    """

    def __init__(
        self,
        store: AdvertisementStore,
        models: ModelRegistry,
        *,
        use_indexes: bool = True,
    ) -> None:
        self.store = store
        self.models = models
        self.queries_evaluated = 0
        self.queries_discarded = 0
        #: Stored descriptions actually scored, across all queries — the
        #: number a concept index exists to shrink.
        self.descriptions_evaluated = 0
        if use_indexes:
            for model_id in models.model_ids():
                indexer = models.get(model_id).make_index()
                if indexer is not None:
                    store.attach_index(indexer)

    def evaluate(
        self,
        model_id: str | None,
        query: Any,
        *,
        max_results: int | None = None,
    ) -> list[QueryHit]:
        """All matching advertisements for ``query``, best first.

        Queries in unsupported models are silently discarded (counted) —
        "nodes quickly filter and silently discard messages they cannot
        understand anyway". ``max_results`` of ``None`` returns every
        match (the no-response-control configuration).
        """
        model = self.models.get_or_discard(model_id)
        if model is None or not model.can_evaluate():
            self.queries_discarded += 1
            return []
        self.queries_evaluated += 1
        hits = []
        for ad in self.store.candidates(model.model_id, query):
            self.descriptions_evaluated += 1
            verdict = model.evaluate(ad.description, query)
            if verdict.matched:
                hits.append(QueryHit(advertisement=ad, degree=verdict.degree,
                                     score=verdict.score))
        if max_results is not None:
            # Top-k selection (O(n log k)); ``nsmallest`` is stable, so
            # this is exactly the full sort's prefix.
            return heapq.nsmallest(max_results, hits, key=QueryHit.sort_key)
        hits.sort(key=QueryHit.sort_key)
        return hits

    @staticmethod
    def merge(
        batches: list[list[QueryHit]],
        *,
        max_results: int | None = None,
    ) -> list[QueryHit]:
        """Merge hit lists from several registries, de-duplicating by UUID.

        The paper: UUIDs "could also be used to correlate query responses
        received from different registry nodes with a registry node's own
        results." The highest-ranked copy of each advertisement wins.
        """
        best: dict[str, QueryHit] = {}
        for batch in batches:
            for hit in batch:
                ad_id = hit.advertisement.ad_id
                current = best.get(ad_id)
                if current is None or hit.sort_key() < current.sort_key():
                    best[ad_id] = hit
        merged = sorted(best.values(), key=QueryHit.sort_key)
        if max_results is not None:
            merged = merged[:max_results]
        return merged
