"""Registry internals: advertisement storage, leases, and query evaluation.

These are the pieces inside every registry node (and the baselines):

* :class:`~repro.registry.advertisements.Advertisement` — a stored
  description with a UUID, endpoint, model id, and lease linkage. The
  UUID convention follows the paper: "a unique identification convention
  … would be needed in order to reference published advertisements when
  updating information, renewing leases, and removing advertisements."
* :class:`~repro.registry.store.AdvertisementStore` — the registry's
  content, indexed by UUID, owning service node, and description model.
* :class:`~repro.registry.index.SemanticConceptIndex` — the inverted
  ancestor-closure concept index that prunes semantic queries to their
  plugin/subsumes-compatible candidates before any scoring.
* :class:`~repro.registry.leases.LeaseManager` — the aliveness mechanism
  (§4.8): advertisements expire unless their service node renews.
* :class:`~repro.registry.matching.QueryEvaluator` — dispatches queries
  to the right description model and applies query response control.
* :class:`~repro.registry.rim.RegistryInfoModel` — what the registry
  knows about itself and exposes to peers (supported models, taxonomies,
  statistics).
"""

from repro.registry.advertisements import Advertisement, new_uuid
from repro.registry.index import ConceptIndexer, SemanticConceptIndex
from repro.registry.leases import Lease, LeaseManager
from repro.registry.matching import QueryEvaluator, QueryHit
from repro.registry.rim import RegistryInfoModel
from repro.registry.store import AdvertisementStore

__all__ = [
    "Advertisement",
    "AdvertisementStore",
    "ConceptIndexer",
    "Lease",
    "LeaseManager",
    "QueryEvaluator",
    "QueryHit",
    "RegistryInfoModel",
    "SemanticConceptIndex",
    "new_uuid",
]
