"""Leases: the aliveness mechanism.

"Typically, the provider of a service obtains a lease when publishing its
service description to the registry. From then on, the provider must
periodically confirm that it is alive. Should a service crash, it would
not be able to renew its lease, and the service description would be
purged from the registry." (§4.8; mechanism as in Jini and JXTA.)

The :class:`LeaseManager` is pure bookkeeping over an injected clock (the
simulator's ``now``), so it is unit-testable without a network. The
registry node wires :meth:`expired_ads` to a periodic purge task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import LeaseError
from repro.registry.advertisements import new_uuid

#: Default advertisement lease duration in seconds. Configurable per
#: deployment — the paper lists "the advertisement lease period" among the
#: parameters that "could even be made configurable on an individual
#: deployment basis".
DEFAULT_LEASE_DURATION = 60.0


@dataclass
class Lease:
    """One granted lease binding an advertisement to an expiry time."""

    lease_id: str
    ad_id: str
    duration: float
    expires_at: float
    renewals: int = 0

    def expired(self, now: float) -> bool:
        """Whether the lease has lapsed at time ``now``."""
        return now >= self.expires_at


class LeaseManager:
    """Grants, renews, and expires advertisement leases.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time (``sim.now``).
    default_duration:
        Lease length granted when the publisher does not ask for one.
    on_event:
        Optional observer called with ``(kind, lease)`` on every lease
        lifecycle transition: ``"grant"``, ``"renew"``, ``"expire"``,
        ``"cancel"``, ``"restore"`` (crash recovery). The registry wires
        this to its metrics/trace hooks.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        default_duration: float = DEFAULT_LEASE_DURATION,
        on_event: Callable[[str, Lease], None] | None = None,
    ) -> None:
        if default_duration <= 0:
            raise LeaseError(f"lease duration must be positive, got {default_duration}")
        self.clock = clock
        self.default_duration = default_duration
        self.on_event = on_event
        self._by_lease: dict[str, Lease] = {}
        self._by_ad: dict[str, str] = {}
        self.expired_total = 0

    def _notify(self, kind: str, lease: Lease) -> None:
        if self.on_event is not None:
            self.on_event(kind, lease)

    def __len__(self) -> int:
        return len(self._by_lease)

    def grant(self, ad_id: str, duration: float | None = None) -> Lease:
        """Grant a lease for an advertisement.

        Republishing an advertisement that already holds a lease replaces
        the old lease (the new expiry wins).
        """
        length = self.default_duration if duration is None else duration
        if length <= 0:
            raise LeaseError(f"lease duration must be positive, got {length}")
        old = self.lease_for_ad(ad_id)
        if old is not None:
            # Retire the replaced lease through the same path as expiry and
            # cancellation so both maps stay mirrored; renewing the retired
            # lease id afterwards raises LeaseError like any unknown lease.
            self._drop(old)
        lease = Lease(
            lease_id=new_uuid("lease"),
            ad_id=ad_id,
            duration=length,
            expires_at=self.clock() + length,
        )
        self._by_lease[lease.lease_id] = lease
        self._by_ad[ad_id] = lease.lease_id
        self._notify("grant", lease)
        return lease

    def renew(self, lease_id: str) -> Lease:
        """Extend a lease by its original duration from *now*.

        Renewing an unknown (e.g. already-expired-and-purged) lease raises
        :class:`LeaseError`; the service node reacts by republishing from
        scratch.
        """
        lease = self._by_lease.get(lease_id)
        if lease is None:
            raise LeaseError(f"unknown lease {lease_id!r}")
        if lease.expired(self.clock()):
            # Expired but not yet purged: treat as unknown, forcing a
            # republish, so expiry semantics don't depend on purge timing.
            self._drop(lease)
            raise LeaseError(f"lease {lease_id!r} has expired")
        lease.expires_at = self.clock() + lease.duration
        lease.renewals += 1
        self._notify("renew", lease)
        return lease

    def restore(
        self,
        ad_id: str,
        *,
        lease_id: str,
        duration: float,
        expires_at: float,
        renewals: int = 0,
    ) -> Lease:
        """Reinstate a lease with its *original* id and expiry (recovery).

        Crash recovery replays persisted leases through here instead of
        :meth:`grant`: the service node holds the original ``lease_id``
        and keeps renewing it across the registry outage, so restoring
        the exact id (rather than minting a new one) is what lets those
        renewals succeed — no RENEW_NACK, no forced republish.
        """
        if duration <= 0:
            raise LeaseError(f"lease duration must be positive, got {duration}")
        old = self.lease_for_ad(ad_id)
        if old is not None:
            self._drop(old)
        lease = Lease(
            lease_id=lease_id,
            ad_id=ad_id,
            duration=duration,
            expires_at=expires_at,
            renewals=renewals,
        )
        self._by_lease[lease.lease_id] = lease
        self._by_ad[ad_id] = lease.lease_id
        self._notify("restore", lease)
        return lease

    def cancel_for_ad(self, ad_id: str) -> None:
        """Drop the lease backing an advertisement (explicit removal)."""
        lease_id = self._by_ad.get(ad_id)
        if lease_id is not None:
            lease = self._by_lease.get(lease_id)
            if lease is not None:
                self._drop(lease)
                self._notify("cancel", lease)

    def lease_for_ad(self, ad_id: str) -> Lease | None:
        """The live lease backing an advertisement, if any."""
        lease_id = self._by_ad.get(ad_id)
        return self._by_lease.get(lease_id) if lease_id else None

    def expired_ads(self) -> list[str]:
        """Advertisement ids whose leases have lapsed, removing the leases.

        The caller (the registry's purge task) removes the advertisements
        themselves.
        """
        now = self.clock()
        lapsed = [lease for lease in self._by_lease.values() if lease.expired(now)]
        for lease in lapsed:
            self._drop(lease)
            self._notify("expire", lease)
        self.expired_total += len(lapsed)
        return sorted(lease.ad_id for lease in lapsed)

    def _drop(self, lease: Lease) -> None:
        self._by_lease.pop(lease.lease_id, None)
        if self._by_ad.get(lease.ad_id) == lease.lease_id:
            del self._by_ad[lease.ad_id]

    def clear(self) -> None:
        """Drop all leases (registry crash)."""
        self._by_lease.clear()
        self._by_ad.clear()
