"""The advertisement store inside a registry node.

"Thick" storage, per the paper: registries "contain all the information in
the service advertisements, not just pointers to where the advertisements
are". The store is indexed by advertisement UUID, by owning service node,
and by description model; pluggable :class:`~repro.registry.index.ConceptIndexer`
plug-ins (attached per model) additionally maintain inverted concept
indexes so query evaluation scales with the candidate set rather than the
store size.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator, TYPE_CHECKING

from repro.errors import AdvertisementNotFoundError
from repro.registry.advertisements import Advertisement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.registry.index import ConceptIndexer


class AdvertisementStore:
    """In-memory advertisement storage with UUID, service, and model indexes."""

    def __init__(self) -> None:
        self._by_id: dict[str, Advertisement] = {}
        self._by_service: dict[str, set[str]] = defaultdict(set)
        self._by_model: dict[str, set[str]] = defaultdict(set)
        self._indexes: dict[str, "ConceptIndexer"] = {}

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, ad_id: str) -> bool:
        return ad_id in self._by_id

    def attach_index(self, indexer: "ConceptIndexer") -> None:
        """Install (or replace) the concept indexer for one model.

        The indexer is reset and bulk-loaded with the advertisements
        already stored for its model, then kept current incrementally on
        every ``put``/``remove``/``clear``.
        """
        self._indexes[indexer.model_id] = indexer
        indexer.reset()
        for ad_id in self._by_model.get(indexer.model_id, ()):
            indexer.add(self._by_id[ad_id])

    def index_for(self, model_id: str) -> "ConceptIndexer | None":
        """The attached concept indexer for one model, if any."""
        return self._indexes.get(model_id)

    def put(self, ad: Advertisement) -> Advertisement:
        """Insert or upgrade an advertisement.

        An existing record with the same UUID is replaced only by an equal
        or newer version (replication may deliver stale copies out of
        order); the stored (possibly newer) record is returned.
        """
        existing = self._by_id.get(ad.ad_id)
        if existing is not None and existing.version > ad.version:
            return existing
        if existing is not None:
            self._unlink(existing)
        self._by_id[ad.ad_id] = ad
        self._by_service[ad.service_node].add(ad.ad_id)
        self._by_model[ad.model_id].add(ad.ad_id)
        indexer = self._indexes.get(ad.model_id)
        if indexer is not None:
            indexer.add(ad)
        return ad

    def get(self, ad_id: str) -> Advertisement:
        """Fetch by UUID; raises :class:`AdvertisementNotFoundError`."""
        try:
            return self._by_id[ad_id]
        except KeyError:
            raise AdvertisementNotFoundError(f"unknown advertisement {ad_id!r}") from None

    def remove(self, ad_id: str) -> Advertisement:
        """Delete by UUID; returns the removed record."""
        ad = self.get(ad_id)
        del self._by_id[ad_id]
        self._unlink(ad)
        return ad

    def _unlink(self, ad: Advertisement) -> None:
        """Drop one record's secondary-index entries (not ``_by_id``)."""
        owned = self._by_service.get(ad.service_node)
        if owned is not None:
            owned.discard(ad.ad_id)
            if not owned:
                del self._by_service[ad.service_node]
        of_model = self._by_model.get(ad.model_id)
        if of_model is not None:
            of_model.discard(ad.ad_id)
            if not of_model:
                del self._by_model[ad.model_id]
        indexer = self._indexes.get(ad.model_id)
        if indexer is not None:
            indexer.discard(ad)

    def discard(self, ad_id: str) -> Advertisement | None:
        """Delete by UUID if present; returns the record or ``None``."""
        if ad_id in self._by_id:
            return self.remove(ad_id)
        return None

    def by_service(self, service_node: str) -> list[Advertisement]:
        """All advertisements published by one service node."""
        return [self._by_id[aid] for aid in sorted(self._by_service.get(service_node, ()))]

    def all(self) -> list[Advertisement]:
        """Every stored advertisement, ordered by UUID."""
        return [self._by_id[aid] for aid in sorted(self._by_id)]

    def of_model(self, model_id: str) -> list[Advertisement]:
        """Stored advertisements using one description model.

        Served from the per-model index — no full-store scan — in the
        same deterministic UUID order as before.
        """
        return [self._by_id[aid] for aid in sorted(self._by_model.get(model_id, ()))]

    def candidates(self, model_id: str, query: Any) -> list[Advertisement]:
        """Advertisements of one model plausibly matching ``query``.

        Routed through the model's concept indexer when one is attached
        and the query is indexable (a guaranteed superset of the true
        matches, in deterministic UUID order); otherwise the plain
        :meth:`of_model` linear scan — bit-identical results either way.
        """
        indexer = self._indexes.get(model_id)
        if indexer is not None:
            ids = indexer.candidate_ids(query)
            if ids is not None:
                return [self._by_id[aid] for aid in sorted(ids) if aid in self._by_id]
        return self.of_model(model_id)

    def ranked_candidates(
        self, model_id: str, query: Any
    ) -> Iterator[tuple[int, list[Advertisement]]] | None:
        """Candidates grouped by descending match-degree upper bound.

        Thin resolution layer over the model indexer's
        :meth:`~repro.registry.index.ConceptIndexer.candidate_buckets`:
        yields ``(upper_bound, advertisements)`` groups, strongest first,
        for the evaluator's bounded top-k early termination. ``None``
        when no indexer is attached or the query cannot be ranked (the
        evaluator then uses :meth:`candidates`). Groups are resolved
        lazily — a consumer that stops early never materializes the
        weaker groups — so consume the iterator before mutating the
        store.
        """
        indexer = self._indexes.get(model_id)
        if indexer is None:
            return None
        buckets = indexer.candidate_buckets(query)
        if buckets is None:
            return None
        by_id = self._by_id

        def _resolve() -> Iterator[tuple[int, list[Advertisement]]]:
            for upper_bound, ad_ids in buckets:
                ads = [by_id[aid] for aid in ad_ids if aid in by_id]
                if ads:
                    yield upper_bound, ads

        return _resolve()

    def service_nodes(self) -> list[str]:
        """Service nodes with at least one stored advertisement."""
        return sorted(self._by_service)

    def clear(self) -> None:
        """Drop all content (a registry crash loses volatile state)."""
        self._by_id.clear()
        self._by_service.clear()
        self._by_model.clear()
        for indexer in self._indexes.values():
            indexer.reset()
