"""The advertisement store inside a registry node.

"Thick" storage, per the paper: registries "contain all the information in
the service advertisements, not just pointers to where the advertisements
are". The store is indexed by advertisement UUID and by owning service
node, and keeps only the newest version of each advertisement.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import AdvertisementNotFoundError
from repro.registry.advertisements import Advertisement


class AdvertisementStore:
    """In-memory advertisement storage with UUID and per-service indexes."""

    def __init__(self) -> None:
        self._by_id: dict[str, Advertisement] = {}
        self._by_service: dict[str, set[str]] = defaultdict(set)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, ad_id: str) -> bool:
        return ad_id in self._by_id

    def put(self, ad: Advertisement) -> Advertisement:
        """Insert or upgrade an advertisement.

        An existing record with the same UUID is replaced only by an equal
        or newer version (replication may deliver stale copies out of
        order); the stored (possibly newer) record is returned.
        """
        existing = self._by_id.get(ad.ad_id)
        if existing is not None and existing.version > ad.version:
            return existing
        self._by_id[ad.ad_id] = ad
        self._by_service[ad.service_node].add(ad.ad_id)
        return ad

    def get(self, ad_id: str) -> Advertisement:
        """Fetch by UUID; raises :class:`AdvertisementNotFoundError`."""
        try:
            return self._by_id[ad_id]
        except KeyError:
            raise AdvertisementNotFoundError(f"unknown advertisement {ad_id!r}") from None

    def remove(self, ad_id: str) -> Advertisement:
        """Delete by UUID; returns the removed record."""
        ad = self.get(ad_id)
        del self._by_id[ad_id]
        owned = self._by_service.get(ad.service_node)
        if owned is not None:
            owned.discard(ad_id)
            if not owned:
                del self._by_service[ad.service_node]
        return ad

    def discard(self, ad_id: str) -> Advertisement | None:
        """Delete by UUID if present; returns the record or ``None``."""
        if ad_id in self._by_id:
            return self.remove(ad_id)
        return None

    def by_service(self, service_node: str) -> list[Advertisement]:
        """All advertisements published by one service node."""
        return [self._by_id[aid] for aid in sorted(self._by_service.get(service_node, ()))]

    def all(self) -> list[Advertisement]:
        """Every stored advertisement, ordered by UUID."""
        return [self._by_id[aid] for aid in sorted(self._by_id)]

    def of_model(self, model_id: str) -> list[Advertisement]:
        """Stored advertisements using one description model."""
        return [ad for ad in self.all() if ad.model_id == model_id]

    def service_nodes(self) -> list[str]:
        """Service nodes with at least one stored advertisement."""
        return sorted(self._by_service)

    def clear(self) -> None:
        """Drop all content (a registry crash loses volatile state)."""
        self._by_id.clear()
        self._by_service.clear()
