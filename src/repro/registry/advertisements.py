"""Advertisement records and the UUID convention.

UUIDs here are deterministic within a run (a monotonic counter rendered in
UUID-ish form) so that simulations are reproducible; real deployments
would use RFC 4122 UUIDs as UDDI 3.0 does, which the paper cites as the
model for its identification convention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any

from repro.netsim.messages import estimate_payload_size

_uuid_counter = itertools.count(1)


def reset_uuids() -> None:
    """Restart the UUID counter (new simulation run).

    Identifiers are only meaningful within one simulated system, but the
    counter is process-global — and under sharding the raw ``ad_id``
    string drives consistent-hash placement, so two same-seed systems
    built in one process would otherwise place the same advertisements
    on different replica sets.
    """
    global _uuid_counter
    _uuid_counter = itertools.count(1)

#: Record overhead beyond the description payload: UUID, endpoint,
#: timestamps, lease linkage.
_RECORD_OVERHEAD_BYTES = 96


def new_uuid(kind: str = "ad") -> str:
    """A fresh run-deterministic identifier, e.g. ``"ad-000042"``."""
    return f"{kind}-{next(_uuid_counter):06d}"


@dataclass(frozen=True, slots=True)
class Advertisement:
    """One published service description as stored in a registry.

    Attributes
    ----------
    ad_id:
        The advertisement's UUID — the handle for renew/update/remove and
        for de-duplicating responses gathered from several registries.
    service_node:
        Node id of the publishing service node.
    service_name:
        The described service's name (stable across republishes).
    endpoint:
        Where to invoke the service ("service invocations are performed
        directly").
    model_id:
        The description model of :attr:`description` ("next header").
    description:
        Model-specific payload (URI record, template, semantic profile).
    version:
        Incremented on republish; registries keep only the newest.
    home_registry:
        The registry the advertisement was originally published to
        (provenance for federation/replication).
    """

    ad_id: str
    service_node: str
    service_name: str
    endpoint: str
    model_id: str
    description: Any
    version: int = 1
    published_at: float = 0.0
    home_registry: str = ""

    def bumped(self, description: Any, now: float) -> "Advertisement":
        """A republished copy with a newer version and description."""
        return replace(self, description=description, version=self.version + 1,
                       published_at=now)

    def size_bytes(self) -> int:
        """Wire size: the description payload plus record overhead."""
        return estimate_payload_size(self.description) + _RECORD_OVERHEAD_BYTES


@dataclass(frozen=True)
class AdvertisementSummary:
    """The compact form exchanged during registry signalling: identity
    only, no payload — "summary information about the advertisements
    present in a registry"."""

    ad_id: str
    service_name: str
    model_id: str
    home_registry: str
    version: int = 1

    def size_bytes(self) -> int:
        return (
            len(self.ad_id) + len(self.service_name) + len(self.model_id)
            + len(self.home_registry) + 16
        )


def summarize(ad: Advertisement) -> AdvertisementSummary:
    """The summary record for one advertisement."""
    return AdvertisementSummary(
        ad_id=ad.ad_id,
        service_name=ad.service_name,
        model_id=ad.model_id,
        home_registry=ad.home_registry,
        version=ad.version,
    )
