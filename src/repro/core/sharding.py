"""Sharded, replicated federation: consistent hashing + quorum writes.

Today every registry in replicate-advertisements cooperation holds the
full advertisement set and WAN queries flood to all neighbors, so store
size, fan-out, and anti-entropy digests all grow with the deployment.
This module partitions the advertisement space instead: a deterministic
consistent-hash ring (seeded virtual nodes, ads keyed by ``ad_id``)
assigns each advertisement to ``replication_factor`` replica registries.

* **Publishes/removes become quorum writes** — the registry a service
  talks to acts as coordinator, pushes the write to the replica set, and
  acks the service after ``write_quorum`` of them confirmed.  A replica
  that stays silent gets the write buffered as a *hint* and replayed on
  its next proof of life (hinted handoff).
* **Queries route to replicas, not everyone** — the entry registry picks
  the healthiest member of each replica group (passive health + circuit
  breakers mask faults) and runs a bounded scatter-gather over that
  cover set, ~S/R registries instead of all S.  Version mismatches
  between replica answers trigger read repair.
* **Rebalancing is bounded** — ring membership changes move only the
  ~K/S advertisements whose replica set actually changed.

Everything here is **inert by default**: ``ShardingConfig(enabled=False)``
leaves the replicate-everywhere flood byte-identical to previous
releases (the obs-smoke determinism gate enforces this).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.registry_node import RegistryNode


@dataclass(frozen=True)
class ShardingConfig:
    """Knobs for the sharded federation. The default is **off** — the
    deployment keeps replicate-everywhere semantics and byte-identical
    traces; enabling sharding switches publish/remove to quorum writes
    and queries to replica-set routing.
    """

    #: Master switch. Off ⇒ every field below is ignored.
    enabled: bool = False
    #: R: registries holding a copy of each advertisement.
    replication_factor: int = 3
    #: W: replica acks required before the coordinator acks the service.
    write_quorum: int = 2
    #: Virtual nodes per registry on the ring (uniformity knob).
    virtual_nodes: int = 64
    #: Seed mixed into every ring position — two deployments with the
    #: same members and seed place identically.
    ring_seed: int = 0
    #: Seconds the write coordinator waits for quorum acks.
    quorum_timeout: float = 1.0
    #: Buffer writes for unreachable replicas and replay them on the
    #: replica's next proof of life.
    hinted_handoff: bool = True
    #: Hints buffered per down replica before the oldest are dropped.
    handoff_limit: int = 256
    #: Push the freshest version to stale replicas spotted during reads.
    read_repair: bool = True
    #: Re-send a query once to an alternate replica when the chosen one
    #: stays silent past the aggregation timeout (fault-masked reads).
    read_retry: bool = True
    #: A promoted warm standby inherits the ring identity of the dead
    #: registry it replaces, so promotion moves no keys (satellite fix).
    standby_inherit_ring: bool = True

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ReproError("replication_factor must be >= 1")
        if not 1 <= self.write_quorum <= self.replication_factor:
            raise ReproError(
                "write_quorum must be in 1..replication_factor, got "
                f"{self.write_quorum} (R={self.replication_factor})"
            )
        if self.virtual_nodes < 1:
            raise ReproError("virtual_nodes must be >= 1")
        if self.quorum_timeout <= 0:
            raise ReproError("quorum_timeout must be positive")
        if self.handoff_limit < 0:
            raise ReproError("handoff_limit must be >= 0")


def _hash64(data: str) -> int:
    """Stable 64-bit ring point (Python's ``hash`` is salted per run)."""
    return int.from_bytes(hashlib.blake2b(data.encode(), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """A deterministic consistent-hash ring over registry members.

    Members are registered under a *ring identity* — normally their node
    id, but a promoted warm standby registers under the identity of the
    registry it replaced, reproducing its virtual-node positions exactly
    so promotion moves no keys.  Two members may transiently share a
    ring identity (failback overlap); position collisions keep both, in
    sorted member order, and replica walks simply skip duplicates.
    """

    def __init__(self, *, virtual_nodes: int = 64, seed: int = 0) -> None:
        self.virtual_nodes = virtual_nodes
        self.seed = seed
        self._ring_ids: dict[str, str] = {}
        #: Sorted (point, member) pairs — the walk order of the ring.
        self._points: list[tuple[int, str]] = []
        #: Bumped on every membership change; caches key off it.
        self.version = 0

    # -- membership ---------------------------------------------------------

    def add(self, member: str, ring_id: str | None = None) -> bool:
        """Register ``member``; returns True when the ring changed."""
        ring_id = ring_id or member
        if self._ring_ids.get(member) == ring_id:
            return False
        self._ring_ids[member] = ring_id
        self._rebuild()
        return True

    def remove(self, member: str) -> bool:
        if member not in self._ring_ids:
            return False
        del self._ring_ids[member]
        self._rebuild()
        return True

    def _rebuild(self) -> None:
        points: list[tuple[int, str]] = []
        for member, ring_id in self._ring_ids.items():
            for vnode in range(self.virtual_nodes):
                points.append((_hash64(f"{ring_id}#{vnode}#{self.seed}"), member))
        points.sort()
        self._points = points
        self.version += 1

    def members(self) -> tuple[str, ...]:
        return tuple(sorted(self._ring_ids))

    def ring_id_of(self, member: str) -> str | None:
        return self._ring_ids.get(member)

    def clone(self) -> "ConsistentHashRing":
        other = ConsistentHashRing(virtual_nodes=self.virtual_nodes, seed=self.seed)
        other._ring_ids = dict(self._ring_ids)
        other._points = list(self._points)
        return other

    def __len__(self) -> int:
        return len(self._ring_ids)

    def __contains__(self, member: str) -> bool:
        return member in self._ring_ids

    # -- placement ----------------------------------------------------------

    def replicas_for(self, key: str, r: int) -> tuple[str, ...]:
        """The ``r`` distinct members owning ``key``, in ring-walk order.

        Fewer than ``r`` members ⇒ every member replicates every key —
        sharding degrades gracefully to full replication on tiny rings.
        """
        points = self._points
        if not points:
            return ()
        start = bisect_right(points, (_hash64(key), "￿"))
        replicas: list[str] = []
        seen: set[str] = set()
        n = len(points)
        for offset in range(n):
            member = points[(start + offset) % n][1]
            if member not in seen:
                seen.add(member)
                replicas.append(member)
                if len(replicas) >= r:
                    break
        return tuple(replicas)

    def owns(self, member: str, key: str, r: int) -> bool:
        return member in self.replicas_for(key, r)

    def replica_groups(self, r: int) -> tuple[tuple[str, ...], ...]:
        """Every distinct replica set across the ring's arcs, sorted.

        Any key's replica set is one of these (the set starting at the
        arc the key hashes into) — the query planner covers *groups*, so
        one healthy contact per group answers for every key in it.
        """
        points = self._points
        n = len(points)
        groups: set[tuple[str, ...]] = set()
        for start in range(n):
            replicas: list[str] = []
            seen: set[str] = set()
            for offset in range(n):
                member = points[(start + offset) % n][1]
                if member not in seen:
                    seen.add(member)
                    replicas.append(member)
                    if len(replicas) >= r:
                        break
            groups.add(tuple(replicas))
        return tuple(sorted(groups))

    def partners(self, member: str, r: int) -> tuple[str, ...]:
        """Members sharing at least one replica group with ``member``."""
        shared: set[str] = set()
        for group in self.replica_groups(r):
            if member in group:
                shared.update(group)
        shared.discard(member)
        return tuple(sorted(shared))


class _PendingQuorumWrite:
    """One in-flight quorum write awaiting replica acks."""

    def __init__(
        self,
        manager: "ShardManager",
        *,
        request_id: str,
        ad_id: str,
        targets: tuple[str, ...],
        needed: int,
        acked: int,
        on_success: Callable[[], None],
        on_failure: Callable[[], None],
    ) -> None:
        self.manager = manager
        self.request_id = request_id
        self.ad_id = ad_id
        self.silent: set[str] = set(targets)
        self.needed = needed
        self.acked = acked
        self.on_success = on_success
        self.on_failure = on_failure
        self.done = False
        registry = manager.registry
        self._timer = registry.after(
            manager.cfg.quorum_timeout, self._timeout
        )
        if self.acked >= self.needed:
            # Degenerate quorum (W=1 and the coordinator is a replica):
            # succeed immediately; silent replicas become hints on the
            # timeout tick as usual.
            self._finish(success=True)

    def ack(self, src: str) -> None:
        if src in self.silent:
            self.silent.discard(src)
            self.acked += 1
        if not self.done and self.acked >= self.needed:
            self._finish(success=True)

    def nack(self, src: str) -> None:
        """A replica refused the write (capacity): it will never ack."""
        self.silent.discard(src)
        if not self.done and self.acked + len(self.silent) < self.needed:
            self._finish(success=False)

    def _timeout(self) -> None:
        self.manager.hint_silent(self)
        if not self.done:
            self._finish(success=self.acked >= self.needed)
        self.manager.retire(self)

    def _finish(self, *, success: bool) -> None:
        self.done = True
        if success:
            self.on_success()
        else:
            self.on_failure()


class ShardManager:
    """Per-registry sharding state: ring view, quorum writes, hints.

    Owned by every :class:`RegistryNode`; a no-op shell unless
    ``config.sharding.enabled`` (so the default deployment pays nothing).
    Ring membership follows the federation's gossip: every observed
    registry description adds a member, a graceful FEDERATION_LEAVE
    removes one.  *Crashes do not shrink the ring* — transient failures
    are masked by health-aware replica selection and hinted handoff, so
    flapping nodes cannot thrash K/S keys back and forth.
    """

    def __init__(self, registry: "RegistryNode", config) -> None:
        self.registry = registry
        self.cfg: ShardingConfig = config.sharding
        self.ring = ConsistentHashRing(
            virtual_nodes=self.cfg.virtual_nodes, seed=self.cfg.ring_seed
        )
        #: In-flight quorum writes by request id.
        self._writes: dict[str, _PendingQuorumWrite] = {}
        #: Hinted handoff buffers: down replica → [(msg_type, payload)].
        self._hints: dict[str, list[tuple[str, object]]] = {}
        #: Write payloads parked until the quorum timer decides who to hint.
        self._hint_payloads: dict[str, tuple[str, object]] = {}
        #: Per-query read state for repair: query_id → ad_id → (version, src).
        self._reads: dict[str, dict[str, tuple[int, str]]] = {}
        #: Ring-identity claims: ring_id → (claim time, member). The
        #: freshest claimant holds the identity's virtual-node positions;
        #: an older claimant is evicted (a promoted heir supersedes the
        #: dead original, and a failed-back original — whose beacons
        #: carry a newer ``issued_at`` — reclaims it from the heir).
        #: Stale gossip replaying a pre-crash snapshot loses the
        #: comparison, so membership cannot ping-pong.
        self._identity_claims: dict[str, tuple[float, str]] = {}
        self._write_seq = 0
        self._rebalance_armed = False
        # Counters (surfaced via :meth:`counters` and experiment tables).
        self.quorum_writes = 0
        self.quorum_acked = 0
        self.quorum_failed = 0
        self.late_acks = 0
        self.hints_buffered = 0
        self.hints_replayed = 0
        self.hints_dropped = 0
        self.read_repairs = 0
        self.read_retries = 0
        self.rebalances = 0
        self.ads_moved_out = 0
        self.ads_moved_in = 0

    # -- config gates -------------------------------------------------------

    def configured(self) -> bool:
        """Sharding requested in the config (regardless of cooperation)."""
        return self.cfg.enabled

    def active(self) -> bool:
        """Sharding actually governs this registry's replication."""
        from repro.core.config import COOPERATION_REPLICATE_ADS

        return self.cfg.enabled and \
            self.registry.config.cooperation == COOPERATION_REPLICATE_ADS

    @property
    def r(self) -> int:
        return self.cfg.replication_factor

    # -- ring membership ----------------------------------------------------

    def reset(self) -> None:
        """Restart hygiene: volatile state dies with the incarnation."""
        self.ring = ConsistentHashRing(
            virtual_nodes=self.cfg.virtual_nodes, seed=self.cfg.ring_seed
        )
        self._writes.clear()
        self._hints.clear()
        self._reads.clear()
        self._identity_claims.clear()
        self._rebalance_armed = False

    def note_member(self, member: str, ring_id: str | None = None,
                    at: float = 0.0) -> None:
        """A registry exists (gossip/join/beacon): place it on the ring.

        ``at`` is the announcement's freshness (the description's
        ``issued_at``); the freshest claimant of a ring identity wins
        its positions and the superseded claimant leaves the ring.
        """
        if not self.configured():
            return
        rid = ring_id or member
        holder = self._identity_claims.get(rid)
        if holder is not None and holder[1] != member and at <= holder[0]:
            return  # identity held by a fresher claimant
        if holder is not None and holder[1] == member:
            at = max(at, holder[0])  # a stale self-echo never ages a claim
        prev = self.ring.clone() if len(self.ring) else None
        changed = False
        if holder is not None and holder[1] != member \
                and self.ring.ring_id_of(holder[1]) == rid:
            changed |= self.ring.remove(holder[1])
        self._identity_claims[rid] = (at, member)
        changed |= self.ring.add(member, rid)
        if changed:
            self._schedule_rebalance(prev)

    def drop_member(self, member: str) -> None:
        """A registry *gracefully left*: its ranges move to successors."""
        if not self.configured():
            return
        prev = self.ring.clone() if len(self.ring) else None
        if self.ring.remove(member):
            self._hints.pop(member, None)
            for rid, (_, claimant) in list(self._identity_claims.items()):
                if claimant == member:
                    del self._identity_claims[rid]
            self._schedule_rebalance(prev)

    def replicas_for(self, ad_id: str) -> tuple[str, ...]:
        return self.ring.replicas_for(ad_id, self.r)

    def owns_local(self, ad_id: str) -> bool:
        return self.ring.owns(self.registry.node_id, ad_id, self.r)

    def co_owned(self, ad_id: str, peer: str) -> bool:
        """Both this registry and ``peer`` replicate ``ad_id``."""
        replicas = self.replicas_for(ad_id)
        return self.registry.node_id in replicas and peer in replicas

    def shard_peers(self) -> tuple[str, ...]:
        """Registries sharing at least one replica range with us —
        the per-shard anti-entropy gossip set."""
        return self.ring.partners(self.registry.node_id, self.r)

    # -- quorum writes ------------------------------------------------------

    def next_request_id(self) -> str:
        self._write_seq += 1
        return f"{self.registry.node_id}/w{self._write_seq}"

    def begin_write(
        self,
        *,
        ad_id: str,
        targets: Iterable[str],
        needed: int,
        acked: int = 0,
        on_success: Callable[[], None],
        on_failure: Callable[[], None],
    ) -> str:
        """Track a quorum write; returns the request id to stamp sends."""
        request_id = self.next_request_id()
        self.quorum_writes += 1
        self._writes[request_id] = _PendingQuorumWrite(
            self,
            request_id=request_id,
            ad_id=ad_id,
            targets=tuple(targets),
            needed=needed,
            acked=acked,
            on_success=on_success,
            on_failure=on_failure,
        )
        return request_id

    def on_ack(self, request_id: str, src: str, *, ok: bool = True) -> None:
        write = self._writes.get(request_id)
        if write is None:
            self.late_acks += 1
            return
        if ok:
            write.ack(src)
        else:
            write.nack(src)

    def retire(self, write: _PendingQuorumWrite) -> None:
        self._writes.pop(write.request_id, None)
        if write.done and write.acked >= write.needed:
            self.quorum_acked += 1
        else:
            self.quorum_failed += 1

    # -- hinted handoff -----------------------------------------------------

    def hint_silent(self, write: _PendingQuorumWrite) -> None:
        """Buffer the write for every replica that never answered."""
        if not self.cfg.hinted_handoff or not write.silent:
            return
        payload = self._hint_payloads.pop(write.request_id, None)
        if payload is None:
            return
        msg_type, body = payload
        for target in sorted(write.silent):
            self.buffer_hint(target, msg_type, body)

    def park_hint_payload(self, request_id: str, msg_type: str, body) -> None:
        self._hint_payloads[request_id] = (msg_type, body)

    def buffer_hint(self, target: str, msg_type: str, body) -> None:
        queue = self._hints.setdefault(target, [])
        queue.append((msg_type, body))
        self.hints_buffered += 1
        overflow = len(queue) - self.cfg.handoff_limit
        if overflow > 0:
            del queue[:overflow]
            self.hints_dropped += overflow
        if self.registry.network is not None:
            self.registry.network.metrics.counter("shard.hints_buffered").inc()

    def peer_alive(self, peer: str) -> None:
        """Proof of life from ``peer``: replay its buffered hints."""
        if not self.active():
            return
        queue = self._hints.pop(peer, None)
        if not queue:
            return
        for msg_type, body in queue:
            self.registry.send(peer, msg_type, body)
            self.hints_replayed += 1
        if self.registry.network is not None:
            self.registry.network.metrics.counter(
                "shard.hints_replayed").inc(len(queue))
            trace = self.registry.trace
            if trace is not None:
                trace.event(
                    "shard.handoff_replay",
                    node=self.registry.node_id,
                    ctx=self.registry._trace_ctx,
                    attrs={"peer": peer, "hints": len(queue)},
                )

    # -- read repair --------------------------------------------------------

    def observe_read(self, query_id: str, src: str, hits) -> None:
        """Track per-replica answer versions; repair stale replicas."""
        if not (self.active() and self.cfg.read_repair):
            return
        best = self._reads.setdefault(query_id, {})
        for hit in hits:
            ad = hit.advertisement
            known = best.get(ad.ad_id)
            if known is None:
                best[ad.ad_id] = (ad.version, src)
            elif ad.version > known[0]:
                self._repair(known[1], ad)
                best[ad.ad_id] = (ad.version, src)
            elif ad.version < known[0]:
                # ``src`` answered stale; push it the fresh copy we hold
                # (the fresh holder's full ad came in an earlier batch —
                # re-fetch it from our own store or skip if we lack it).
                fresh = self.registry.store.get(ad.ad_id) \
                    if ad.ad_id in self.registry.store else None
                if fresh is not None and fresh.version > ad.version:
                    self._repair(src, fresh)

    def _repair(self, stale_src: str, ad) -> None:
        from repro.core import protocol

        if stale_src == self.registry.node_id:
            return
        self.read_repairs += 1
        self.registry.send(
            stale_src,
            protocol.SHARD_STORE,
            protocol.ShardStorePayload(
                request_id="",
                entry=protocol.AdForwardPayload(
                    advertisement=ad,
                    lease_duration=self.registry.config.lease_duration,
                    epoch=self.registry._lease_epoch(),
                ),
            ),
        )
        if self.registry.network is not None:
            self.registry.network.metrics.counter("shard.read_repairs").inc()

    def end_read(self, query_id: str) -> None:
        self._reads.pop(query_id, None)

    # -- query planning -----------------------------------------------------

    def read_cover(self, *, exclude: frozenset[str] = frozenset()) -> list[str]:
        """A health-aware minimal contact set covering every replica group.

        Greedy set cover: repeatedly pick the usable registry covering
        the most still-uncovered groups (deterministic tie-break by id;
        this registry's own groups are pre-covered — we answer locally).
        Members with open circuit breakers are avoided unless a group has
        no other member, masking fail-stopped replicas.
        """
        me = self.registry.node_id
        groups = [
            frozenset(g) for g in self.ring.replica_groups(self.r)
            if me not in g
        ]
        uncovered = [g for g in groups if not (g & exclude)]
        registry = self.registry
        healthy = {
            m for m in self.ring.members()
            if m != me and registry.federation.breaker_allows(m)
            and not registry.router.cooldowns.in_cooldown(m)
        }
        cover: list[str] = []
        while uncovered:
            counts: dict[str, int] = {}
            for group in uncovered:
                candidates = (group & healthy) or set(group)
                for member in candidates:
                    if member != me:
                        counts[member] = counts.get(member, 0) + 1
            if not counts:
                break
            pick = max(sorted(counts), key=lambda m: (counts[m], m in healthy))
            cover.append(pick)
            uncovered = [g for g in uncovered if pick not in g]
        return cover

    def alternate_for(self, target: str, contacted: set[str]) -> str | None:
        """A fresh replica able to stand in for a silent ``target``."""
        me = self.registry.node_id
        candidates: set[str] = set()
        for group in self.ring.replica_groups(self.r):
            if target in group and me not in group:
                candidates.update(group)
        candidates -= contacted
        candidates.discard(target)
        candidates.discard(me)
        allowed = [
            m for m in sorted(candidates)
            if self.registry.federation.breaker_allows(m)
        ]
        ordered = self.registry.router.order(allowed)
        return ordered[0] if ordered else None

    # -- rebalancing --------------------------------------------------------

    def _schedule_rebalance(self, prev: ConsistentHashRing | None) -> None:
        """Coalesce a burst of membership changes into one rebalance pass.

        The *first* pre-change ring of the burst is kept as the baseline
        so one pass sees the net movement, not every intermediate step.
        """
        if not self.active() or self.registry.network is None:
            return
        if self._rebalance_armed:
            return
        self._rebalance_armed = True
        baseline = prev
        self.registry.after(0.0, lambda: self._rebalance(baseline))

    def _rebalance(self, prev: ConsistentHashRing | None) -> None:
        from repro.core import protocol

        self._rebalance_armed = False
        registry = self.registry
        if not registry.alive or not self.active():
            return
        me = registry.node_id
        epoch = registry._lease_epoch()
        outgoing: dict[str, list] = {}
        dropped = 0
        for ad in list(registry.store.all()):
            new_set = self.replicas_for(ad.ad_id)
            if not new_set:
                continue
            old_set = prev.replicas_for(ad.ad_id, self.r) if prev is not None else ()
            entry = None
            if me not in new_set:
                # No longer ours: hand the copy to the new owners, drop it.
                entry = self._transfer_entry(ad, epoch)
                for target in new_set:
                    outgoing.setdefault(target, []).append(entry)
                registry.store.discard(ad.ad_id)
                if registry.leases is not None:
                    registry.leases.cancel_for_ad(ad.ad_id)
                registry.antientropy.note_dropped(ad.ad_id)
                registry.durability.log_expire(ad.ad_id)
                dropped += 1
            else:
                # Still ours: the lowest surviving co-owner seeds members
                # that just joined the set (exactly one pusher per ad).
                gained = [t for t in new_set if t not in old_set and t != me]
                survivors = sorted(set(old_set) & set(new_set)) or [me]
                if gained and survivors[0] == me:
                    entry = self._transfer_entry(ad, epoch)
                    for target in gained:
                        outgoing.setdefault(target, []).append(entry)
        moved = 0
        for target in sorted(outgoing):
            entries = outgoing[target]
            moved += len(entries)
            registry.send(
                target, protocol.SHARD_TRANSFER,
                protocol.SyncAdsPayload(ads=tuple(entries)),
            )
        if moved or dropped:
            self.rebalances += 1
            self.ads_moved_out += moved
            network = registry.network
            if network is not None:
                network.metrics.counter("shard.rebalances").inc()
                network.metrics.counter("shard.ads_moved").inc(moved)
                trace = registry.trace
                if trace is not None:
                    span = trace.start_span(
                        "shard.rebalance",
                        node=me,
                        attrs={"moved": moved, "dropped": dropped,
                               "members": len(self.ring)},
                    )
                    trace.end_span(span)
        self.publish_gauges()

    def sweep_strays(self) -> None:
        """Hand off advertisements this registry no longer owns.

        Ring-change rebalancing runs only on nodes whose *own* ring view
        changed; a transfer or hint that landed here while the sender's
        ring was still converging leaves a stray copy nobody reclaims
        (renewals never reach it, so it would linger until lease expiry).
        The periodic sweep — piggybacked on anti-entropy rounds — moves
        such ads to their current owners and drops the local copy.
        Diffing against the *current* ring makes it a pure stray sweep:
        owned ads see no gained members and are untouched.
        """
        if self.active() and not self._rebalance_armed:
            self._rebalance(self.ring.clone())

    def _transfer_entry(self, ad, epoch: int):
        from repro.core import protocol

        registry = self.registry
        duration = registry.config.lease_duration
        if registry.leases is not None:
            lease = registry.leases.lease_for_ad(ad.ad_id)
            if lease is not None:
                duration = max(0.0, lease.expires_at - registry.sim.now)
        return protocol.AdForwardPayload(
            advertisement=ad, lease_duration=duration, epoch=epoch,
        )

    # -- observability ------------------------------------------------------

    def publish_gauges(self) -> None:
        network = self.registry.network
        if network is None or not self.active():
            return
        network.metrics.gauge(
            f"shard.store_size.{self.registry.node_id}"
        ).set(len(self.registry.store))
        network.metrics.gauge("shard.ring_members").set(len(self.ring))

    def counters(self) -> dict[str, int]:
        return {
            "quorum_writes": self.quorum_writes,
            "quorum_acked": self.quorum_acked,
            "quorum_failed": self.quorum_failed,
            "late_acks": self.late_acks,
            "hints_buffered": self.hints_buffered,
            "hints_replayed": self.hints_replayed,
            "hints_dropped": self.hints_dropped,
            "read_repairs": self.read_repairs,
            "read_retries": self.read_retries,
            "rebalances": self.rebalances,
            "ads_moved_out": self.ads_moved_out,
            "ads_moved_in": self.ads_moved_in,
        }
