"""Registry federation: the dynamic registry network (Fig. 2).

Registries are autonomous super-peers that "dynamically connect and
disconnect to the system", keep aliveness state about their neighbors, and
gossip registry lists so the network re-wires itself around failures
("registry signalling" — §4.9).

The :class:`Federation` component owns, for one registry node:

* the neighbor set (direct federation links),
* the known-registry cache (fed by joins, gossip, and LAN observation),
* periodic neighbor pings with a missed-pong failure detector,
* reconnection: when a neighbor dies, try a known non-neighbor so the
  registry network stays connected,
* same-LAN gateway election ("only one node … acts as the gateway to the
  WAN-level registry network").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core import protocol
from repro.core.config import DiscoveryConfig
from repro.core.forwarding import (
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.registry.rim import RegistryDescription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.registry_node import RegistryNode


class Federation:
    """Neighbor management for one registry node."""

    def __init__(
        self,
        registry: "RegistryNode",
        config: DiscoveryConfig,
        *,
        describe: Callable[[], RegistryDescription],
    ) -> None:
        self.registry = registry
        self.config = config
        self.describe = describe
        self.neighbors: set[str] = set()
        self.known: dict[str, RegistryDescription] = {}
        self._missed_pongs: dict[str, int] = {}
        #: Per-neighbor circuit breakers fed by missed pongs and
        #: aggregation timeouts; consulted by the query fan-out.
        self.breakers: dict[str, CircuitBreaker] = {}
        #: Departure tombstones: member -> time its leave was learned.
        #: Gossip relaying a pre-departure snapshot must not resurrect
        #: the member (ring membership would thrash); a snapshot issued
        #: *after* the departure is a genuine rejoin and clears the
        #: tombstone.
        self.departed: dict[str, float] = {}
        self.joins_sent = 0
        self.neighbors_lost = 0
        self.reconnects = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic maintenance tasks."""
        self.registry.every(self.config.ping_interval, self._ping_round)
        if self.config.signalling_interval is not None:
            self.registry.every(self.config.signalling_interval, self._gossip_round)

    def reset(self) -> None:
        """Drop all volatile federation state (registry crash)."""
        self.neighbors.clear()
        self.known.clear()
        self._missed_pongs.clear()
        self.breakers.clear()
        self.departed.clear()

    # -- joining ------------------------------------------------------------

    def join(self, other_id: str) -> None:
        """Initiate a federation link with another registry (seeding)."""
        if other_id == self.registry.node_id or other_id in self.neighbors:
            return
        self.joins_sent += 1
        self.registry.send(other_id, protocol.FEDERATION_JOIN, self.describe())

    def handle_join(self, src: str, description: RegistryDescription | None) -> None:
        """A peer wants to federate: accept and acknowledge."""
        self._add_neighbor(src, description)
        self.registry.send(src, protocol.FEDERATION_JOIN_ACK, self.describe())

    def handle_join_ack(self, src: str, description: RegistryDescription | None) -> None:
        """Our join was accepted."""
        self._add_neighbor(src, description)

    def handle_leave(self, src: str, member: str = "") -> None:
        """A peer announced a graceful departure (possibly relayed).

        The announcement is flooded: each registry forwards it once to
        its own neighbors, so members that were never direct neighbors
        of the leaver (and would otherwise keep gossiping its stale
        description, re-growing the shard ring) learn of the departure
        too. The ``departed`` tombstone deduplicates the flood.
        """
        member = member or src
        if member == self.registry.node_id or member in self.departed:
            return
        self.departed[member] = self.registry.sim.now
        self.neighbors.discard(member)
        self.known.pop(member, None)
        self._missed_pongs.pop(member, None)
        self.breakers.pop(member, None)
        for neighbor in sorted(self.neighbors):
            if neighbor != src:
                self.registry.send(neighbor, protocol.FEDERATION_LEAVE,
                                   protocol.LeavePayload(member=member))
        # A graceful leave is authoritative: drop the peer from the shard
        # ring (triggering rebalance) and re-resolve any in-flight queries
        # that were still waiting on it.
        self.registry.on_peer_departed(member, left_ring=True)

    def leave(self) -> None:
        """Announce graceful departure to all neighbors.

        Failure-detector and breaker state goes with the links: a stale
        nonzero missed-pong counter would otherwise survive a leave/rejoin
        cycle and get a re-federated neighbor dropped after a single
        missed pong.
        """
        self.registry.on_departing()
        for neighbor in sorted(self.neighbors):
            self.registry.send(neighbor, protocol.FEDERATION_LEAVE,
                               protocol.LeavePayload(member=self.registry.node_id))
        self.neighbors.clear()
        self._missed_pongs.clear()
        self.breakers.clear()

    def _add_neighbor(self, other_id: str, description: RegistryDescription | None) -> None:
        is_new = other_id not in self.neighbors
        self.departed.pop(other_id, None)  # a direct (re)join is proof of return
        self.neighbors.add(other_id)
        # A join (or join-ack) is proof of life: reset the failure
        # detector rather than inheriting a stale pre-departure count.
        self._missed_pongs[other_id] = 0
        self.record_neighbor_success(other_id)
        if description is not None:
            self.known[other_id] = description
            self.registry.on_registry_observed(description)
        if is_new:
            self.registry.on_neighbor_added(other_id)
            if self.registry.shard.configured():
                # Hand the new neighbor our full membership view at once
                # (same convergence rationale as the observe() rumor).
                self.registry.send(other_id, protocol.REGISTRY_LIST_REPLY,
                                   self.registry_list())

    # -- observation -----------------------------------------------------------

    def observe(self, description: RegistryDescription) -> None:
        """Record a registry seen via beacon/probe/gossip.

        Same-LAN registries federate automatically: "if two registries can
        discover each other through multicast, they are on the same network
        segment" — this is what makes gateway election well-defined.
        """
        if description.registry_id == self.registry.node_id:
            return
        left_at = self.departed.get(description.registry_id)
        if left_at is not None:
            if description.issued_at <= left_at:
                return  # stale pre-departure snapshot relayed by gossip
            del self.departed[description.registry_id]  # genuine rejoin
        current = self.known.get(description.registry_id)
        if current is not None and current.issued_at > description.issued_at:
            # Gossip relayed an older snapshot: keep the fresher one.
            return
        is_new = current is None
        self.known[description.registry_id] = description
        self.registry.on_registry_observed(description)
        if is_new and self.registry.shard.configured():
            # Sharded mode: key placement is only correct once every
            # member sees the same ring, so a first sighting is rumored
            # to the neighbors immediately instead of waiting for the
            # periodic signalling round (which moves knowledge one hop
            # per round — O(diameter × interval) to converge). Each
            # registry forwards a given member at most once, so the
            # flood is bounded at N² messages federation-wide.
            rumor = protocol.RegistryListPayload(registries=(description,))
            for neighbor in sorted(self.neighbors):
                if neighbor != description.registry_id:
                    self.registry.send(neighbor, protocol.REGISTRY_LIST_REPLY,
                                       rumor)
        if (
            description.lan_name == self.registry.lan_name
            and description.registry_id not in self.neighbors
        ):
            self.join(description.registry_id)

    # -- aliveness ----------------------------------------------------------------

    def _ping_round(self) -> None:
        """Ping every neighbor; drop those that missed too many pongs.

        Seeded peers that are currently not neighbors are re-joined each
        round: seeds are durable manual configuration, so a link severed
        by a partition (or a peer's crash) re-forms as soon as the peer is
        reachable again — the join simply keeps failing until then.
        """
        for neighbor in sorted(self.neighbors):
            missed = self._missed_pongs.get(neighbor, 0)
            if missed >= 1:
                # The previous ping went unanswered: feed the breaker so
                # the fan-out stops waiting on this neighbor well before
                # the (slower) drop threshold fires.
                self.record_neighbor_failure(neighbor)
            self._missed_pongs[neighbor] = missed + 1
            if self._missed_pongs[neighbor] > self.config.ping_failure_threshold:
                self._neighbor_lost(neighbor)
            else:
                self.registry.send(neighbor, protocol.REGISTRY_PING)
        for seed in self.registry.seeds:
            if seed not in self.neighbors and seed != self.registry.node_id:
                self.join(seed)

    def handle_pong(self, src: str) -> None:
        """A neighbor answered: reset its failure counter."""
        if src in self.neighbors:
            self._missed_pongs[src] = 0
            self.record_neighbor_success(src)

    def _neighbor_lost(self, neighbor: str) -> None:
        """Failure detector fired: unlink and try to re-wire the network."""
        self.neighbors.discard(neighbor)
        self.known.pop(neighbor, None)
        self._missed_pongs.pop(neighbor, None)
        self.breakers.pop(neighbor, None)
        self.neighbors_lost += 1
        # A crash suspicion is NOT a ring departure: the shard ring keeps
        # the member (health-aware replica selection and hinted handoff
        # mask it) so a flapping registry does not thrash key placement.
        self.registry.on_peer_departed(neighbor, left_ring=False)
        self._reconnect()

    def _reconnect(self) -> None:
        """Keep the registry network connected after a neighbor loss.

        Deterministic policy: join the lowest-id known registry that is
        not already a neighbor. Without signalling the known cache is
        empty and the network may stay split — exactly the degradation E9
        measures.
        """
        candidates = sorted(set(self.known) - self.neighbors - {self.registry.node_id})
        if candidates:
            self.reconnects += 1
            self.join(candidates[0])

    # -- circuit breakers -------------------------------------------------------------

    #: Breaker-state gauge levels (Prometheus-style enum encoding).
    _BREAKER_LEVELS = {BREAKER_OPEN: 2.0, BREAKER_HALF_OPEN: 1.0}

    def _breaker(self, neighbor: str) -> CircuitBreaker:
        breaker = self.breakers.get(neighbor)
        if breaker is None:
            breaker = CircuitBreaker(
                lambda: self.registry.sim.now,
                failure_threshold=self.config.breaker_failure_threshold,
                reset_timeout=self.config.breaker_reset_timeout,
                on_transition=lambda old, new, _n=neighbor:
                    self._on_breaker_transition(_n, old, new),
            )
            self.breakers[neighbor] = breaker
        return breaker

    def _on_breaker_transition(self, neighbor: str, old: str, new: str) -> None:
        """Mirror breaker state into metrics: a per-link state gauge
        (closed=0 / half-open=1 / open=2) and a global flap counter for
        open → half-open → open round trips (failed probes)."""
        network = self.registry.network
        if network is None:
            return
        now = self.registry.sim.now
        gauge = network.metrics.gauge(
            f"breaker.state.{self.registry.node_id}:{neighbor}"
        )
        gauge.set(self._BREAKER_LEVELS.get(new, 0.0), now=now)
        if old == BREAKER_HALF_OPEN and new == BREAKER_OPEN:
            network.metrics.counter("breaker.flaps").inc()

    def record_neighbor_failure(self, neighbor: str) -> None:
        """Feed one failure signal (missed pong, aggregation timeout)."""
        if not self.config.breaker_enabled:
            return
        if self._breaker(neighbor).record_failure():
            self._record_recovery("breaker-open", neighbor=neighbor)

    def record_neighbor_success(self, neighbor: str) -> None:
        """Feed one success signal (pong, query response, join)."""
        if not self.config.breaker_enabled:
            return
        breaker = self.breakers.get(neighbor)
        if breaker is not None and breaker.record_success():
            self._record_recovery("breaker-close", neighbor=neighbor)

    def breaker_allows(self, neighbor: str) -> bool:
        """Whether the fan-out may wait on ``neighbor`` right now.

        Open breakers whose reset timeout elapsed flip to half-open and
        admit the caller as the probe; otherwise the neighbor is skipped
        (and not counted as outstanding by the aggregation).
        """
        if not self.config.breaker_enabled:
            return True
        breaker = self.breakers.get(neighbor)
        if breaker is None:
            return True
        was_open = breaker.state == BREAKER_OPEN
        allowed = breaker.allows()
        if was_open and allowed:
            self._record_recovery("breaker-half-open", neighbor=neighbor)
        return allowed

    def breaker_states(self) -> dict[str, str]:
        """Current breaker state per tracked neighbor (reporting)."""
        return {nid: b.state for nid, b in sorted(self.breakers.items())}

    def _record_recovery(self, kind: str, *, neighbor: str | None = None) -> None:
        if self.registry.network is None:
            return
        self.registry.network.stats.record_recovery(kind)
        trace = self.registry.trace
        if trace is not None:
            attrs = {"neighbor": neighbor} if neighbor is not None else None
            trace.event(
                kind,
                node=self.registry.node_id,
                ctx=self.registry._trace_ctx,
                attrs=attrs,
            )

    # -- signalling -------------------------------------------------------------------

    def _gossip_round(self) -> None:
        """Send our registry list (self + known) to every neighbor."""
        payload = self.registry_list()
        for neighbor in sorted(self.neighbors):
            self.registry.send(neighbor, protocol.REGISTRY_LIST_REPLY, payload)

    def registry_list(self) -> protocol.RegistryListPayload:
        """The signalling payload: ourselves plus every known registry."""
        entries = [self.describe()]
        entries.extend(self.known[rid] for rid in sorted(self.known))
        return protocol.RegistryListPayload(registries=tuple(entries))

    def handle_registry_list(self, payload: protocol.RegistryListPayload) -> None:
        """Merge a received registry list into the known cache."""
        for description in payload.registries:
            self.observe(description)

    # -- gateway election ------------------------------------------------------------

    def lan_registries(self) -> list[str]:
        """Registries known to sit on our LAN, including ourselves."""
        peers = [
            rid for rid, desc in self.known.items()
            if desc.lan_name == self.registry.lan_name
        ]
        peers.append(self.registry.node_id)
        return sorted(set(peers))

    def gateway(self) -> str:
        """The elected WAN gateway for this LAN: lowest registry id."""
        return self.lan_registries()[0]

    def is_gateway(self) -> bool:
        """Whether this registry is its LAN's WAN gateway."""
        return self.gateway() == self.registry.node_id

    # -- forwarding targets ------------------------------------------------------------

    def forward_targets(self, exclude: set[str]) -> list[str]:
        """Neighbors a query should be forwarded to.

        With gateway election enabled, a non-gateway registry keeps its
        same-LAN links but routes WAN-bound traffic through the gateway
        only, avoiding the paper's "redundant queries being forwarded on
        the registry network" when several registries share a LAN.
        """
        targets = set(self.neighbors)
        if self.config.gateway_election and not self.is_gateway():
            lan = self.registry.lan_name
            same_lan = {
                t for t in targets
                if t in self.known and self.known[t].lan_name == lan
            }
            gateway = self.gateway()
            targets = same_lan
            if gateway in self.neighbors:
                targets.add(gateway)
        return sorted(targets - exclude - {self.registry.node_id})
