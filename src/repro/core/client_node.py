"""The client node: discovers registries, queries, falls back, fails over.

"A client node … first has to discover whether there are any registry
nodes available. When a client has obtained a connection to the registry
network, it can issue a query. Based on the response it gets, it may
invoke the service directly."

The client exposes an asynchronous :meth:`ClientNode.discover` returning a
:class:`DiscoveryCall` handle that experiments inspect after running the
simulator. Failure handling follows the paper:

* query timeout → the current registry is presumed dead → fail over to a
  signalling-provided alternative (E9) and retry;
* no registry at all → decentralized LAN multicast fallback (Fig. 3,
  right-hand mode, E6) when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import protocol
from repro.core.bootstrap import RegistryTracker
from repro.core.config import DiscoveryConfig
from repro.core.routing import Router
from repro.descriptions.base import DescriptionModel, ModelRegistry
from repro.descriptions.semantic import SemanticModel
from repro.netsim.messages import Envelope
from repro.netsim.node import Node
from repro.obs.tracing import Span, TraceRecorder
from repro.registry.advertisements import new_uuid
from repro.registry.matching import QueryEvaluator, QueryHit
from repro.semantics.ontology import Ontology
from repro.semantics.profiles import ServiceRequest

#: Attempts before a query gives up on registries entirely. Kept as the
#: historical default; the live budget is ``config.query_retry.max_attempts``.
MAX_ATTEMPTS = 3


@dataclass
class Watch:
    """A standing query: hits arrive as services are published.

    Created by :meth:`ClientNode.watch`. The client keeps the
    subscription alive (periodic re-subscribe, the lease principle) and
    re-establishes it after registry failover.
    """

    sub_id: str
    request: ServiceRequest
    model_id: str
    created_at: float
    hits: list[QueryHit] = field(default_factory=list)
    notified_at: list[float] = field(default_factory=list)
    acked: bool = False
    active: bool = True

    def service_names(self) -> list[str]:
        """Names of all services notified so far, in arrival order."""
        return [hit.advertisement.service_name for hit in self.hits]


@dataclass
class DiscoveryCall:
    """Handle for one discovery operation.

    ``responses`` counts response *messages* received (the decentralized
    "response implosion" metric of E2); ``response_bytes`` their wire
    size; ``responders`` the registries/services that evaluated the query.
    """

    query_id: str
    request: ServiceRequest
    model_id: str
    issued_at: float
    hits: list[QueryHit] = field(default_factory=list)
    completed: bool = False
    via: str = ""
    attempts: int = 1
    ttl: int = 0
    #: The registry the latest attempt was sent to ("" = none/fallback).
    sent_to: str = ""
    responses: int = 0
    response_bytes: int = 0
    responders: int = 0
    completed_at: float = 0.0
    #: Times :meth:`ClientNode._complete` ran for this call — the
    #: invariant checker asserts it never exceeds one.
    completions: int = 0
    #: Set by the synchronous driver when its deadline elapsed first.
    timed_out: bool = False
    #: BUSY rejections received across this call's attempts.
    busy_responses: int = 0
    #: True when the answering registry was overloaded and skipped WAN
    #: fan-out — hits are valid but coverage was best-effort.
    degraded: bool = False
    #: Client-local call index; keys retry jitter (query ids come from a
    #: process-global counter, so they are not stable run to run).
    seq: int = 0
    #: Absolute sim-time budget for registry attempts: a server-suggested
    #: retry delay is never scheduled past this point (satellite fix for
    #: the "retry dies in the timeout instead of failing over" bug).
    deadline: float = float("inf")
    #: Recorder-local trace id of this call's root span (None when the
    #: recorder is unavailable). All retries share it.
    trace_id: int | None = None
    _fallback_batches: list[list[QueryHit]] = field(default_factory=list)
    _span: Span | None = field(default=None, repr=False)

    @property
    def succeeded(self) -> bool:
        """Completed with at least one hit."""
        return self.completed and bool(self.hits)

    @property
    def latency(self) -> float:
        """Seconds from issue to completion (0 while incomplete)."""
        return (self.completed_at - self.issued_at) if self.completed else 0.0

    def service_names(self) -> list[str]:
        """Names of the discovered services, best first."""
        return [hit.advertisement.service_name for hit in self.hits]

    def endpoints(self) -> list[str]:
        """Endpoints to invoke, best first."""
        return [hit.advertisement.endpoint for hit in self.hits]


class ClientNode(Node):
    """A consumer node issuing discovery queries."""

    role = "client"

    def __init__(
        self,
        node_id: str,
        config: DiscoveryConfig,
        models: list[DescriptionModel],
    ) -> None:
        super().__init__(node_id)
        self.config = config
        self.models = ModelRegistry(models)
        self.router = Router(config.routing, self)
        self.tracker = RegistryTracker(self, config,
                                       on_attached=self._on_attached,
                                       router=self.router)
        self.calls: list[DiscoveryCall] = []
        self._by_wire_id: dict[str, DiscoveryCall] = {}
        #: Routing bookkeeping per in-flight registry attempt: wire id →
        #: (target registry, send time). Drained in lock-step with
        #: ``_by_wire_id`` — the invariant checker asserts the subset.
        self._route_meta: dict[str, tuple[str, float]] = {}
        #: Open per-attempt spans keyed by wire id; closed on response,
        #: timeout, or crash.
        self._attempt_spans: dict[str, Span] = {}
        self.watches: dict[str, Watch] = {}
        self.fallback_queries = 0
        self.query_retries = 0
        self.busy_rejections = 0
        self.artifacts_fetched: dict[str, object] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self.tracker.probe()
        self.tracker.start_signalling_refresh()
        # Keep standing queries alive across their lease horizon.
        self.every(self.config.renew_interval, self._refresh_watches)

    def _on_attached(self, registry_id: str) -> None:
        """New registry attachment: re-establish standing queries there."""
        for watch in self.watches.values():
            if watch.active:
                self._send_subscribe(watch, registry_id)

    def on_crash(self) -> None:
        """Fail every in-flight call so bookkeeping drains with the node.

        A crashed client can never receive the responses it is waiting
        for; leaving the calls pending would strand wire-id entries across
        the restart and undercount failures in experiments.
        """
        for wire_id in sorted(self._attempt_spans):
            self._end_attempt(wire_id, status="crashed")
        for call in list(self._by_wire_id.values()):
            if not call.completed:
                self._complete(call, [], via="crashed")
        self._by_wire_id.clear()
        self._route_meta.clear()

    def on_restart(self) -> None:
        self.tracker.current = None
        self.start()

    def on_moved(self, old_lan: str, new_lan: str) -> None:
        """Roamed to a new LAN: drop the old attachment and re-bootstrap.

        The old registry may be unreachable from here (and is certainly no
        longer local); standing queries re-establish on the next
        attachment via the tracker's on_attached hook.
        """
        self.tracker.current = None
        self.tracker.known.clear()
        self.tracker.probe()

    # -- the public discovery API ------------------------------------------------

    def discover(
        self,
        request: ServiceRequest,
        *,
        model_id: str = "semantic",
        ttl: int | None = None,
    ) -> DiscoveryCall:
        """Issue a discovery query; returns immediately with the call handle.

        Run the simulator to let the call complete; then read
        ``call.hits``. ``ttl`` overrides the configured registry-network
        forwarding radius.
        """
        call = DiscoveryCall(
            query_id=new_uuid("q"),
            request=request,
            model_id=model_id,
            issued_at=self.sim.now,
            ttl=self.config.default_ttl if ttl is None else ttl,
            seq=len(self.calls),
            # Worst-case registry-phase budget: every attempt running its
            # full timeout. Server retry hints are clamped to what is left.
            deadline=self.sim.now
            + self.config.query_retry.max_attempts * self.config.query_timeout,
        )
        trace = self.trace
        if trace is not None:
            # The root span of the whole discovery trace; every retry,
            # forward, and (late) response hangs off it.
            call._span = trace.start_span(
                "client.query",
                node=self.node_id,
                attrs={"query": trace.alias(call.query_id), "model": model_id},
            )
            call.trace_id = call._span.trace_id
        self.calls.append(call)
        self._dispatch(call)
        return call

    def _wire_id(self, call: DiscoveryCall) -> str:
        """Retries use fresh wire ids so loop suppression cannot eat them."""
        return f"{call.query_id}/{call.attempts}"

    def _dispatch(self, call: DiscoveryCall) -> None:
        if call.completed:
            # A backoff-delayed retry can race a crash-time completion.
            return
        model = self.models.get(call.model_id)
        query = model.query_from(call.request)
        wire_id = self._wire_id(call)
        payload = protocol.QueryPayload(
            query_id=wire_id,
            model_id=call.model_id,
            query=query,
            max_results=call.request.max_results,
            ttl=call.ttl,
        )
        registry = self.tracker.current
        if registry is not None and self.router.adaptive:
            # Load-aware per-query selection: the attachment stays where
            # it is (publishing, subscriptions), but each query may go to
            # whichever same-LAN sibling looks healthiest right now. The
            # attachment remains the tie-break default, so cold-start
            # behavior keeps the tracker's even hash-spread.
            local = sorted(
                rid for rid, desc in self.tracker.known.items()
                if desc.lan_name == self.lan_name
                and rid not in self.tracker.excluded
            )
            if local:
                default = registry if registry in local else local[0]
                registry = self.router.select(local, default=default)
        if registry is not None:
            # Register the wire id only on paths that await a response —
            # an immediate failure must not strand a map entry.
            self._by_wire_id[wire_id] = call
            self._route_meta[wire_id] = (registry, self.sim.now)
            call.via = f"registry:{registry}"
            call.sent_to = registry
            headers = None
            trace = self.trace
            if trace is not None and call._span is not None:
                attempt = trace.start_span(
                    "client.attempt",
                    node=self.node_id,
                    ctx=call._span.context,
                    attrs={"attempt": call.attempts, "registry": registry},
                )
                self._attempt_spans[wire_id] = attempt
                headers = {}
                TraceRecorder.inject(headers, attempt.context)
            self.send(registry, protocol.QUERY, payload,
                      payload_type=call.model_id, headers=headers)
            self.after(self.config.query_timeout, lambda: self._query_timed_out(call, wire_id))
        elif self.config.fallback_enabled:
            self._fallback(call, payload)
        else:
            self._complete(call, [], via="failed")

    def _end_attempt(
        self, wire_id: str, *, status: str = "ok",
        attrs: dict[str, object] | None = None,
    ) -> None:
        """Close the attempt span registered under ``wire_id``, if any."""
        span = self._attempt_spans.pop(wire_id, None)
        if span is not None and self.trace is not None:
            self.trace.end_span(span, status=status, attrs=attrs)

    def _query_timed_out(self, call: DiscoveryCall, wire_id: str) -> None:
        if call.completed or self._by_wire_id.get(wire_id) is not call:
            return
        del self._by_wire_id[wire_id]
        meta = self._route_meta.pop(wire_id, None)
        if meta is not None:
            self.router.on_timeout(meta[0])
        self._end_attempt(wire_id, status="timeout")
        call.attempts += 1
        if self.tracker.current == call.sent_to:
            # The registry this attempt used is still "current": blame it
            # and fail over.
            replacement = self.tracker.registry_failed()
        else:
            # A concurrent failover already replaced it; don't evict the
            # (possibly healthy) new attachment — just retry there.
            replacement = self.tracker.current
        policy = self.config.query_retry
        if replacement is not None and call.attempts <= policy.max_attempts:
            # Capped exponential backoff with deterministic jitter keyed
            # by the call, so concurrent clients de-synchronize instead of
            # stampeding the replacement registry.
            self.query_retries += 1
            if self.network is not None:
                self.network.stats.record_retry("query")
            delay = policy.delay(
                call.attempts - 1, seed=self.sim.seed,
                key=f"{self.node_id}/{call.seq}",
            )
            trace = self.trace
            if trace is not None and call._span is not None:
                trace.event(
                    "query.retry",
                    node=self.node_id,
                    ctx=call._span.context,
                    attrs={"attempt": call.attempts, "delay": delay},
                )
            self.after(delay, lambda: self._dispatch(call))
        elif self.config.fallback_enabled:
            model = self.models.get(call.model_id)
            payload = protocol.QueryPayload(
                query_id=self._wire_id(call),
                model_id=call.model_id,
                query=model.query_from(call.request),
                max_results=call.request.max_results,
            )
            self._fallback(call, payload)
        else:
            self._complete(call, [], via="failed")

    # -- decentralized fallback ------------------------------------------------------

    def _fallback(self, call: DiscoveryCall, payload: protocol.QueryPayload) -> None:
        """Fig. 3 right-hand mode: multicast the query, collect replies."""
        self.fallback_queries += 1
        call.via = "fallback"
        wire_id = payload.query_id
        self._by_wire_id[wire_id] = call
        headers = None
        trace = self.trace
        if trace is not None and call._span is not None:
            trace.event(
                "client.fallback",
                node=self.node_id,
                ctx=call._span.context,
                attrs={"attempt": call.attempts},
            )
            headers = {}
            TraceRecorder.inject(headers, call._span.context)
        self.multicast(protocol.DECENTRAL_QUERY, payload,
                       payload_type=call.model_id, headers=headers)
        self.after(
            self.config.fallback_timeout,
            lambda: self._fallback_done(call, wire_id),
        )

    def handle_decentral_response(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ResponsePayload):
            return
        call = self._by_wire_id.get(payload.query_id)
        if call is None or call.completed:
            return
        call.responses += 1
        call.response_bytes += envelope.size_bytes
        call.responders += payload.responders
        call._fallback_batches.append(list(payload.hits))

    def _fallback_done(self, call: DiscoveryCall, wire_id: str) -> None:
        # Drain the wire-id entry unconditionally: even a call completed
        # through another path must not leave its fallback entry behind.
        self._by_wire_id.pop(wire_id, None)
        if call.completed:
            return
        merged = QueryEvaluator.merge(
            call._fallback_batches, max_results=call.request.max_results
        )
        self._complete(call, merged, via="fallback")

    # -- responses ----------------------------------------------------------------------

    def handle_query_response(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ResponsePayload):
            return
        call = self._by_wire_id.pop(payload.query_id, None)
        meta = self._route_meta.pop(payload.query_id, None)
        if meta is not None:
            # Passive health: the answered attempt's round-trip plus the
            # registry's piggybacked queue depth feed target selection.
            self.router.on_response(
                envelope.src,
                rtt=self.sim.now - meta[1],
                queue_depth=payload.queue_depth,
            )
        if call is None or call.completed:
            return
        self._end_attempt(payload.query_id, attrs={"hits": len(payload.hits)})
        call.responses += 1
        call.response_bytes += envelope.size_bytes
        call.responders += payload.responders
        call.degraded = payload.degraded
        self._complete(call, list(payload.hits), via=call.via)

    def handle_busy(self, envelope: Envelope) -> None:
        """The registry shed this query attempt: back off on its schedule.

        The BUSY's ``retry_after`` hint replaces our own exponential
        backoff for this attempt (the server knows its backlog better
        than we can guess). Repeated BUSYs from the same registry mean it
        is *saturated*, not dead — after the second one we fail over to a
        sibling registry; with the attempt budget spent, the decentralized
        LAN fallback answers from the services directly.
        """
        payload = envelope.payload
        if not isinstance(payload, protocol.BusyPayload):
            return
        # A BUSY is a health signal about its sender whatever happens to
        # the call below (no-op under the static strategy).
        self.router.on_busy(
            envelope.src,
            retry_after=payload.retry_after,
            queue_depth=payload.queue_depth,
        )
        call = self._by_wire_id.get(payload.request_id)
        if call is None or call.completed:
            # Late BUSY: the attempt already timed out, completed, or was
            # re-keyed by a retry — nothing to account or resurrect.
            return
        if call.via == "fallback":
            # A saturated registry also sheds DECENTRAL_QUERY multicasts,
            # but the fallback completes on its own timer from whatever
            # the service nodes answered — nothing to retry, and the
            # shared busy_rejections counter must not double-count a call
            # that already paid for its registry-path rejections.
            return
        wire_id = payload.request_id
        del self._by_wire_id[wire_id]
        self._route_meta.pop(wire_id, None)
        self._end_attempt(wire_id, status="busy")
        self.busy_rejections += 1
        call.busy_responses += 1
        call.attempts += 1
        policy = self.config.query_retry
        remaining = call.deadline - self.sim.now
        if call.attempts <= policy.max_attempts and remaining > 0:
            retry_after: float | None = payload.retry_after
            if retry_after > remaining:
                # The server's back-off hint cannot fit in the remaining
                # deadline: waiting it out would just die in the query
                # timeout. Fail over immediately and retry on our own
                # (budget-clamped) schedule instead.
                if self.tracker.current == call.sent_to:
                    self.tracker.registry_failed()
                retry_after = None
            elif call.busy_responses >= 2 and self.tracker.current == call.sent_to:
                # Two rejections from the same attachment: it is staying
                # saturated, move to a sibling registry if one exists.
                self.tracker.registry_failed()
            self.query_retries += 1
            if self.network is not None:
                self.network.stats.record_retry("query-busy")
            delay = policy.delay(
                call.attempts - 1, seed=self.sim.seed,
                key=f"{self.node_id}/{call.seq}",
                retry_after=retry_after,
                budget=remaining,
            )
            trace = self.trace
            if trace is not None and call._span is not None:
                trace.event(
                    "query.busy",
                    node=self.node_id,
                    ctx=call._span.context,
                    attrs={"attempt": call.attempts, "retry_after": delay},
                )
            self.after(delay, lambda: self._dispatch(call))
        elif self.config.fallback_enabled:
            model = self.models.get(call.model_id)
            fallback_payload = protocol.QueryPayload(
                query_id=self._wire_id(call),
                model_id=call.model_id,
                query=model.query_from(call.request),
                max_results=call.request.max_results,
            )
            self._fallback(call, fallback_payload)
        else:
            self._complete(call, [], via="failed")

    def _complete(self, call: DiscoveryCall, hits: list[QueryHit], *, via: str) -> None:
        call.completions += 1
        call.hits = hits
        call.via = via
        call.completed = True
        call.completed_at = self.sim.now
        if self.network is not None:
            self.network.metrics.histogram("query.e2e_latency").observe(call.latency)
            if self.network.health.active:
                self.network.health.record_request(
                    "query",
                    ok=via not in ("failed", "crashed"),
                    latency=call.latency,
                )
        if call._span is not None and self.trace is not None:
            status = via if via in ("failed", "crashed") else ("ok" if hits else "empty")
            self.trace.end_span(
                call._span,
                status=status,
                attrs={"via": via, "hits": len(hits), "attempts": call.attempts},
            )

    # -- standing queries (notification extension) ----------------------------------------

    def watch(self, request: ServiceRequest, *, model_id: str = "semantic") -> Watch:
        """Register interest in future matching advertisements.

        Returns a :class:`Watch` that accumulates notified hits. The
        subscription is leased: this client refreshes it periodically and
        re-registers it after failover.
        """
        watch = Watch(
            sub_id=new_uuid("sub"),
            request=request,
            model_id=model_id,
            created_at=self.sim.now,
        )
        self.watches[watch.sub_id] = watch
        registry = self.tracker.current
        if registry is not None:
            self._send_subscribe(watch, registry)
        return watch

    def unwatch(self, watch: Watch) -> None:
        """Cancel a standing query."""
        watch.active = False
        registry = self.tracker.current
        if registry is not None:
            self.send(registry, protocol.UNSUBSCRIBE,
                      protocol.UnsubscribePayload(sub_id=watch.sub_id))

    def _send_subscribe(self, watch: Watch, registry: str) -> None:
        model = self.models.get(watch.model_id)
        self.send(
            registry,
            protocol.SUBSCRIBE,
            protocol.SubscribePayload(
                sub_id=watch.sub_id,
                model_id=watch.model_id,
                query=model.query_from(watch.request),
                duration=self.config.lease_duration,
            ),
            payload_type=watch.model_id,
        )

    def _refresh_watches(self) -> None:
        registry = self.tracker.current
        if registry is None:
            return
        for watch in self.watches.values():
            if watch.active:
                self._send_subscribe(watch, registry)

    def handle_subscribe_ack(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, protocol.SubscribeAck):
            watch = self.watches.get(payload.sub_id)
            if watch is not None:
                watch.acked = True

    def handle_notify(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.NotifyPayload):
            return
        watch = self.watches.get(payload.sub_id)
        if watch is None or not watch.active:
            return
        # De-duplicate by advertisement UUID (failover re-subscription can
        # replay publishes).
        known = {hit.advertisement.ad_id for hit in watch.hits}
        if payload.hit.advertisement.ad_id in known:
            return
        watch.hits.append(payload.hit)
        watch.notified_at.append(self.sim.now)

    # -- artifact fetching (§4.6) ----------------------------------------------------------

    def fetch_artifact(self, name: str) -> None:
        """Ask the current registry for an artifact (e.g. an ontology).

        On arrival, ontologies are automatically attached to this client's
        semantic description model, enabling local evaluation (E12).
        """
        registry = self.tracker.current
        if registry is None:
            return
        self.send(
            registry,
            protocol.ARTIFACT_REQUEST,
            protocol.ArtifactRequestPayload(artifact_name=name),
        )

    def handle_artifact_reply(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ArtifactReplyPayload) or not payload.found:
            return
        self.artifacts_fetched[payload.artifact_name] = payload.artifact
        if isinstance(payload.artifact, Ontology) and self.models.supports("semantic"):
            model = self.models.get("semantic")
            if isinstance(model, SemanticModel):
                model.attach_ontology(payload.artifact)

    # -- registry discovery -----------------------------------------------------------------

    def handle_registry_probe_reply(self, envelope: Envelope) -> None:
        self.tracker.handle_registry_probe_reply(envelope)

    def handle_registry_beacon(self, envelope: Envelope) -> None:
        self.tracker.handle_registry_beacon(envelope)

    def handle_registry_list_reply(self, envelope: Envelope) -> None:
        self.tracker.handle_registry_list_reply(envelope)
