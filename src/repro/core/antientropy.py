"""Anti-entropy reconciliation for replicated registry stores.

The paper's registries are soft-state super-peers that "dynamically
connect and disconnect to the system" (§4.9). Under replication
cooperation that dynamism leaves replicas divergent after every partition
heal, registry restart, or standby promotion: an advertisement published
on one side of a partition reaches the other side only when its lease
happens to be renewed. This module closes that gap with classic
anti-entropy:

* each registry can render a **store digest** — ``(ad_id, version,
  epoch)`` per live advertisement plus ``(ad_id, version)`` tombstones for
  recent explicit removals — a few dozen bytes per entry;
* neighbors exchange digests on a periodic round and on every federation
  (re)join, then **delta-pull** only the missing or stale advertisements
  (and push the ones the peer lacks), so two replicas reconverge within
  one digest round-trip and a whole federation within its diameter in
  rounds;
* **tombstones** keep a removed advertisement from being resurrected by a
  stale replica: the digest carries the removal, the peer deletes its
  copy, and neither side will pull or absorb the advertisement at or
  below the tombstoned version again.

Anti-entropy is *pairwise and pull-based*: synced advertisements are not
re-flooded (unlike ``AD_FORWARD`` pushes), so a round costs O(digest)
per link plus exactly the missing deltas. The periodic round spreads
updates epidemically — K rounds cover a federation of diameter K, the
bound the convergence invariant in :mod:`repro.core.invariants` asserts.

Only meaningful under ``COOPERATION_REPLICATE_ADS``; forwarding registries
hold disjoint stores by design and never reconcile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.registry_node import RegistryNode
    from repro.core.config import DiscoveryConfig


class AntiEntropy:
    """Digest bookkeeping and reconciliation rounds for one registry."""

    def __init__(self, registry: "RegistryNode", config: "DiscoveryConfig") -> None:
        self.registry = registry
        self.config = config
        #: Last known origin epoch per stored advertisement. Epochs come
        #: from the home registry's lease clock (see
        #: ``RegistryNode._lease_epoch``) so every replica converges on
        #: the same ``(version, epoch)`` coordinates per advertisement.
        self.epochs: dict[str, int] = {}
        #: Explicitly removed advertisements: ad_id -> (version, noted_at).
        #: Pruned after ``2 * lease_duration`` — by then every replica's
        #: lease has lapsed on its own.
        self.tombstones: dict[str, tuple[int, float]] = {}
        self.rounds_run = 0
        self.pulls_sent = 0
        self.ads_sent = 0
        self.ads_applied = 0
        self.removals_applied = 0
        self.resurrections_blocked = 0
        self.tombstones_pruned = 0

    # -- lifecycle ---------------------------------------------------------

    def enabled(self) -> bool:
        """Whether reconciliation is active for this deployment."""
        return self.config.antientropy_enabled()

    def start(self) -> None:
        """Arm the periodic digest round (no-op when disabled)."""
        if self.enabled():
            assert self.config.antientropy_interval is not None
            self.registry.every(self.config.antientropy_interval, self.run_round)

    def reset(self) -> None:
        """Drop all volatile reconciliation state (registry crash)."""
        self.epochs.clear()
        self.tombstones.clear()

    # -- store bookkeeping (called by the registry node) -------------------

    def note_stored(self, ad_id: str, epoch: int) -> None:
        """An advertisement was stored/refreshed with origin ``epoch``."""
        if epoch > self.epochs.get(ad_id, -1):
            self.epochs[ad_id] = epoch
        self.tombstones.pop(ad_id, None)

    def note_dropped(self, ad_id: str) -> None:
        """An advertisement left the store without an explicit removal
        (lease expiry, capacity eviction): no tombstone — expiry is
        already convergent, every replica's lease lapses on its own."""
        self.epochs.pop(ad_id, None)

    def note_removed(self, ad_id: str, version: int) -> None:
        """An advertisement was explicitly removed: tombstone it so a
        stale replica cannot resurrect it through reconciliation."""
        self.epochs.pop(ad_id, None)
        self.tombstones[ad_id] = (version, self._now())

    def blocked(self, ad_id: str, version: int) -> bool:
        """Whether absorbing ``(ad_id, version)`` would resurrect a
        removed advertisement (version at or below the tombstone)."""
        tomb = self.tombstones.get(ad_id)
        return tomb is not None and version <= tomb[0]

    def _now(self) -> float:
        return self.registry.sim.now if self.registry.network is not None else 0.0

    def _prune_tombstones(self) -> None:
        """Bound tombstone growth: age horizon plus a hard size cap.

        The age prune drops tombstones older than ``2 * lease_duration`` —
        by then every replica's lease lapsed on its own. Under
        remove-heavy churn that horizon alone still admits unbounded
        growth, so ``antientropy_tombstone_cap`` evicts oldest-first past
        the cap — but never a tombstone younger than the
        *resurrection-safe floor* ``lease_duration + 2 * purge_interval``:
        after an explicit removal the origin service stops renewing, so
        every replica's lease lapses within one ``lease_duration``, and
        two purge sweeps clear the ad everywhere. A tombstone older than
        the floor guards nothing a lease hasn't already killed, so
        evicting it cannot resurrect the ad; the map may transiently
        exceed the cap rather than evict a still-needed tombstone.
        """
        now = self._now()
        horizon = now - 2 * self.config.lease_duration
        stale = [ad_id for ad_id, (_v, at) in self.tombstones.items() if at < horizon]
        for ad_id in stale:
            del self.tombstones[ad_id]
        self.tombstones_pruned += len(stale)
        cap = self.config.antientropy_tombstone_cap
        if cap is None or len(self.tombstones) <= cap:
            return
        floor = now - (self.config.lease_duration + 2 * self.config.purge_interval)
        evictable = sorted(
            (at, ad_id)
            for ad_id, (_v, at) in self.tombstones.items()
            if at < floor
        )
        excess = len(self.tombstones) - cap
        for _at, ad_id in evictable[:excess]:
            del self.tombstones[ad_id]
            self.tombstones_pruned += 1

    # -- digests -----------------------------------------------------------

    def digest(self, peer: str | None = None) -> protocol.DigestPayload:
        """This registry's current store digest.

        Under sharded federation a digest addressed to ``peer`` covers
        only the co-owned replica ranges — the per-round digest cost
        scales with the shared shards (~K·R/S ads), not the whole store.
        """
        self._prune_tombstones()
        shard = getattr(self.registry, "shard", None)
        scoped = peer is not None and shard is not None and shard.active()

        def covered(ad_id: str) -> bool:
            return not scoped or shard.co_owned(ad_id, peer)

        entries = tuple(
            (ad.ad_id, ad.version, self.epochs.get(ad.ad_id, 0))
            for ad in self.registry.store.all()
            if covered(ad.ad_id)
        )
        tombstones = tuple(
            (ad_id, version)
            for ad_id, (version, _at) in sorted(self.tombstones.items())
            if covered(ad_id)
        )
        return protocol.DigestPayload(entries=entries, tombstones=tombstones)

    def run_round(self) -> None:
        """One periodic round: send our digest to every neighbor."""
        if not self.enabled():
            return
        sharded = self.registry.shard.active()
        if sharded:
            # Per-shard rounds: gossip only with registries sharing a
            # replica range, each digest scoped to the shared shards.
            # The stray sweep runs first so the digests reflect the
            # post-placement store.
            self.registry.shard.sweep_strays()
            neighbors = sorted(self.registry.shard.shard_peers())
        else:
            neighbors = sorted(self.registry.federation.neighbors)
        if not neighbors:
            return
        self.rounds_run += 1
        self._record("antientropy-round")
        network = self.registry.network
        if network is not None and network.health.active:
            network.health.feed_liveness("antientropy-round", self.registry.node_id)
        if sharded:
            for neighbor in neighbors:
                self.registry.send(
                    neighbor, protocol.ANTIENTROPY_DIGEST, self.digest(neighbor)
                )
        else:
            payload = self.digest()
            for neighbor in neighbors:
                self.registry.send(neighbor, protocol.ANTIENTROPY_DIGEST, payload)

    def sync_with(self, peer: str) -> None:
        """Kick off a digest exchange with one peer (join, promotion)."""
        if not self.enabled() or peer == self.registry.node_id:
            return
        self.registry.send(peer, protocol.ANTIENTROPY_DIGEST, self.digest(peer))

    # -- message handling --------------------------------------------------

    def handle_digest(self, src: str, payload: protocol.DigestPayload) -> None:
        """Compare a peer's digest against our store; pull and push deltas.

        One received digest drives both directions: we pull what the peer
        has and we lack (or hold stale), and push what we have and the
        peer lacks (or holds stale) — so a single digest send reconciles
        the pair without waiting for the peer's next round.
        """
        if not self.enabled():
            return
        store = self.registry.store
        # Adopt the peer's tombstones: delete our replica of anything the
        # peer saw removed, and remember the removal ourselves.
        for ad_id, version in payload.tombstones:
            if self.blocked(ad_id, version):
                continue
            existing = store.get(ad_id) if ad_id in store else None
            if existing is None and ad_id not in self.tombstones:
                # Nothing to delete and no staler tombstone to bump:
                # adopting here would re-stamp a tombstone a peer may
                # just have pruned, and the mutual re-seeding keeps the
                # pair perpetually young — unbounded growth under churn.
                # Skipping is lease-safe: should a stale third replica
                # push the corpse later, its shipped *remaining* lease
                # (the origin stopped renewing at removal) expires it
                # within one lease_duration anyway.
                continue
            self.tombstones[ad_id] = (version, self._now())
            if existing is not None and existing.version <= version:
                store.discard(ad_id)
                self.epochs.pop(ad_id, None)
                if self.registry.leases is not None:
                    self.registry.leases.cancel_for_ad(ad_id)
                self.removals_applied += 1
                self._record("antientropy-removal")

        theirs = {ad_id: (version, epoch) for ad_id, version, epoch in payload.entries}
        their_tombs = dict(payload.tombstones)
        shard = getattr(self.registry, "shard", None)
        sharded = shard is not None and shard.active()

        wants = sorted(
            ad_id
            for ad_id, (version, epoch) in theirs.items()
            if not self.blocked(ad_id, version)
            and (not sharded or shard.owns_local(ad_id))
            and (
                ad_id not in store
                or (version, epoch)
                > (store.get(ad_id).version, self.epochs.get(ad_id, 0))
            )
        )
        if wants:
            self.pulls_sent += 1
            self._record("antientropy-pull")
            self.registry.send(
                src, protocol.ANTIENTROPY_PULL,
                protocol.DigestPullPayload(ad_ids=tuple(wants)),
            )

        push = [
            ad for ad in store.all()
            if ad.version > their_tombs.get(ad.ad_id, -1)
            and (not sharded or shard.co_owned(ad.ad_id, src))
            and (
                ad.ad_id not in theirs
                or (ad.version, self.epochs.get(ad.ad_id, 0)) > theirs[ad.ad_id]
            )
        ]
        if push:
            self._send_ads(src, [ad.ad_id for ad in push])

    def handle_pull(self, src: str, payload: protocol.DigestPullPayload) -> None:
        """A peer asked for advertisements our digest showed it lacks."""
        if not self.enabled():
            return
        self._send_ads(src, payload.ad_ids)

    def _send_ads(self, dst: str, ad_ids) -> None:
        """Ship full advertisements with their *remaining* lease time."""
        store = self.registry.store
        leases = self.registry.leases
        now = self._now()
        entries = []
        for ad_id in sorted(set(ad_ids)):
            if ad_id not in store:
                continue
            duration = self.config.lease_duration
            if self.config.leasing_enabled and leases is not None:
                lease = leases.lease_for_ad(ad_id)
                if lease is None:
                    continue
                duration = lease.expires_at - now
                if duration <= 0:
                    continue
            entries.append(
                protocol.AdForwardPayload(
                    advertisement=store.get(ad_id),
                    lease_duration=duration,
                    epoch=self.epochs.get(ad_id, 0),
                )
            )
        if not entries:
            return
        self.ads_sent += len(entries)
        self._record("antientropy-ads-sent", len(entries))
        self.registry.send(dst, protocol.ANTIENTROPY_ADS,
                           protocol.SyncAdsPayload(ads=tuple(entries)))

    def handle_ads(self, src: str, payload: protocol.SyncAdsPayload) -> None:
        """Absorb pulled/pushed advertisements (no onward flooding)."""
        if not self.enabled():
            return
        for entry in payload.ads:
            if self.registry._absorb_replica(entry):
                self.ads_applied += 1
                self._record("antientropy-ads-applied")

    # -- reporting ---------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Reconciliation counters for experiment rows."""
        return {
            "rounds_run": self.rounds_run,
            "pulls_sent": self.pulls_sent,
            "ads_sent": self.ads_sent,
            "ads_applied": self.ads_applied,
            "removals_applied": self.removals_applied,
            "resurrections_blocked": self.resurrections_blocked,
            "tombstones": len(self.tombstones),
            "tombstones_pruned": self.tombstones_pruned,
        }

    def _record(self, kind: str, n: int = 1) -> None:
        if self.registry.network is None:
            return
        self.registry.network.stats.record_recovery(kind, n)
        trace = self.registry.trace
        if trace is not None:
            trace.event(
                kind,
                node=self.registry.node_id,
                ctx=self.registry._trace_ctx,
                attrs={"n": n},
            )
