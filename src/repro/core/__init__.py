"""The paper's service discovery architecture.

This package implements §4 of the paper: the three roles (client, service,
registry) as protocol agents over :mod:`repro.netsim`, autonomous registry
federation with signalling and gateway election, registry discovery
(active probes, passive beacons, manual seeding), leasing-based
advertisement maintenance, pluggable-payload query forwarding (flooding,
expanding ring, random walk) with query-id loop avoidance, the
decentralized LAN fallback mode, and the ontology repository.

Entry point for most users: :class:`~repro.core.system.DiscoverySystem`.
"""

from repro.core.client_node import ClientNode, DiscoveryCall, Watch
from repro.core.config import (
    COOPERATION_FORWARD_QUERIES,
    COOPERATION_REPLICATE_ADS,
    DiscoveryConfig,
    STRATEGY_EXPANDING_RING,
    STRATEGY_FLOODING,
    STRATEGY_INFORMED,
    STRATEGY_RANDOM_WALK,
)
from repro.core.invariants import assert_invariants, check_invariants
from repro.core.mediation import MediatedResult, MediationPlan, MediationPlanner
from repro.core.registry_node import RegistryNode
from repro.core.retry import RetryPolicy
from repro.core.service_node import ServiceNode
from repro.core.standby import StandbyRegistry
from repro.core.system import DiscoverySystem, make_models

__all__ = [
    "COOPERATION_FORWARD_QUERIES",
    "COOPERATION_REPLICATE_ADS",
    "ClientNode",
    "DiscoveryCall",
    "DiscoveryConfig",
    "DiscoverySystem",
    "MediatedResult",
    "MediationPlan",
    "MediationPlanner",
    "RegistryNode",
    "RetryPolicy",
    "STRATEGY_EXPANDING_RING",
    "STRATEGY_FLOODING",
    "STRATEGY_INFORMED",
    "STRATEGY_RANDOM_WALK",
    "ServiceNode",
    "StandbyRegistry",
    "Watch",
    "assert_invariants",
    "check_invariants",
    "make_models",
]
