"""The service node: publishes, renews, republishes, survives failover.

"Service nodes … are responsible for obtaining a connection to the
registry network to be able to publish the service description of the
services it hosts … periodic messages indicating that services are still
alive will be important … Republishing of updated service advertisements
is therefore likely to occur more frequently than with simpler service
description mechanisms … should the registry node disappear, the service
node must try to find another connection point to the registry network
and publish its advertisement there."

A service node may publish the *same* capability under several description
models simultaneously ("it is even possible to describe services using
different service description languages and to publish these") — one
advertisement per model, each with its own lease.

In decentralized LAN mode (Fig. 3, right) the service node answers
multicast queries for itself, evaluating them against its own
descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core import protocol
from repro.core.bootstrap import RegistryTracker
from repro.core.config import DiscoveryConfig
from repro.core.routing import Router
from repro.descriptions.base import DescriptionModel, ModelRegistry
from repro.netsim.messages import Envelope
from repro.netsim.node import Node
from repro.registry.advertisements import Advertisement, new_uuid
from repro.registry.matching import QueryHit
from repro.semantics.profiles import ServiceProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.health import HealthMonitor


@dataclass
class PublishedAd:
    """Book-keeping for one advertisement this node maintains."""

    model_id: str
    ad_id: str = ""
    lease_id: str = ""
    registry: str = ""
    acked: bool = False
    renew_outstanding: bool = False


class ServiceNode(Node):
    """A provider node hosting one service capability."""

    role = "service"

    def __init__(
        self,
        node_id: str,
        config: DiscoveryConfig,
        profile: ServiceProfile,
        models: list[DescriptionModel],
        *,
        endpoint: str = "",
    ) -> None:
        super().__init__(node_id)
        self.config = config
        self.profile = profile
        self.models = ModelRegistry(models)
        self.endpoint = endpoint or f"svc://{node_id}"
        self.router = Router(config.routing, self)
        self.tracker = RegistryTracker(
            self, config, on_attached=self._on_attached, router=self.router
        )
        #: Renew send times by lease id (latest send wins): the ack's
        #: round-trip is a passive latency sample for the router.
        self._renew_sent_at: dict[str, float] = {}
        #: Publish send times by ad id (latest send wins) — round-trip
        #: latency samples for the health layer's PUBLISH objective.
        self._publish_sent_at: dict[str, float] = {}
        self._published: dict[str, PublishedAd] = {
            model_id: PublishedAd(model_id=model_id) for model_id in self.models.model_ids()
        }
        self._descriptions = self._describe_all()
        self._attached_at: float | None = None
        self.publishes_sent = 0
        self.republish_events = 0
        self.publish_retries = 0
        self.renew_retries = 0
        #: BUSY rejections honored by deferring on the server's hint.
        self.busy_deferrals = 0

    def _health(self) -> "HealthMonitor | None":
        """The run's health monitor, or None when the layer is off."""
        if self.network is not None and self.network.health.active:
            return self.network.health
        return None

    def _describe_all(self) -> dict[str, object]:
        return {
            model_id: self.models.get(model_id).describe(self.profile, self.endpoint)
            for model_id in self.models.model_ids()
        }

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Bootstrap: find a registry, then keep leases alive."""
        self.tracker.probe()
        self.tracker.start_signalling_refresh()
        self.every(self.config.renew_interval, self._renew_tick)

    def on_restart(self) -> None:
        """Restart with no registry attachment and fresh advertisements."""
        self.tracker.current = None
        for record in self._published.values():
            record.acked = False
            record.renew_outstanding = False
        self.start()

    def on_moved(self, old_lan: str, new_lan: str) -> None:
        """Roamed to a new LAN: find a local registry and republish there.

        The advertisements at the previous registry lapse with their
        leases — roaming is indistinguishable from a crash as far as the
        old registry is concerned, which is exactly how the paper's soft-
        state design wants it.
        """
        self.tracker.current = None
        self.tracker.known.clear()
        self.tracker.excluded.clear()
        for record in self._published.values():
            record.acked = False
            record.renew_outstanding = False
        self.tracker.probe()

    def deregister(self) -> None:
        """Graceful shutdown: explicitly remove our advertisements.

        This is the *only* cleanup path available to systems without
        leasing (the UDDI shortcoming); crash-stop departures skip it.
        """
        registry = self.tracker.current
        if registry is None:
            return
        for record in self._published.values():
            if record.acked and record.ad_id:
                self.send(registry, protocol.REMOVE,
                          protocol.RemovePayload(ad_id=record.ad_id))
                record.acked = False

    # -- publishing --------------------------------------------------------------

    def _on_attached(self, registry_id: str) -> None:
        self._attached_at = self.sim.now
        self._publish_all(registry_id)

    def _publish_all(self, registry_id: str) -> None:
        self.republish_events += 1
        for model_id, record in sorted(self._published.items()):
            record.registry = registry_id
            record.acked = False
            record.renew_outstanding = False
            if not record.ad_id:
                record.ad_id = new_uuid("ad")
            self.publishes_sent += 1
            self._send_publish(registry_id, record)
            self._arm_publish_retry(record, registry_id, attempt=1)

    def _send_publish(self, registry_id: str, record: PublishedAd) -> None:
        self._publish_sent_at[record.ad_id] = self.sim.now
        self.send(
            registry_id,
            protocol.PUBLISH,
            protocol.PublishPayload(
                service_node=self.node_id,
                service_name=self.profile.service_name,
                endpoint=self.endpoint,
                model_id=record.model_id,
                description=self._descriptions[record.model_id],
                ad_id=record.ad_id,
            ),
            payload_type=record.model_id,
        )

    def _arm_publish_retry(self, record: PublishedAd, registry_id: str,
                           attempt: int) -> None:
        """Retransmit an unacked publish with capped exponential backoff.

        A publish lost on a lossy link used to stay silent for almost a
        whole renew interval before the failover heuristic noticed;
        retrying recovers within seconds without evicting a healthy
        registry. Exhaustion hands the case back to the renew-tick
        failover heuristic unchanged.
        """
        policy = self.config.publish_retry
        if attempt > policy.max_attempts:
            return
        delay = policy.delay(
            attempt, seed=self.sim.seed,
            key=f"{self.node_id}/{record.model_id}/publish",
        )

        def maybe_resend() -> None:
            if record.acked or record.registry != registry_id:
                return
            if self.tracker.current != registry_id:
                return
            self.publish_retries += 1
            if self.network is not None:
                self.network.stats.record_retry("publish")
            self._send_publish(registry_id, record)
            self._arm_publish_retry(record, registry_id, attempt + 1)

        self.after(delay, maybe_resend)

    def handle_publish_ack(self, envelope: Envelope) -> None:
        ack = envelope.payload
        if not isinstance(ack, protocol.PublishAck):
            return
        record = self._published.get(ack.model_id)
        if record is None or record.registry != envelope.src:
            return
        sent_at = self._publish_sent_at.pop(record.ad_id, None)
        health = self._health()
        if health is not None:
            health.record_request(
                "publish", ok=True,
                latency=(self.sim.now - sent_at) if sent_at is not None else 0.0,
            )
        record.ad_id = ack.ad_id
        record.lease_id = ack.lease_id
        record.acked = True
        record.renew_outstanding = False

    def update_profile(self, profile: ServiceProfile) -> None:
        """The capability changed (e.g. coverage area): republish.

        "Advertisement content, such as coverage area information, could
        change frequently in dynamic environments."
        """
        self.profile = profile
        self._descriptions = self._describe_all()
        if self.tracker.current is not None:
            self._publish_all(self.tracker.current)

    # -- leases ---------------------------------------------------------------------

    def _renew_tick(self) -> None:
        registry = self.tracker.current
        if registry is None:
            self.tracker.probe()
            return
        # Two registry-death signals: a renewal round that never got
        # acked, or a publish that has gone a whole renew interval without
        # its ack (we may have attached to an alternative that was itself
        # already dead). Either way: fail over and republish.
        stale_renew = any(r.renew_outstanding for r in self._published.values())
        publish_unacked = (
            any(not r.acked for r in self._published.values())
            and self._attached_at is not None
            and self.sim.now - self._attached_at >= 0.9 * self.config.renew_interval
        )
        if stale_renew or publish_unacked:
            self.router.on_timeout(registry)
            self.tracker.registry_failed()
            return
        for record in sorted(self._published.values(), key=lambda r: r.model_id):
            if record.acked and record.lease_id:
                record.renew_outstanding = True
                self._send_renew(registry, record)
                self._arm_renew_retry(record, registry, record.lease_id, attempt=1)

    def _send_renew(self, registry_id: str, record: PublishedAd) -> None:
        self._renew_sent_at[record.lease_id] = self.sim.now
        self.send(
            registry_id,
            protocol.RENEW,
            protocol.RenewPayload(lease_id=record.lease_id, ad_id=record.ad_id),
        )

    def _arm_renew_retry(self, record: PublishedAd, registry_id: str,
                         lease_id: str, attempt: int) -> None:
        """Retransmit an unanswered renew before the next tick fails over.

        A single lost RENEW used to look identical to a dead registry at
        the next tick (``stale_renew``); a couple of quick retransmissions
        let transient loss resolve without tearing down the attachment.
        The failover heuristic is untouched — it still fires if every
        retry drowns.
        """
        policy = self.config.renew_retry
        if attempt > policy.max_attempts:
            return
        delay = policy.delay(
            attempt, seed=self.sim.seed,
            key=f"{self.node_id}/{record.model_id}/renew",
        )

        def maybe_resend() -> None:
            if not record.renew_outstanding:
                return
            if record.lease_id != lease_id or record.registry != registry_id:
                return
            if self.tracker.current != registry_id:
                return
            self.renew_retries += 1
            if self.network is not None:
                self.network.stats.record_retry("renew")
            self._send_renew(registry_id, record)
            self._arm_renew_retry(record, registry_id, lease_id, attempt + 1)

        self.after(delay, maybe_resend)

    def handle_renew_ack(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.RenewPayload):
            return
        sent_at = self._renew_sent_at.pop(payload.lease_id, None)
        if sent_at is not None:
            # Renew round-trips double as passive latency probes.
            self.router.on_response(envelope.src, rtt=self.sim.now - sent_at)
        health = self._health()
        if health is not None:
            health.record_request(
                "renew", ok=True,
                latency=(self.sim.now - sent_at) if sent_at is not None else 0.0,
            )
        for record in self._published.values():
            if record.lease_id == payload.lease_id:
                record.renew_outstanding = False

    def handle_publish_nack(self, envelope: Envelope) -> None:
        """The registry refused us (at capacity): publish elsewhere.

        The refusing registry is excluded from future attachment choices
        so beacon-driven re-homing does not bounce us back into the NACK.
        """
        payload = envelope.payload
        if not isinstance(payload, protocol.PublishNack):
            return
        health = self._health()
        if health is not None:
            health.record_request("publish", ok=False)
        if self.tracker.current != envelope.src:
            return
        if payload.reason == "quorum":
            # A missed write quorum is transient (a replica is down and
            # hinted handoff will replay): keep the retry chain armed at
            # send time running against the same coordinator instead of
            # excluding it. Arming a fresh chain here would stack one
            # more chain per NACK — an exponential publish storm.
            return
        self.tracker.excluded.add(envelope.src)
        self.tracker.registry_failed()

    def handle_busy(self, envelope: Envelope) -> None:
        """The registry shed our publish or renew: resend on its schedule.

        Crucially, a BUSY is *not* a death signal — the registry answered,
        it is just saturated. Deferring by ``retry_after`` (instead of
        letting ``stale_renew`` trip the failover heuristic) keeps the
        herd attached and the lease alive through the overload window;
        priority admission makes the deferred RENEW all but certain to be
        served next time.
        """
        payload = envelope.payload
        if not isinstance(payload, protocol.BusyPayload):
            return
        health = self._health()
        if health is not None and payload.msg_type in (protocol.RENEW, protocol.PUBLISH):
            health.record_request(
                "renew" if payload.msg_type == protocol.RENEW else "publish",
                ok=False,
            )
        self.router.on_busy(
            envelope.src,
            retry_after=payload.retry_after,
            queue_depth=payload.queue_depth,
        )
        if self.tracker.current != envelope.src:
            return
        if payload.msg_type == protocol.RENEW:
            for record in self._published.values():
                if record.lease_id == payload.request_id:
                    self._defer_renew(record, envelope.src, payload)
                    return
        elif payload.msg_type == protocol.PUBLISH:
            for record in self._published.values():
                if record.ad_id == payload.request_id:
                    self._defer_publish(record, envelope.src, payload)
                    return

    def _defer_renew(self, record: PublishedAd, registry_id: str,
                     payload: protocol.BusyPayload) -> None:
        if not record.renew_outstanding:
            return
        self.busy_deferrals += 1
        lease_id = record.lease_id

        def resend() -> None:
            if not record.renew_outstanding:
                return
            if record.lease_id != lease_id or record.registry != registry_id:
                return
            if self.tracker.current != registry_id:
                return
            self.renew_retries += 1
            if self.network is not None:
                self.network.stats.record_retry("renew")
            self._send_renew(registry_id, record)

        self.after(payload.retry_after, resend)

    def _defer_publish(self, record: PublishedAd, registry_id: str,
                       payload: protocol.BusyPayload) -> None:
        if record.acked:
            return
        self.busy_deferrals += 1

        def resend() -> None:
            if record.acked or record.registry != registry_id:
                return
            if self.tracker.current != registry_id:
                return
            self.publish_retries += 1
            if self.network is not None:
                self.network.stats.record_retry("publish")
            self._send_publish(registry_id, record)

        self.after(payload.retry_after, resend)

    def handle_renew_nack(self, envelope: Envelope) -> None:
        """Lease lapsed at the registry (e.g. it restarted): republish."""
        payload = envelope.payload
        if not isinstance(payload, protocol.RenewPayload):
            return
        health = self._health()
        if health is not None:
            health.record_request("renew", ok=False)
        for record in self._published.values():
            if record.lease_id == payload.lease_id:
                record.renew_outstanding = False
                record.acked = False
        if self.tracker.current is not None:
            self._publish_all(self.tracker.current)

    # -- registry discovery -------------------------------------------------------------

    def handle_registry_probe_reply(self, envelope: Envelope) -> None:
        self.tracker.handle_registry_probe_reply(envelope)

    def handle_registry_beacon(self, envelope: Envelope) -> None:
        self.tracker.handle_registry_beacon(envelope)

    def handle_registry_list_reply(self, envelope: Envelope) -> None:
        self.tracker.handle_registry_list_reply(envelope)

    # -- decentralized LAN mode -----------------------------------------------------------

    def self_advertisement(self, model_id: str) -> Advertisement:
        """Our capability as an advertisement record (for direct replies)."""
        return Advertisement(
            ad_id=f"self-{self.node_id}-{model_id}",
            service_node=self.node_id,
            service_name=self.profile.service_name,
            endpoint=self.endpoint,
            model_id=model_id,
            description=self._descriptions[model_id],
            home_registry="",
        )

    def handle_decentral_query(self, envelope: Envelope) -> None:
        """Evaluate a multicast query against our own descriptions.

        "All provider nodes must evaluate the query independently of each
        other before they return their responses to the querying node."
        """
        payload = envelope.payload
        if not isinstance(payload, protocol.QueryPayload):
            return
        model = self.models.get_or_discard(payload.model_id)
        if model is None or not model.can_evaluate():
            return
        verdict = model.evaluate(self._descriptions[payload.model_id], payload.query)
        if not verdict.matched:
            return
        hit = QueryHit(
            advertisement=self.self_advertisement(payload.model_id),
            degree=verdict.degree,
            score=verdict.score,
        )
        self.send(
            envelope.src,
            protocol.DECENTRAL_RESPONSE,
            protocol.ResponsePayload(query_id=payload.query_id, hits=(hit,), responders=1),
        )
