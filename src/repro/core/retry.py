"""Shared retry policy: capped exponential backoff with deterministic jitter.

Survey work on discovery in unreliable networks singles out *retry* as one
of the recovery behaviours that separates robust architectures from
fragile ones. Every protocol path that re-sends after silence (client
queries, service publishes and renewals) shares this one policy object so
the backoff shape is a deployment knob, not an ad-hoc constant.

Jitter is **deterministic**: it is derived by hashing ``(seed, key,
attempt)`` rather than drawing from the simulator RNG, so adding or
removing a retry never perturbs the RNG stream consumed by loss sampling
and workload generation — a fixed seed still fully determines a run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff.

    Attributes
    ----------
    base:
        Delay before the first retry (seconds).
    factor:
        Multiplier applied per additional retry.
    cap:
        Upper bound on the un-jittered delay.
    max_attempts:
        Total attempts allowed (the first try counts as attempt 1);
        ``attempts_exhausted(n)`` is true once ``n >= max_attempts``.
    jitter:
        Fractional spread: the delay is scaled into
        ``[1 - jitter, 1 + jitter]`` by the deterministic hash.
    """

    base: float = 0.5
    factor: float = 2.0
    cap: float = 8.0
    max_attempts: int = 3
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ReproError(f"retry base must be positive, got {self.base}")
        if self.factor < 1.0:
            raise ReproError(f"retry factor must be >= 1, got {self.factor}")
        if self.cap < self.base:
            raise ReproError(f"retry cap {self.cap} must be >= base {self.base}")
        if self.max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(
        self,
        attempt: int,
        *,
        seed: int = 0,
        key: str = "",
        retry_after: float | None = None,
        budget: float | None = None,
    ) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``seed`` and ``key`` select the jitter deterministically — the same
        (seed, key, attempt) triple always yields the same delay, and
        distinct keys (e.g. per call or per node) de-synchronize retries
        so a crashed registry is not hammered by a thundering herd.

        ``retry_after`` is an optional server hint (a BUSY rejection's
        back-off): it replaces the computed exponential delay for this
        attempt — not subject to ``cap``, because the server knows its own
        backlog — while jitter and the attempt budget stay in force.

        ``budget`` is the caller's remaining deadline: the returned delay
        (hint or computed, after jitter) never exceeds it, so a generous
        server hint cannot schedule a retry past the point where the
        attempt would die by timeout anyway. Callers should check the
        hint against the budget *before* delaying and fail over when it
        cannot fit; the clamp here is the last line of defence.
        """
        if attempt < 1:
            raise ReproError(f"retry attempt must be >= 1, got {attempt}")
        if budget is not None and budget < 0:
            raise ReproError(f"retry budget must be >= 0, got {budget}")
        if retry_after is not None:
            if retry_after < 0:
                raise ReproError(f"retry_after hint must be >= 0, got {retry_after}")
            raw = retry_after
            if budget is not None:
                raw = min(raw, budget)
        else:
            raw = min(self.cap, self.base * self.factor ** (attempt - 1))
        if self.jitter != 0.0:
            unit = zlib.crc32(f"{seed}:{key}:{attempt}".encode("utf-8")) / 0xFFFFFFFF
            raw *= 1.0 - self.jitter + 2.0 * self.jitter * unit
        if budget is not None:
            raw = min(raw, budget)
        return raw

    def attempts_exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` tries have used up the budget."""
        return attempts >= self.max_attempts
