"""Dynamic registry-role negotiation: standby registries.

"When bootstrapping a registry network, dynamic assignment of registry
node responsibility is a challenging problem. Some nodes may be more
willing to take on the role as a registry node than other nodes. To
prevent all nodes from taking on the registry node role, a policy may have
to be used for negotiating who will be assigned such a role. Such a policy
could for instance include something like 'try to maintain three
registries on each LAN.'"

A :class:`StandbyRegistry` implements exactly that policy for its LAN:

* **dormant** — it only listens to registry beacons, answering nothing;
* **promotion** — when fewer than ``lan_target`` registries have beaconed
  recently, it activates (after a node-id-staggered delay, so several
  standbys don't all promote at once) and becomes a full
  :class:`~repro.core.registry_node.RegistryNode`;
* **demotion** — when the LAN again has more than ``lan_target`` live
  registries, the *highest-id promoted* registry steps down gracefully
  (federation leave, content dropped — leases make it soft state) and
  returns to listening.

Negotiation is thus beacon-driven and fully decentralized, as the paper's
"depending on changes in the registry network state" suggests.
"""

from __future__ import annotations

import zlib

from repro.core import protocol
from repro.core.config import DiscoveryConfig
from repro.core.registry_node import RegistryNode
from repro.descriptions.base import DescriptionModel
from repro.errors import ReproError
from repro.netsim.messages import Envelope
from repro.registry.rim import RegistryDescription


class StandbyRegistry(RegistryNode):
    """A node willing to take the registry role when its LAN needs one."""

    role = "standby-registry"

    def __init__(
        self,
        node_id: str,
        config: DiscoveryConfig,
        models: list[DescriptionModel],
        *,
        lan_target: int = 1,
        seeds: tuple[str, ...] = (),
    ) -> None:
        if config.beacon_interval is None:
            raise ReproError("standby registries need beacons to observe the LAN")
        if lan_target < 1:
            raise ReproError(f"lan_target must be >= 1, got {lan_target}")
        super().__init__(node_id, config, models, seeds=seeds)
        self.lan_target = lan_target
        self.active = False
        self.promotions = 0
        self.demotions = 0
        #: Simulation time of the most recent promotion (E15 staleness
        #: windows measure from here).
        self.last_promoted_at: float | None = None
        self._beacon_seen: dict[str, float] = {}
        #: Ring identity each beaconing registry occupies (sharded
        #: federation) — what a promotion inherits from a dead peer.
        self._beacon_ring: dict[str, str] = {}
        self._promotion_pending = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.active:
            super().start()
            self.every(self._watch_interval(), self._evaluate_active)
            return
        self.every(self._watch_interval(), self._evaluate_dormant)

    def on_restart(self) -> None:
        """A crashed standby comes back dormant regardless of prior role.

        Durable state (WAL + snapshot) from a previous *active* life is
        deliberately kept: if this node promotes again it recovers its
        persisted store first and lets warm sync repair only the delta.
        """
        self.active = False
        self._beacon_seen.clear()
        self._beacon_ring.clear()
        self._promotion_pending = False
        self._peer_incarnations.clear()
        self.store.clear()
        self.repository.clear()
        self.federation.reset()
        self.antientropy.reset()
        self.shard.reset()
        self.ring_identity = self.node_id
        self.start()

    def _watch_interval(self) -> float:
        assert self.config.beacon_interval is not None
        return self.config.beacon_interval

    def _beacon_horizon(self) -> float:
        assert self.config.beacon_interval is not None
        return 2.5 * self.config.beacon_interval

    # -- dormant behaviour -----------------------------------------------------

    def receive(self, envelope: Envelope) -> None:
        """While dormant, observe beacons and silently ignore the rest."""
        if self.active:
            super().receive(envelope)
            return
        if not self.alive:
            return
        if envelope.msg_type == protocol.REGISTRY_BEACON and isinstance(
            envelope.payload, RegistryDescription
        ):
            description = envelope.payload
            self._beacon_seen[description.registry_id] = self.sim.now
            self._beacon_ring[description.registry_id] = (
                description.ring_id or description.registry_id
            )

    def _live_lan_registries(self) -> list[str]:
        """Registries heard beaconing on this LAN recently (not ourselves)."""
        horizon = self.sim.now - self._beacon_horizon()
        return sorted(
            rid for rid, seen in self._beacon_seen.items()
            if seen >= horizon and rid != self.node_id
        )

    def _evaluate_dormant(self) -> None:
        if self.active or self._promotion_pending:
            return
        if len(self._live_lan_registries()) >= self.lan_target:
            return
        # Stagger by node-id hash so concurrent standbys race decided.
        delay = 0.05 + 0.1 * (zlib.crc32(self.node_id.encode()) % 16)
        self._promotion_pending = True
        self.after(delay, self._maybe_promote)

    def _maybe_promote(self) -> None:
        self._promotion_pending = False
        if self.active:
            return
        if len(self._live_lan_registries()) >= self.lan_target:
            return  # someone else promoted during the stagger delay
        self._promote()

    def _promote(self) -> None:
        """Take on the registry role."""
        self.active = True
        self.promotions += 1
        self.last_promoted_at = self.sim.now
        if self.trace is not None:
            self.trace.event(
                "standby-promote", node=self.node_id,
                attrs={"promotions": self.promotions},
            )
        self.cancel_tasks()
        # Take over the dead registry's ring position *before* start()
        # registers us on the ring (satellite: re-hashing under our own
        # id would move ~K/S unrelated advertisements).
        self._inherit_ring_identity()
        super().start()
        self.every(self._watch_interval(), self._evaluate_active)
        # Recover persisted state from a previous active life *before*
        # warm sync, so the digest exchange repairs only the delta.
        self.durability.recover()
        self._warm_sync()
        # Announce immediately so peer standbys stand down and clients
        # attach without waiting a full beacon interval.
        self._beacon()

    def _inherit_ring_identity(self) -> None:
        """Adopt the ring identity of the registry this promotion replaces.

        The most recently silenced LAN registry (freshest beacon now past
        the horizon) is the one whose death triggered the promotion; its
        beaconed ``ring_id`` carries the virtual-node seeds we take over,
        so promotion is a pure ownership transfer instead of a re-hash.
        """
        cfg = self.config.sharding
        self.ring_identity = self.node_id
        if not (cfg.enabled and cfg.standby_inherit_ring):
            return
        horizon = self.sim.now - self._beacon_horizon()
        silenced = [
            (seen, rid) for rid, seen in self._beacon_seen.items()
            if seen < horizon and rid != self.node_id
        ]
        if not silenced:
            return
        _seen, dead = max(silenced)
        self.ring_identity = self._beacon_ring.get(dead, dead)

    def _warm_sync(self) -> None:
        """Bootstrap the store from live peers instead of activating empty.

        A cold-promoted registry serves misses until every service's next
        republish cycle — the E15 staleness window. Warm promotion sends an
        anti-entropy digest straight to the recently heard LAN registries
        and the configured seeds, so replicated advertisements stream in
        within one round-trip instead of one lease period.
        """
        if not (self.config.standby_warm_sync and self.antientropy.enabled()):
            return
        peers = sorted(set(self._live_lan_registries()) | set(self.seeds))
        synced = 0
        for peer in peers:
            if peer == self.node_id:
                continue
            self.antientropy.sync_with(peer)
            synced += 1
        if synced and self.network is not None:
            self.network.stats.record_recovery("standby-warm-sync")
            if self.trace is not None:
                self.trace.event(
                    "standby-warm-sync", node=self.node_id,
                    attrs={"peers": synced},
                )

    # -- active behaviour ----------------------------------------------------------

    def handle_registry_beacon(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, RegistryDescription):
            description = envelope.payload
            self._beacon_seen[description.registry_id] = self.sim.now
            self._beacon_ring[description.registry_id] = (
                description.ring_id or description.registry_id
            )
        super().handle_registry_beacon(envelope)

    def _evaluate_active(self) -> None:
        """Step down when the LAN is over-provisioned.

        A promoted registry yields as soon as ``lan_target`` *other* live
        registries are beaconing. If two promoted standbys demote in the
        same round, the quota check re-fires on both and the staggered
        promotion delay lets exactly one return — the negotiation
        converges without extra messages.
        """
        if not self.active:
            return
        if len(self._live_lan_registries()) < self.lan_target:
            return
        self._demote()

    def _demote(self) -> None:
        self.active = False
        self.demotions += 1
        if self.trace is not None:
            self.trace.event(
                "standby-demote", node=self.node_id,
                attrs={"demotions": self.demotions},
            )
        self.federation.leave()
        self.cancel_tasks()
        self.store.clear()
        self.antientropy.reset()
        self.shard.reset()
        self.ring_identity = self.node_id
        # A graceful step-down hands the content back to the LAN's live
        # registries; replaying it at the *next* promotion would resurrect
        # stale ads, so drop the WAL + snapshot (the incarnation survives).
        self.durability.discard()
        self._pending.clear()
        self._walks.clear()
        self._subscriptions.clear()
        if self.leases is not None:
            self.leases.clear()
        self.every(self._watch_interval(), self._evaluate_dormant)
