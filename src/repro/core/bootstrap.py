"""Registry discovery and attachment tracking.

"To find out about present registry nodes, discovery of available
registries must be carried out. We call this registry discovery.
Registries may be discovered either by manually configuring the registry
endpoint or by clients actively using local-scoped multicast to find
available registry nodes on LANs. Also, registry nodes could issue local
beacon messages, enabling clients to do passive registry discovery."

The :class:`RegistryTracker` is the piece of a client or service node that
implements all three paths (manual seed, active probe, passive beacon) and
keeps the cache of *alternative* registries fed by registry signalling, so
that failover needs no fresh multicast round (experiment E9).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Callable

from repro.core import protocol
from repro.core.config import DiscoveryConfig
from repro.netsim.messages import Envelope
from repro.registry.rim import RegistryDescription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Node


class RegistryTracker:
    """Tracks the current registry and known alternatives for one node.

    Parameters
    ----------
    node:
        The owning client/service node (used for timers and messaging).
    config:
        Deployment configuration.
    on_attached:
        Called with the registry id whenever an attachment is (re)made —
        service nodes hook republishing here.
    on_detached:
        Called when the current registry is lost and no alternative was
        immediately available.
    router:
        Optional :class:`~repro.core.routing.Router`: when set, candidate
        selection and alternative ordering consult it. Under the default
        ``static`` strategy the router defers to this tracker's own
        hash-spread choice, so behavior is unchanged.
    """

    def __init__(
        self,
        node: "Node",
        config: DiscoveryConfig,
        *,
        on_attached: Callable[[str], None] | None = None,
        on_detached: Callable[[], None] | None = None,
        router=None,
    ) -> None:
        self.node = node
        self.config = config
        self.router = router
        self.current: str | None = None
        self.known: dict[str, RegistryDescription] = {}
        #: Registries this node must not attach to (e.g. they NACKed a
        #: publish at capacity). Cleared on restart/roam.
        self.excluded: set[str] = set()
        self.on_attached = on_attached
        self.on_detached = on_detached
        self._probing = False
        self.probes_sent = 0
        self.failovers = 0

    # -- discovery --------------------------------------------------------

    def seed(self, registry_id: str, description: RegistryDescription | None = None) -> None:
        """Manual configuration: attach directly to a known endpoint."""
        if description is not None:
            self.known[registry_id] = description
        self._attach(registry_id)

    def probe(self) -> None:
        """Active discovery: multicast a probe, decide after the timeout."""
        if self._probing:
            return
        self._probing = True
        self.probes_sent += 1
        self.node.multicast(protocol.REGISTRY_PROBE)
        self.node.after(self.config.probe_timeout, self._probe_done)

    def _probe_done(self) -> None:
        self._probing = False
        if self.current is not None:
            return
        candidate = self._best_candidate()
        if candidate is not None:
            self._attach(candidate)

    def start_signalling_refresh(self) -> None:
        """Periodically re-fetch the registry list from the current registry.

        Keeps the failover cache warm as the federation grows/changes —
        "once connected to a registry node that in turn is connected to
        other registry nodes on the WAN, it is possible to use … registry
        signalling to provide the client node with alternative registry
        nodes' addresses."
        """
        if self.config.signalling_interval is not None:
            self.node.every(self.config.signalling_interval, self._refresh_list)

    def _refresh_list(self) -> None:
        if self.current is not None:
            self.node.send(self.current, protocol.REGISTRY_LIST_REQUEST)

    # -- message handling ---------------------------------------------------

    def observe_registry(self, description: RegistryDescription) -> None:
        """Record a registry learned from a beacon, probe reply, or
        signalling; attach if currently registry-less.

        During an active probe the window is allowed to close first so
        every reply is on the table — picking among all local registries
        (rather than the fastest responder) is what spreads clients evenly
        ("assigning clients to registries in an even distribution").
        """
        self.known[description.registry_id] = description
        if self.current is None and not self._probing:
            # Passive discovery: a beacon arrived while unattached.
            candidate = self._best_candidate()
            if candidate is not None:
                self._attach(candidate)
        elif (
            self.current is not None
            and description.lan_name == self.node.lan_name
            and description.registry_id != self.current
        ):
            # Re-homing: we are attached to a *remote* registry (a failover
            # artifact) and a local one has (re)appeared — switch back, so
            # publishing and querying stay on the LAN. The old attachment's
            # leases simply lapse (soft state).
            current_desc = self.known.get(self.current)
            if current_desc is not None and current_desc.lan_name != self.node.lan_name:
                self._attach(self._best_candidate() or description.registry_id)

    def handle_registry_probe_reply(self, envelope: Envelope) -> None:
        """Wire handler for :data:`protocol.REGISTRY_PROBE_REPLY`."""
        if isinstance(envelope.payload, RegistryDescription):
            self.observe_registry(envelope.payload)

    def handle_registry_beacon(self, envelope: Envelope) -> None:
        """Wire handler for :data:`protocol.REGISTRY_BEACON`."""
        if isinstance(envelope.payload, RegistryDescription):
            self.observe_registry(envelope.payload)

    def handle_registry_list_reply(self, envelope: Envelope) -> None:
        """Wire handler for registry signalling: merge alternatives."""
        payload = envelope.payload
        if isinstance(payload, protocol.RegistryListPayload):
            for description in payload.registries:
                self.known.setdefault(description.registry_id, description)

    # -- failover -----------------------------------------------------------

    def registry_failed(self) -> str | None:
        """The current registry stopped answering: fail over.

        With signalling-fed alternatives this is a single unicast re-attach
        ("these addresses may be used in the event of failure"); with an
        empty cache it degenerates to a fresh multicast probe. Returns the
        new registry id, or ``None`` when none is available yet.
        """
        if self.current is not None:
            self.known.pop(self.current, None)
            self.current = None
        self.failovers += 1
        candidate = self._best_candidate()
        if candidate is not None:
            self._attach(candidate)
            return candidate
        if self.on_detached is not None:
            self.on_detached()
        self.probe()
        return None

    # -- internals ------------------------------------------------------------

    def _best_candidate(self) -> str | None:
        """Pick a registry: same-LAN first, spread by stable node hash.

        When several local registries exist, clients hash themselves over
        them — "by assigning clients to registries in an even
        distribution, load balancing could be obtained as well". The hash
        is deterministic, so runs stay reproducible.
        """
        candidates = {rid for rid in self.known if rid not in self.excluded}
        if not candidates:
            return None
        local = sorted(
            rid for rid in candidates
            if self.known[rid].lan_name == self.node.lan_name
        )
        if local:
            index = zlib.crc32(self.node.node_id.encode("utf-8")) % len(local)
            default = local[index]
            if self.router is not None:
                # Adaptive strategies may override the hash-spread choice
                # on observed health; static returns the default as-is.
                return self.router.select(local, default=default)
            return default
        remote = sorted(candidates)
        if self.router is not None:
            return self.router.select(remote, default=remote[0])
        return remote[0]

    def _attach(self, registry_id: str) -> None:
        self.current = registry_id
        if self.config.signalling_interval is not None:
            # Ask the new registry for alternatives right away, priming the
            # failover cache.
            self.node.send(registry_id, protocol.REGISTRY_LIST_REQUEST)
        if self.on_attached is not None:
            self.on_attached(registry_id)

    def alternatives(self) -> list[str]:
        """Known registries other than the current one, preferred order.

        Locals before remotes; within each group sorted by id, then
        reordered best-first by the router when one is attached (the
        static strategy's ordering is the identity).
        """
        others = [rid for rid in self.known if rid != self.current]
        local = sorted(
            rid for rid in others
            if self.known[rid].lan_name == self.node.lan_name
        )
        remote = sorted(rid for rid in others if rid not in local)
        if self.router is not None:
            return self.router.order(local) + self.router.order(remote)
        return local + remote
