"""Query forwarding machinery: aggregation state and strategies.

"The key role of the registry network is to forward queries and
advertisements between registry nodes on different LANs. Several different
strategies for doing this can be used, including increasing the reach of a
query gradually in several rounds, random walks, or broadcasting in the
registry network … Loop avoidance must also be taken care of."

This module holds the bookkeeping shared by all strategies:

* :class:`SeenQueries` — query-id based loop avoidance with pruning,
* :class:`PendingAggregation` — a fan-out awaiting responses (or a
  timeout), completing exactly once,
* :class:`RingController` — the expanding-ring round schedule,
* :class:`WalkCoordinator` — collects random-walk hit streams.

The registry node wires these to the protocol handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core import protocol
from repro.registry.matching import QueryEvaluator, QueryHit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Node, Timer


class SeenQueries:
    """Loop avoidance: remembers recently seen query ids.

    Entries are pruned after ``retention`` seconds so long runs do not
    accumulate unbounded state — old ids cannot loop any more once every
    TTL has elapsed.
    """

    def __init__(self, clock: Callable[[], float], retention: float = 120.0) -> None:
        self._clock = clock
        self._retention = retention
        self._seen: dict[str, float] = {}

    def check_and_mark(self, query_id: str) -> bool:
        """True if the id is new (and marks it); False for a duplicate."""
        self._prune()
        if query_id in self._seen:
            return False
        self._seen[query_id] = self._clock()
        return True

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def _prune(self) -> None:
        horizon = self._clock() - self._retention
        if len(self._seen) > 1024:
            self._seen = {qid: t for qid, t in self._seen.items() if t >= horizon}

    def clear(self) -> None:
        """Drop all state (registry crash)."""
        self._seen.clear()


class PendingAggregation:
    """One in-flight fan-out: local hits plus awaited neighbor responses.

    Completes exactly once — either when every outstanding response has
    arrived or when the aggregation timeout fires — by calling
    ``on_complete`` with the merged, response-controlled hit list.
    """

    def __init__(
        self,
        node: "Node",
        *,
        query_id: str,
        local_hits: list[QueryHit],
        outstanding: int,
        timeout: float,
        max_results: int | None,
        on_complete: Callable[[list[QueryHit], int], None],
    ) -> None:
        self.query_id = query_id
        self.batches: list[list[QueryHit]] = [local_hits]
        self.outstanding = outstanding
        self.max_results = max_results
        self.responders = 1  # ourselves
        self._on_complete = on_complete
        self._done = False
        self._timer: "Timer" = node.after(timeout, self._timeout)

    def add_response(self, payload: protocol.ResponsePayload) -> None:
        """A neighbor answered: record its hits, maybe complete."""
        if self._done:
            return
        self.batches.append(list(payload.hits))
        self.responders += payload.responders
        self.outstanding -= 1
        if self.outstanding <= 0:
            self._complete()

    def _timeout(self) -> None:
        """Some neighbor never answered (crash/partition): finish anyway."""
        if not self._done:
            self._complete()

    def _complete(self) -> None:
        self._done = True
        self._timer.cancel()
        merged = QueryEvaluator.merge(self.batches, max_results=self.max_results)
        self._on_complete(merged, self.responders)

    @property
    def done(self) -> bool:
        return self._done


@dataclass
class RingController:
    """Expanding-ring search: grow the TTL until satisfied.

    "Increasing the reach of a query gradually in several rounds." Each
    round is an independent flood with the round's TTL (and a round-scoped
    query id, so peers do not suppress it as a duplicate); hits accumulate
    across rounds. The search stops as soon as the satisfaction target is
    met — ``max_results`` hits when response control is on, one hit
    otherwise — or the TTL schedule is exhausted.
    """

    payload: protocol.QueryPayload
    ttls: tuple[int, ...]
    round_index: int = 0
    batches: list[list[QueryHit]] = field(default_factory=list)
    rounds_run: int = 0

    def round_query_id(self) -> str:
        """The query id used for the current round's flood."""
        return f"{self.payload.query_id}#r{self.round_index}"

    def current_ttl(self) -> int:
        return self.ttls[self.round_index]

    def record_round(self, hits: list[QueryHit]) -> None:
        """Fold one round's merged hits into the accumulated result."""
        self.batches.append(hits)
        self.rounds_run += 1

    def merged(self) -> list[QueryHit]:
        """All hits so far, de-duplicated and response-controlled."""
        return QueryEvaluator.merge(self.batches, max_results=self.payload.max_results)

    def satisfied(self) -> bool:
        """Whether the accumulated hits meet the round-stop target."""
        target = self.payload.max_results if self.payload.max_results is not None else 1
        return len(self.merged()) >= target

    def advance(self) -> bool:
        """Move to the next ring; returns False when the schedule is done."""
        self.round_index += 1
        return self.round_index < len(self.ttls)


class WalkCoordinator:
    """Collects the hit stream of one random walk.

    Visited registries unicast their hits straight back to the coordinator
    (``WALK_HITS``); the final registry sends ``WALK_END``. A timeout
    bounds the wait when the walk dies mid-way (crashed registry,
    partition).
    """

    def __init__(
        self,
        node: "Node",
        *,
        query_id: str,
        local_hits: list[QueryHit],
        timeout: float,
        max_results: int | None,
        on_complete: Callable[[list[QueryHit], int], None],
    ) -> None:
        self.query_id = query_id
        self.batches: list[list[QueryHit]] = [local_hits]
        self.responders = 1
        self.max_results = max_results
        self._on_complete = on_complete
        self._done = False
        self._timer: "Timer" = node.after(timeout, self._finish)

    def add_hits(self, hits: tuple[QueryHit, ...]) -> None:
        """One visited registry reported its local matches."""
        if self._done:
            return
        self.batches.append(list(hits))
        self.responders += 1

    def walk_ended(self) -> None:
        """The walk reached its end: complete now."""
        self._finish()

    def _finish(self) -> None:
        if self._done:
            return
        self._done = True
        self._timer.cancel()
        merged = QueryEvaluator.merge(self.batches, max_results=self.max_results)
        self._on_complete(merged, self.responders)

    @property
    def done(self) -> bool:
        return self._done
