"""Query forwarding machinery: aggregation state and strategies.

"The key role of the registry network is to forward queries and
advertisements between registry nodes on different LANs. Several different
strategies for doing this can be used, including increasing the reach of a
query gradually in several rounds, random walks, or broadcasting in the
registry network … Loop avoidance must also be taken care of."

This module holds the bookkeeping shared by all strategies:

* :class:`SeenQueries` — query-id based loop avoidance with pruning,
* :class:`PendingAggregation` — a fan-out awaiting responses (or a
  timeout), completing exactly once,
* :class:`RingController` — the expanding-ring round schedule,
* :class:`WalkCoordinator` — collects random-walk hit streams,
* :class:`CircuitBreaker` — per-neighbor health gating the fan-out, so
  degraded-mode queries stop paying the aggregation timeout for peers
  the failure detector already suspects.

The registry node wires these to the protocol handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core import protocol
from repro.registry.matching import QueryEvaluator, QueryHit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Node, Timer


class SeenQueries:
    """Loop avoidance: remembers recently seen query ids.

    Entries are pruned after ``retention`` seconds so long runs do not
    accumulate unbounded state — old ids cannot loop any more once every
    TTL has elapsed. ``max_entries`` additionally hard-bounds the table
    so a query *flood* cannot grow loop-avoidance state without limit
    within one retention window: when full, the oldest entries are
    evicted (and counted in :attr:`evictions`). An evicted id could in
    principle loop back and be treated as new, but by then its TTL has
    almost surely expired — the table holds the most recent
    ``max_entries`` ids, and loops are short.

    ``protected`` exempts ids from eviction (and pruning): the registry
    passes a predicate over its *live* aggregation/walk state, so a
    flood filling the table can never evict the id of a query still in
    flight — an evicted live id would let a late duplicate re-enter the
    fan-out and double-count hits in the pending aggregation. The table
    may transiently exceed ``max_entries`` by the number of in-flight
    queries, which is itself bounded by admission control.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        retention: float = 120.0,
        *,
        max_entries: int | None = 4096,
        protected: Callable[[str], bool] | None = None,
    ) -> None:
        self._clock = clock
        self._retention = retention
        self._max_entries = max_entries
        self._protected = protected
        self._seen: dict[str, float] = {}
        self.evictions = 0

    def check_and_mark(self, query_id: str) -> bool:
        """True if the id is new (and marks it); False for a duplicate."""
        self._prune()
        if query_id in self._seen:
            return False
        if self._max_entries is not None and len(self._seen) >= self._max_entries:
            # Evict oldest first: dict preserves insertion order, and
            # entries are only ever appended with the current clock.
            excess = len(self._seen) - self._max_entries + 1
            evicted = 0
            for old_id in list(self._seen):
                if evicted >= excess:
                    break
                if self._protected is not None and self._protected(old_id):
                    continue
                del self._seen[old_id]
                evicted += 1
            self.evictions += evicted
        self._seen[query_id] = self._clock()
        return True

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def _prune(self) -> None:
        horizon = self._clock() - self._retention
        if len(self._seen) > 1024:
            self._seen = {
                qid: t for qid, t in self._seen.items()
                if t >= horizon
                or (self._protected is not None and self._protected(qid))
            }

    def clear(self) -> None:
        """Drop all state (registry crash)."""
        self._seen.clear()


class PendingAggregation:
    """One in-flight fan-out: local hits plus awaited neighbor responses.

    Completes exactly once — either when every outstanding response has
    arrived or when the aggregation timeout fires — by calling
    ``on_complete`` with the merged, response-controlled hit list.

    When the fan-out ``targets`` are known, the aggregation tracks which
    of them answered; a timeout reports each silent target through
    ``on_target_timeout`` so the caller can feed its failure detector
    (circuit breakers, §4.9 aliveness).
    """

    def __init__(
        self,
        node: "Node",
        *,
        query_id: str,
        local_hits: list[QueryHit],
        outstanding: int | None = None,
        targets: tuple[str, ...] = (),
        timeout: float,
        max_results: int | None,
        on_complete: Callable[[list[QueryHit], int], None],
        on_target_timeout: Callable[[str], None] | None = None,
        trace_ctx: tuple[int, int] | None = None,
        on_retarget: Callable[[list[str], tuple[str, ...]], list[str]] | None = None,
    ) -> None:
        self.query_id = query_id
        self.batches: list[list[QueryHit]] = [local_hits]
        self.outstanding = len(targets) if outstanding is None else outstanding
        self.silent: set[str] = set(targets)
        #: Every target contacted so far (originals plus retarget
        #: replacements) — the retarget planner must not re-pick them.
        self.targets: tuple[str, ...] = tuple(targets)
        self.max_results = max_results
        self.responders = 1  # ourselves
        self._on_complete = on_complete
        self._on_target_timeout = on_target_timeout
        #: Fault-masked reads (sharded federation): called once, at the
        #: first timeout, with the silent targets; returns replacement
        #: targets the caller has (re)contacted — the aggregation then
        #: waits one more timeout round for them instead of completing.
        self._on_retarget = on_retarget
        self._retargeted = False
        self._timeout_interval = timeout
        self._node = node
        self.trace_ctx = trace_ctx
        self._done = False
        #: Fan-out start time: responses arriving before completion yield
        #: a per-target round-trip sample for the routing health tracker.
        self.started_at = node.sim.now
        self._timer: "Timer" = node.after(timeout, self._timeout)

    def add_response(self, payload: protocol.ResponsePayload, *, src: str | None = None) -> None:
        """A neighbor answered: record its hits, maybe complete."""
        if self._done:
            return
        if src is not None:
            self.silent.discard(src)
        self.batches.append(list(payload.hits))
        self.responders += payload.responders
        self.outstanding -= 1
        if self.outstanding <= 0:
            self._complete()

    def _timeout(self) -> None:
        """Some neighbor never answered (crash/partition): finish anyway."""
        if self._done:
            return
        if self.trace_ctx is not None and self._node.trace is not None:
            self._node.trace.event(
                "aggregation.timeout",
                node=self._node.node_id,
                ctx=self.trace_ctx,
                attrs={"silent": len(self.silent)},
            )
        if self._on_target_timeout is not None:
            for target in sorted(self.silent):
                self._on_target_timeout(target)
        if (
            self._on_retarget is not None
            and not self._retargeted
            and self.silent
        ):
            # One retry round on replacement targets; the silent ones are
            # written off (their suspicion was reported above).
            self._retargeted = True
            replacements = self._on_retarget(sorted(self.silent), self.targets)
            if replacements:
                self.silent = set(replacements)
                self.outstanding = len(replacements)
                self.targets = tuple(dict.fromkeys(
                    list(self.targets) + list(replacements)
                ))
                self._timer = self._node.after(
                    self._timeout_interval, self._timeout
                )
                return
        self._complete()

    def drain_target(self, target: str) -> None:
        """A target left the federation: stop waiting for its answer.

        Counts as an (empty) response so the aggregation completes as
        soon as the surviving targets have answered, instead of riding
        out the timeout against a tombstoned member.
        """
        if self._done or target not in self.silent:
            return
        self.silent.discard(target)
        self.outstanding -= 1
        if self.outstanding <= 0:
            self._complete()

    def flush(self) -> None:
        """Complete immediately with whatever has arrived (we are leaving).

        Unlike a timeout, no target is blamed — the departure is ours.
        """
        if not self._done:
            self._complete()

    def _complete(self) -> None:
        self._done = True
        self._timer.cancel()
        merged = QueryEvaluator.merge(self.batches, max_results=self.max_results)
        self._on_complete(merged, self.responders)

    @property
    def done(self) -> bool:
        return self._done


@dataclass
class RingController:
    """Expanding-ring search: grow the TTL until satisfied.

    "Increasing the reach of a query gradually in several rounds." Each
    round is an independent flood with the round's TTL (and a round-scoped
    query id, so peers do not suppress it as a duplicate); hits accumulate
    across rounds. The search stops as soon as the satisfaction target is
    met — ``max_results`` hits when response control is on, one hit
    otherwise — or the TTL schedule is exhausted.
    """

    payload: protocol.QueryPayload
    ttls: tuple[int, ...]
    round_index: int = 0
    batches: list[list[QueryHit]] = field(default_factory=list)
    rounds_run: int = 0

    def round_query_id(self) -> str:
        """The query id used for the current round's flood."""
        return f"{self.payload.query_id}#r{self.round_index}"

    def current_ttl(self) -> int:
        return self.ttls[self.round_index]

    def record_round(self, hits: list[QueryHit]) -> None:
        """Fold one round's merged hits into the accumulated result."""
        self.batches.append(hits)
        self.rounds_run += 1

    def merged(self) -> list[QueryHit]:
        """All hits so far, de-duplicated and response-controlled."""
        return QueryEvaluator.merge(self.batches, max_results=self.payload.max_results)

    def satisfied(self) -> bool:
        """Whether the accumulated hits meet the round-stop target."""
        target = self.payload.max_results if self.payload.max_results is not None else 1
        return len(self.merged()) >= target

    def advance(self) -> bool:
        """Move to the next ring; returns False when the schedule is done."""
        self.round_index += 1
        return self.round_index < len(self.ttls)


class WalkCoordinator:
    """Collects the hit stream of one random walk.

    Visited registries unicast their hits straight back to the coordinator
    (``WALK_HITS``); the final registry sends ``WALK_END``. A timeout
    bounds the wait when the walk dies mid-way (crashed registry,
    partition).
    """

    def __init__(
        self,
        node: "Node",
        *,
        query_id: str,
        local_hits: list[QueryHit],
        timeout: float,
        max_results: int | None,
        on_complete: Callable[[list[QueryHit], int], None],
    ) -> None:
        self.query_id = query_id
        self.batches: list[list[QueryHit]] = [local_hits]
        self.responders = 1
        self.max_results = max_results
        self._on_complete = on_complete
        self._done = False
        self._timer: "Timer" = node.after(timeout, self._finish)

    def add_hits(self, hits: tuple[QueryHit, ...]) -> None:
        """One visited registry reported its local matches."""
        if self._done:
            return
        self.batches.append(list(hits))
        self.responders += 1

    def walk_ended(self) -> None:
        """The walk reached its end: complete now."""
        self._finish()

    def _finish(self) -> None:
        if self._done:
            return
        self._done = True
        self._timer.cancel()
        merged = QueryEvaluator.merge(self.batches, max_results=self.max_results)
        self._on_complete(merged, self.responders)

    @property
    def done(self) -> bool:
        return self._done


#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-neighbor health: closed / open / half-open.

    Fed by the registry's existing aliveness signals — missed pongs from
    the federation ping round and silent targets from aggregation
    timeouts. After ``failure_threshold`` consecutive failures the breaker
    *opens*: the fan-out skips the neighbor (not counted as outstanding),
    so degraded-mode queries complete without eating the aggregation
    timeout for a peer that is already suspected dead. After
    ``reset_timeout`` seconds the breaker turns *half-open* and lets
    exactly **one** probe through (in practice the next ping/gossip round
    or a single forwarded query); a success closes it, a failure re-opens
    it. While that probe is in flight every other caller is refused —
    without the :attr:`probing` latch, several sends queued in the same
    tick would all read the elapsed reset timeout, all pass as "the one
    probe", and a still-down neighbor would re-trip the breaker with
    inflated failure counts (and eat one aggregation timeout per extra
    probe).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 10.0,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.times_opened = 0
        #: Probe failures: open → half-open → open round trips. A rising
        #: flap count means the neighbor keeps looking back up and then
        #: failing its single probe — the signature of a struggling (not
        #: cleanly dead) peer, and what the flapping watchdog keys on.
        self.flaps = 0
        #: True while the single half-open probe is unresolved.
        self.probing = False
        #: Observer called as ``(old_state, new_state)`` on every state
        #: change (the metrics bridge lives in the federation layer).
        self.on_transition = on_transition

    def _transition(self, new_state: str) -> None:
        old = self.state
        self.state = new_state
        if self.on_transition is not None and old != new_state:
            self.on_transition(old, new_state)

    def record_failure(self) -> bool:
        """One failure signal; returns True when this trip *opened* it."""
        if self.state == BREAKER_HALF_OPEN:
            # The probe failed: straight back to open, timer re-armed.
            self.opened_at = self._clock()
            self.times_opened += 1
            self.flaps += 1
            self.probing = False
            self._transition(BREAKER_OPEN)
            return True
        self.failures += 1
        if self.state == BREAKER_CLOSED and self.failures >= self.failure_threshold:
            self.opened_at = self._clock()
            self.times_opened += 1
            self._transition(BREAKER_OPEN)
            return True
        return False

    def record_success(self) -> bool:
        """One success signal; returns True when it *closed* the breaker."""
        was = self.state
        self.failures = 0
        self.probing = False
        self._transition(BREAKER_CLOSED)
        return was != BREAKER_CLOSED

    def allows(self) -> bool:
        """Whether traffic may flow to the neighbor right now.

        An open breaker whose reset timeout has elapsed flips to
        half-open as a side effect and admits the caller as the single
        probe; until that probe resolves (success or failure), every
        further caller — including others queued in the same simulation
        tick — is refused.
        """
        if self.state == BREAKER_OPEN:
            if self._clock() - self.opened_at >= self.reset_timeout:
                self.probing = True
                self._transition(BREAKER_HALF_OPEN)
                return True
            return False
        if self.state == BREAKER_HALF_OPEN:
            if self.probing:
                return False
            self.probing = True
            return True
        return True
