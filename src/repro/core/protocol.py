"""The generic service discovery protocol.

"We would like to reuse the same generic operations and messages,
regardless of the payload (based on the service description model). We
classify such operations and messages in three categories: registry
network maintenance, publishing, and querying."

This module defines exactly those message types and their payload records.
Service descriptions and queries ride *inside* these payloads, typed by
the envelope's ``payload_type`` field ("next header"), so the protocol
never depends on any particular description model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.registry.advertisements import Advertisement
from repro.registry.matching import QueryHit
from repro.registry.rim import RegistryDescription

# -- message types: registry network maintenance --------------------------

#: Client/service multicast: "any registries on this LAN?" (active discovery)
REGISTRY_PROBE = "registry-probe"
#: Registry unicast reply to a probe.
REGISTRY_PROBE_REPLY = "registry-probe-reply"
#: Registry multicast heartbeat (passive discovery).
REGISTRY_BEACON = "registry-beacon"
#: Registry-to-registry aliveness check.
REGISTRY_PING = "registry-ping"
REGISTRY_PONG = "registry-pong"
#: Ask any registry for other registries it knows (registry signalling).
REGISTRY_LIST_REQUEST = "registry-list-request"
REGISTRY_LIST_REPLY = "registry-list-reply"
#: Registry-to-registry federation handshake.
FEDERATION_JOIN = "federation-join"
FEDERATION_JOIN_ACK = "federation-join-ack"
FEDERATION_LEAVE = "federation-leave"
#: Repository operations (§4.6): fetch ontologies/schemas from a registry.
ARTIFACT_REQUEST = "artifact-request"
ARTIFACT_REPLY = "artifact-reply"

# -- message types: publishing --------------------------------------------

PUBLISH = "publish"
PUBLISH_ACK = "publish-ack"
#: Registry refused the publish (e.g. at storage capacity) — the
#: asymmetric-resources case: the service must try another registry.
PUBLISH_NACK = "publish-nack"
RENEW = "renew"
RENEW_ACK = "renew-ack"
RENEW_NACK = "renew-nack"
REMOVE = "remove"
REMOVE_ACK = "remove-ack"
#: Registry-to-registry advertisement push (replication cooperation).
AD_FORWARD = "ad-forward"
#: Anti-entropy reconciliation (replication cooperation): a compact store
#: digest, a delta-pull request for missing/stale advertisements, and the
#: bulk advertisement reply.
ANTIENTROPY_DIGEST = "antientropy-digest"
ANTIENTROPY_PULL = "antientropy-pull"
ANTIENTROPY_ADS = "antientropy-ads"
#: Sharded federation (quorum replication): the write coordinator pushes
#: one advertisement to a replica-set member and awaits its ack.  An
#: empty ``request_id`` marks fire-and-forget traffic (hinted-handoff
#: replay, read repair) that needs no ack.
SHARD_STORE = "shard-store"
SHARD_STORE_ACK = "shard-store-ack"
#: Replica-lease refresh and tombstoning for quorum-replicated ads.
SHARD_RENEW = "shard-renew"
SHARD_RENEW_ACK = "shard-renew-ack"
SHARD_REMOVE = "shard-remove"
SHARD_REMOVE_ACK = "shard-remove-ack"
#: Bulk key movement after a ring membership change (rebalancing).
SHARD_TRANSFER = "shard-transfer"

# -- message types: subscriptions (notification extension) -----------------

#: Client registers interest in future advertisements ("registration for
#: notifications about service advertisements of interest").
SUBSCRIBE = "subscribe"
SUBSCRIBE_ACK = "subscribe-ack"
UNSUBSCRIBE = "unsubscribe"
#: Registry pushes a newly published matching advertisement.
NOTIFY = "notify"

# -- message types: querying ----------------------------------------------

QUERY = "query"
QUERY_FORWARD = "query-forward"
QUERY_RESPONSE = "query-response"
#: Overload protection: a saturated registry *answers* shed work instead
#: of silently dropping it. The payload carries a back-off hint so the
#: sender retries on the server's schedule, not its own guess.
BUSY = "busy"
#: Random-walk variants: hits stream back to the coordinator directly.
WALK = "walk"
WALK_HITS = "walk-hits"
WALK_END = "walk-end"
#: Decentralized LAN mode (Fig. 3, right): query multicast to everyone;
#: service nodes answer for themselves.
DECENTRAL_QUERY = "decentral-query"
DECENTRAL_RESPONSE = "decentral-response"


# -- payload records -------------------------------------------------------


@dataclass(frozen=True)
class PublishPayload:
    """A service node's publish (or republish) request.

    ``ad_id`` is empty on first publish; set on republish so the registry
    can bump the version instead of storing a duplicate.
    """

    service_node: str
    service_name: str
    endpoint: str
    model_id: str
    description: Any
    ad_id: str = ""
    lease_duration: float | None = None

    def size_bytes(self) -> int:
        from repro.netsim.messages import estimate_payload_size

        return (
            len(self.service_node) + len(self.service_name) + len(self.endpoint)
            + len(self.model_id) + len(self.ad_id) + 24
            + estimate_payload_size(self.description)
        )


@dataclass(frozen=True)
class PublishAck:
    """Registry's answer to a publish: the UUID and the granted lease.

    ``model_id`` echoes the published description model so a service node
    publishing under several models can correlate acks.
    """

    ad_id: str
    lease_id: str
    lease_duration: float
    model_id: str = ""

    def size_bytes(self) -> int:
        return len(self.ad_id) + len(self.lease_id) + len(self.model_id) + 16


@dataclass(frozen=True)
class PublishNack:
    """Registry's refusal of a publish, with the reason."""

    ad_id: str
    model_id: str
    reason: str = "capacity"

    def size_bytes(self) -> int:
        return len(self.ad_id) + len(self.model_id) + len(self.reason) + 8


@dataclass(frozen=True)
class RenewPayload:
    """Lease renewal request, referencing the lease by id."""

    lease_id: str
    ad_id: str

    def size_bytes(self) -> int:
        return len(self.lease_id) + len(self.ad_id) + 8


@dataclass(frozen=True)
class LeavePayload:
    """Graceful departure, flooded so non-neighbors learn it too.

    ``member`` is the departing registry; empty means the sender itself
    (the first-hop announcement). Relays always name the member since
    the envelope ``src`` is then the forwarder, not the leaver.
    """

    member: str = ""

    def size_bytes(self) -> int:
        return len(self.member) + 8


@dataclass(frozen=True)
class RemovePayload:
    """Explicit advertisement removal (graceful shutdown)."""

    ad_id: str

    def size_bytes(self) -> int:
        return len(self.ad_id) + 8


@dataclass(frozen=True)
class QueryPayload:
    """A query travelling through the registry network.

    ``query_id`` provides loop avoidance ("giving queries their unique
    query ID is a good approach to avoid query looping between registry
    nodes"); ``ttl`` bounds the forwarding radius; ``max_results`` is the
    response-control cap.
    """

    query_id: str
    model_id: str
    query: Any
    max_results: int | None = None
    ttl: int = 0

    def with_ttl(self, ttl: int) -> "QueryPayload":
        return QueryPayload(
            query_id=self.query_id,
            model_id=self.model_id,
            query=self.query,
            max_results=self.max_results,
            ttl=ttl,
        )

    def size_bytes(self) -> int:
        from repro.netsim.messages import estimate_payload_size

        return len(self.query_id) + len(self.model_id) + 16 + estimate_payload_size(self.query)


@dataclass(frozen=True)
class ResponsePayload:
    """Aggregated query hits flowing back toward the querying client.

    ``degraded`` marks a response served by an overloaded registry that
    skipped WAN fan-out and answered from its local store only — the
    hits are valid but coverage is best-effort.

    ``queue_depth`` piggybacks the responder's admission-queue depth at
    response time (0 when admission control is inert), feeding the
    receiver's passive health tracker for load-aware routing. It rides
    inside the fixed 16-byte header overhead — ``size_bytes()`` is
    deliberately unchanged so delivery latency (a function of payload
    size) stays bit-identical for existing scenarios.
    """

    query_id: str
    hits: tuple[QueryHit, ...]
    responders: int = 1
    degraded: bool = False
    queue_depth: int = 0

    def size_bytes(self) -> int:
        return len(self.query_id) + 16 + sum(hit.size_bytes() for hit in self.hits)


@dataclass(frozen=True)
class BusyPayload:
    """An admission controller's rejection of one message.

    ``request_id`` echoes the correlation id of the shed request (query
    id, lease id, or advertisement id) so the sender can find its own
    bookkeeping; ``retry_after`` is the server's back-off hint, monotone
    in ``queue_depth`` at shed time.
    """

    request_id: str
    msg_type: str
    retry_after: float
    queue_depth: int

    def size_bytes(self) -> int:
        return len(self.request_id) + len(self.msg_type) + 16


@dataclass(frozen=True)
class WalkPayload:
    """A random-walk query: carries its coordinator and visited set."""

    query_id: str
    model_id: str
    query: Any
    coordinator: str
    remaining: int
    visited: tuple[str, ...] = ()
    max_results: int | None = None

    def size_bytes(self) -> int:
        from repro.netsim.messages import estimate_payload_size

        return (
            len(self.query_id) + len(self.model_id) + len(self.coordinator)
            + sum(len(v) for v in self.visited) + 24
            + estimate_payload_size(self.query)
        )


@dataclass(frozen=True)
class SubscribePayload:
    """A standing query: notify me about future matching advertisements.

    Subscriptions are leased like advertisements: the subscriber must
    re-subscribe (same ``sub_id``) before ``duration`` elapses or the
    registry drops the subscription — the same aliveness principle as
    §4.8, applied to client interest.
    """

    sub_id: str
    model_id: str
    query: Any
    duration: float

    def size_bytes(self) -> int:
        from repro.netsim.messages import estimate_payload_size

        return len(self.sub_id) + len(self.model_id) + 16 + \
            estimate_payload_size(self.query)


@dataclass(frozen=True)
class SubscribeAck:
    """Registry's acceptance of a (re-)subscription."""

    sub_id: str
    expires_at: float

    def size_bytes(self) -> int:
        return len(self.sub_id) + 16


@dataclass(frozen=True)
class NotifyPayload:
    """One newly published advertisement matching a subscription."""

    sub_id: str
    hit: QueryHit

    def size_bytes(self) -> int:
        return len(self.sub_id) + self.hit.size_bytes()


@dataclass(frozen=True)
class UnsubscribePayload:
    """Cancel a standing query."""

    sub_id: str

    def size_bytes(self) -> int:
        return len(self.sub_id) + 8


@dataclass(frozen=True)
class RegistryListPayload:
    """Registry signalling: "share information about other registry nodes"."""

    registries: tuple[RegistryDescription, ...]

    def size_bytes(self) -> int:
        return 16 + sum(r.size_bytes() for r in self.registries)


@dataclass(frozen=True)
class AdForwardPayload:
    """One advertisement pushed to a peer registry (replication).

    ``epoch`` increases with each lease refresh at the home registry, so
    re-pushes propagate through the dedup flood (key: ad_id, version,
    epoch) and keep replica leases alive.
    """

    advertisement: Advertisement
    lease_duration: float
    epoch: int = 0

    def dedup_key(self) -> tuple[str, int, int]:
        return (self.advertisement.ad_id, self.advertisement.version, self.epoch)

    def size_bytes(self) -> int:
        return self.advertisement.size_bytes() + 24


@dataclass(frozen=True)
class DigestPayload:
    """A compact snapshot of one registry's replicated store.

    ``entries`` maps each live advertisement to its freshness coordinates
    ``(ad_id, version, epoch)`` — a few dozen bytes per advertisement
    instead of the full description. ``tombstones`` carries recently
    removed advertisements as ``(ad_id, version)`` so peers delete their
    replicas instead of pushing them back (resurrection avoidance).
    """

    entries: tuple[tuple[str, int, int], ...] = ()
    tombstones: tuple[tuple[str, int], ...] = ()

    def size_bytes(self) -> int:
        return (
            16
            + sum(len(ad_id) + 16 for ad_id, _v, _e in self.entries)
            + sum(len(ad_id) + 8 for ad_id, _v in self.tombstones)
        )


@dataclass(frozen=True)
class DigestPullPayload:
    """Delta pull: the advertisement ids a digest showed we lack."""

    ad_ids: tuple[str, ...]

    def size_bytes(self) -> int:
        return 16 + sum(len(ad_id) + 8 for ad_id in self.ad_ids)


@dataclass(frozen=True)
class SyncAdsPayload:
    """Bulk anti-entropy transfer: full advertisements with lease context.

    Each entry is an :class:`AdForwardPayload` so the receiver integrates
    it through the same replica-absorption path as a replication push —
    but sync entries carry the *remaining* lease duration, so
    reconciliation never extends the life of a silent service.
    """

    ads: tuple[AdForwardPayload, ...]

    def size_bytes(self) -> int:
        return 16 + sum(entry.size_bytes() for entry in self.ads)


@dataclass(frozen=True)
class ShardStorePayload:
    """One quorum-write replica push (sharded federation).

    Wraps the classic :class:`AdForwardPayload` so replicas absorb it
    through the same tombstone/capacity/lease path as the flood, plus a
    coordinator-scoped ``request_id`` correlating the ack.  Empty
    ``request_id`` ⇒ no ack expected (hint replay / read repair).
    """

    request_id: str
    entry: AdForwardPayload

    def size_bytes(self) -> int:
        return len(self.request_id) + self.entry.size_bytes() + 8


@dataclass(frozen=True)
class ShardAckPayload:
    """A replica's answer to a quorum write/renew/remove.

    ``found`` is False when a renew targeted an advertisement the
    replica does not hold (the coordinator NACKs the service so it
    republishes); ``version`` reports the replica's stored version for
    read-repair bookkeeping.
    """

    request_id: str
    ad_id: str
    found: bool = True
    version: int = 0

    def size_bytes(self) -> int:
        return len(self.request_id) + len(self.ad_id) + 16


@dataclass(frozen=True)
class ShardRenewPayload:
    """Refresh the replica leases of one quorum-replicated advertisement."""

    request_id: str
    ad_id: str
    epoch: int
    duration: float

    def size_bytes(self) -> int:
        return len(self.request_id) + len(self.ad_id) + 24


@dataclass(frozen=True)
class ShardRemovePayload:
    """Tombstone one advertisement on a replica (quorum remove)."""

    request_id: str
    ad_id: str

    def size_bytes(self) -> int:
        return len(self.request_id) + len(self.ad_id) + 16


@dataclass(frozen=True)
class ArtifactRequestPayload:
    """Fetch a named artifact (ontology, schema) from a registry."""

    artifact_name: str

    def size_bytes(self) -> int:
        return len(self.artifact_name) + 16


@dataclass(frozen=True)
class ArtifactReplyPayload:
    """The artifact, or a not-found marker."""

    artifact_name: str
    artifact: Any = None
    found: bool = True

    def size_bytes(self) -> int:
        from repro.netsim.messages import estimate_payload_size

        return len(self.artifact_name) + 16 + estimate_payload_size(self.artifact)
