"""The registry node: an autonomous, federating super-peer.

"A registry node … is a registry capable of collaborating in a dynamic
way with other registry nodes. A registry node can operate autonomously
since it stores advertisements and is capable of evaluating queries. In
addition, it is responsible for cleaning up advertisements representing
obsolete services."

Composition: an :class:`~repro.registry.AdvertisementStore` (thick
storage), a :class:`~repro.registry.LeaseManager` (aliveness, §4.8), a
:class:`~repro.registry.QueryEvaluator` over pluggable description models,
an :class:`~repro.core.repository.ArtifactRepository` (§4.6), and a
:class:`~repro.core.federation.Federation` (registry network maintenance,
§4.9). Query forwarding strategies live in
:mod:`repro.core.forwarding` and are selected by configuration.

Registry content is *soft state*: a crash loses everything, and the
architecture rebuilds it from service-node republishes and leases — which
is exactly why the paper insists on aliveness information rather than
durable registry storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core import protocol
from repro.core.admission import AdmissionController
from repro.core.antientropy import AntiEntropy
from repro.core.config import (
    COOPERATION_REPLICATE_ADS,
    DiscoveryConfig,
    STRATEGY_EXPANDING_RING,
    STRATEGY_FLOODING,
    STRATEGY_INFORMED,
    STRATEGY_RANDOM_WALK,
)
from repro.core.durability import (
    DurabilityManager,
    FENCED_MSG_TYPES,
    INCARNATION_HEADER,
)
from repro.core.federation import Federation
from repro.core.forwarding import (
    PendingAggregation,
    RingController,
    SeenQueries,
    WalkCoordinator,
)
from repro.core.repository import ArtifactRepository
from repro.core.routing import Router
from repro.core.sharding import ShardManager
from repro.descriptions.base import DescriptionModel, ModelRegistry
from repro.netsim.messages import Envelope
from repro.netsim.node import Node
from repro.obs.metrics import COUNT_BUCKETS
from repro.obs.tracing import Span, TraceRecorder
from repro.registry.advertisements import Advertisement, new_uuid
from repro.registry.leases import Lease, LeaseManager
from repro.registry.matching import QueryEvaluator, QueryHit
from repro.registry.rim import RegistryDescription, RegistryInfoModel
from repro.registry.store import AdvertisementStore


@dataclass
class _Subscription:
    """One standing query registered by a client (notification support)."""

    sub_id: str
    subscriber: str
    model_id: str
    query: Any
    expires_at: float


class RegistryNode(Node):
    """One autonomous registry super-peer."""

    role = "registry"

    def __init__(
        self,
        node_id: str,
        config: DiscoveryConfig,
        models: list[DescriptionModel],
        *,
        seeds: tuple[str, ...] = (),
        capacity: int | None = None,
    ) -> None:
        super().__init__(node_id)
        self.config = config
        #: Maximum stored advertisements ("capacity … distribution often
        #: [is] asymmetric"); ``None`` = unbounded. Publishes beyond it
        #: are NACKed, pushing the service to another registry.
        self.capacity = capacity
        self.models = ModelRegistry(models)
        self.store = AdvertisementStore()
        self.evaluator = QueryEvaluator(self.store, self.models)
        self.repository = ArtifactRepository()
        #: Static federation seeds (manual WAN configuration, §4.5);
        #: survive crashes, unlike learned neighbors.
        self.seeds = tuple(seeds)
        self.rim = RegistryInfoModel(
            registry_id=node_id,
            lan_name="",
            supported_models=self.models.model_ids(),
        )
        self.federation = Federation(self, config, describe=self.describe)
        self.antientropy = AntiEntropy(self, config)
        #: Overload protection: bounded service queue + BUSY shedding.
        self.admission = AdmissionController(self, config.admission)
        #: Adaptive target selection for fan-out and walk next hops, fed
        #: passively by forwarded-query round-trips and peer BUSYs.
        self.router = Router(config.routing, self)
        #: WAL + snapshot persistence and epoch-fenced crash recovery.
        #: Inert (no disk, no headers) unless ``config.durability`` opts in.
        self.durability = DurabilityManager(self, config.durability)
        #: Identity under which this registry's virtual nodes hash onto
        #: the consistent-hash ring. Normally the node id; a promoted
        #: warm standby inherits the identity of the registry it
        #: replaces so promotion moves no keys.
        self.ring_identity = node_id
        #: Consistent-hash placement, quorum writes, hinted handoff.
        #: Inert unless ``config.sharding`` opts in.
        self.shard = ShardManager(self, config)
        #: Highest incarnation epoch seen per peer (fencing state); only
        #: ever populated by peers that stamp their replication traffic.
        self._peer_incarnations: dict[str, int] = {}
        self.leases: LeaseManager | None = None
        self._seen: SeenQueries | None = None
        self._pending: dict[str, PendingAggregation] = {}
        self._walks: dict[str, WalkCoordinator] = {}
        self._seen_ad_pushes: set[tuple[str, int, int]] = set()
        self._subscriptions: dict[str, _Subscription] = {}
        self.responses_sent = 0
        self.notifications_sent = 0
        #: Query responses that arrived after their aggregation completed
        #: (work the aggregation timeout threw away).
        self.late_responses = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Arm periodic tasks, probe the LAN, and join seed registries."""
        self.rim.lan_name = self.lan_name or ""
        self.leases = LeaseManager(
            lambda: self.sim.now,
            default_duration=self.config.lease_duration,
            on_event=self._lease_event,
        )
        self._seen = SeenQueries(lambda: self.sim.now,
                                 protected=self._query_in_flight)
        if self.config.beacon_interval is not None:
            self.every(self.config.beacon_interval, self._beacon,
                       initial_delay=self.config.beacon_interval)
        if self.config.leasing_enabled:
            self.every(self.config.purge_interval, self._purge)
        self.federation.start()
        self.antientropy.start()
        self.durability.start()
        # Seed the shard ring with ourselves; gossip adds the rest. Our
        # own claim is stamped *now* so it beats any stale gossiped
        # snapshot of a previous identity holder.
        self.shard.note_member(self.node_id, self.ring_identity,
                               at=self.sim.now)
        # Find same-LAN peer registries immediately (gateway election needs
        # them) and join the statically seeded WAN peers.
        self.multicast(protocol.REGISTRY_PROBE)
        for seed in self.seeds:
            self.federation.join(seed)

    def admission_intercept(self, envelope: Envelope) -> bool:
        """Route deliveries through the admission controller."""
        return self.admission.intercept(envelope)

    def on_crash(self) -> None:
        """Queued-but-unserved work dies with the registry."""
        self.admission.on_crash()

    def on_restart(self) -> None:
        """Come back with empty volatile state and re-bootstrap.

        With durability enabled, :meth:`DurabilityManager.recover` then
        replays the persisted snapshot+WAL *before* any seed-join ack
        can arrive, so the join-time anti-entropy digest exchange runs
        against a warm store — a delta repair round, not a cold
        bootstrap.
        """
        self.store.clear()
        self.repository.clear()
        self.federation.reset()
        self.antientropy.reset()
        self._pending.clear()
        self._walks.clear()
        self._seen_ad_pushes.clear()
        self._subscriptions.clear()
        self._peer_incarnations.clear()
        self.shard.reset()
        self.start()
        self.durability.recover()

    def send(
        self,
        dst: str,
        msg_type: str,
        payload: Any = None,
        *,
        payload_type: str | None = None,
        headers: dict[str, Any] | None = None,
        hops: int = 0,
    ) -> Envelope:
        """Stamp replication traffic with our incarnation epoch.

        Only when durability is enabled — the default deployment sends
        byte-identical messages with no extra header. Headers do not
        contribute to the wire-size model, so enabling durability does
        not perturb delivery timing either.
        """
        if self.durability.enabled and msg_type in FENCED_MSG_TYPES:
            headers = self.durability.stamp(headers)
        return super().send(
            dst, msg_type, payload,
            payload_type=payload_type, headers=headers, hops=hops,
        )

    def _fence_stale(self, envelope: Envelope) -> bool:
        """Drop replication traffic from a peer's previous incarnation.

        A registry that crashed with messages in flight bumps its
        persisted epoch on recovery; once we have seen the new epoch
        (the rejoin handshake carries it), any lower-stamped straggler
        is a pre-crash write that post-recovery state already
        supersedes — absorbing it could resurrect retired data.
        Unstamped messages (durability off, plain peers) pass freely.
        """
        stamp = envelope.headers.get(INCARNATION_HEADER)
        if stamp is None:
            return False
        known = self._peer_incarnations.get(envelope.src, -1)
        if stamp < known:
            self.durability.fenced += 1
            if self.network is not None:
                self.network.metrics.counter("durability.fenced").inc()
                trace = self.trace
                if trace is not None:
                    trace.event(
                        "durability.fenced",
                        node=self.node_id,
                        ctx=self._trace_ctx,
                        attrs={"from": envelope.src, "stale": stamp,
                               "current": known},
                    )
            return True
        self._peer_incarnations[envelope.src] = stamp
        return False

    def describe(self) -> RegistryDescription:
        """Self-description for beacons, probe replies, and signalling."""
        return self.rim.describe(
            advertisement_count=len(self.store),
            neighbor_count=len(self.federation.neighbors),
            artifact_names=tuple(self.repository.names()),
            summary_terms=self._summary_terms(),
            issued_at=self.sim.now if self.network is not None else 0.0,
            # Carried only under sharding so peers place us (and a future
            # standby can inherit our positions); "" adds zero bytes.
            ring_id=self.ring_identity if self.shard.configured() else "",
        )

    def _summary_terms(self) -> tuple[str, ...]:
        """Index terms of the stored advertisements (content summary).

        Semantic advertisements index their category and outputs *plus all
        ancestors*, so a summary holding ``Radar`` also answers to a
        request for ``Sensor`` — subsumption-aware routing without
        shipping the advertisements themselves. THING is excluded (it
        would match everything).
        """
        if not self.config.summaries_enabled():
            return ()
        from repro.descriptions.template import tokenize
        from repro.semantics.ontology import THING
        from repro.semantics.profiles import ServiceProfile

        ontology, reasoner = self._semantic_reasoner()
        terms: set[str] = set()
        for ad in self.store.all():
            description = ad.description
            if ad.model_id == "uri":
                terms.add(description.type_uri)
            elif ad.model_id == "template":
                terms |= tokenize(description.category)
            elif ad.model_id == "semantic" and isinstance(description, ServiceProfile):
                concepts = {description.category, *description.outputs}
                terms |= concepts
                if reasoner is not None:
                    for concept in concepts:
                        if concept in ontology:
                            terms |= reasoner.ancestors_of(concept)
        terms.discard(THING)
        if reasoner is not None:
            # Near-root concepts (depth <= 1) match almost any query and
            # would make every summary a false positive: drop them.
            terms = {
                t for t in terms
                if t not in ontology or reasoner.depth_of(t) > 1
            }
        return tuple(sorted(terms))

    def _semantic_reasoner(self):
        """The semantic model's (ontology, cached reasoner), if present.

        Summary and query-term expansion reuse the reasoner's memoized
        ancestor closures instead of re-walking the ontology DAG per
        concept — the same caches the query-path concept index warms.
        """
        if self.models.supports("semantic"):
            model = self.models.get("semantic")
            return getattr(model, "ontology", None), getattr(model, "reasoner", None)
        return None, None

    def _query_terms(self, payload: protocol.QueryPayload) -> frozenset[str]:
        """The index terms a query can match against summaries."""
        from repro.descriptions.template import tokenize
        from repro.semantics.ontology import THING
        from repro.semantics.profiles import ServiceRequest

        query = payload.query
        if payload.model_id == "uri":
            return frozenset({query.type_uri})
        if payload.model_id == "template":
            return frozenset(query.tokens)
        if payload.model_id == "semantic" and isinstance(query, ServiceRequest):
            terms: set[str] = set()
            concepts = set(query.desired_outputs)
            if query.category is not None:
                concepts.add(query.category)
            terms |= concepts
            ontology, reasoner = self._semantic_reasoner()
            if reasoner is not None:
                for concept in concepts:
                    if concept in ontology:
                        terms |= reasoner.ancestors_of(concept)
            terms.discard(THING)
            return frozenset(terms)
        return frozenset()

    # -- registry network maintenance ----------------------------------------

    def _beacon(self) -> None:
        self.multicast(protocol.REGISTRY_BEACON, self.describe())

    def handle_registry_probe(self, envelope: Envelope) -> None:
        self.send(envelope.src, protocol.REGISTRY_PROBE_REPLY, self.describe())

    def handle_registry_probe_reply(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, RegistryDescription):
            self.federation.observe(envelope.payload)

    def handle_registry_beacon(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, RegistryDescription):
            self.federation.observe(envelope.payload)

    def handle_registry_ping(self, envelope: Envelope) -> None:
        self.send(envelope.src, protocol.REGISTRY_PONG)

    def handle_registry_pong(self, envelope: Envelope) -> None:
        self.federation.handle_pong(envelope.src)
        # Proof of life: replay any writes hinted while the peer was down.
        self.shard.peer_alive(envelope.src)

    def handle_registry_list_request(self, envelope: Envelope) -> None:
        self.send(envelope.src, protocol.REGISTRY_LIST_REPLY, self.federation.registry_list())

    def handle_registry_list_reply(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, protocol.RegistryListPayload):
            self.federation.handle_registry_list(envelope.payload)

    def handle_federation_join(self, envelope: Envelope) -> None:
        if self._fence_stale(envelope):
            return
        description = envelope.payload if isinstance(envelope.payload, RegistryDescription) \
            else None
        self.federation.handle_join(envelope.src, description)

    def handle_federation_join_ack(self, envelope: Envelope) -> None:
        if self._fence_stale(envelope):
            return
        description = envelope.payload if isinstance(envelope.payload, RegistryDescription) \
            else None
        self.federation.handle_join_ack(envelope.src, description)

    def handle_federation_leave(self, envelope: Envelope) -> None:
        member = envelope.payload.member \
            if isinstance(envelope.payload, protocol.LeavePayload) else ""
        self.federation.handle_leave(envelope.src, member)

    # -- repository (§4.6) ------------------------------------------------------

    def store_artifact(self, name: str, artifact: Any) -> None:
        """Host an ontology/schema so disconnected clients can fetch it."""
        self.repository.store(name, artifact)

    def handle_artifact_request(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ArtifactRequestPayload):
            return
        artifact = self.repository.fetch(payload.artifact_name)
        self.send(
            envelope.src,
            protocol.ARTIFACT_REPLY,
            protocol.ArtifactReplyPayload(
                artifact_name=payload.artifact_name,
                artifact=artifact,
                found=artifact is not None,
            ),
        )

    # -- publishing ---------------------------------------------------------------

    def handle_publish(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.PublishPayload):
            return
        if not self.models.supports(payload.model_id):
            # Silently discard descriptions we cannot evaluate; the
            # publisher will fail over to a capable registry on timeout.
            self.models.discarded_payloads += 1
            return
        if self.shard.active():
            # Sharded federation: this registry coordinates a quorum
            # write to the advertisement's replica set instead of
            # storing locally and flooding.
            self._shard_publish(envelope.src, payload)
            return
        ad_id = payload.ad_id or new_uuid("ad")
        if (
            self.capacity is not None
            and len(self.store) >= self.capacity
            and ad_id not in self.store
        ):
            self.send(
                envelope.src,
                protocol.PUBLISH_NACK,
                protocol.PublishNack(ad_id=ad_id, model_id=payload.model_id),
            )
            return
        existing = self.store.discard(ad_id)
        version = existing.version + 1 if existing is not None else 1
        ad = Advertisement(
            ad_id=ad_id,
            service_node=payload.service_node,
            service_name=payload.service_name,
            endpoint=payload.endpoint,
            model_id=payload.model_id,
            description=payload.description,
            version=version,
            published_at=self.sim.now,
            home_registry=self.node_id,
        )
        self.store.put(ad)
        self.antientropy.note_stored(ad_id, self._lease_epoch())
        self.rim.publishes += 1
        lease_id = ""
        duration = float("inf")
        expires_at = float("inf")
        if self.config.leasing_enabled and self.leases is not None:
            lease = self.leases.grant(ad_id, payload.lease_duration)
            lease_id = lease.lease_id
            duration = lease.duration
            expires_at = lease.expires_at
        self.durability.log_store(
            ad, lease_id=lease_id, duration=duration, expires_at=expires_at,
            origin_epoch=self._lease_epoch(),
        )
        self.send(
            envelope.src,
            protocol.PUBLISH_ACK,
            protocol.PublishAck(
                ad_id=ad_id,
                lease_id=lease_id,
                lease_duration=duration,
                model_id=payload.model_id,
            ),
        )
        self._notify_subscribers(ad)
        if self.config.cooperation == COOPERATION_REPLICATE_ADS:
            self._push_ad(ad, exclude=set())

    def handle_renew(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.RenewPayload):
            return
        self.rim.renews += 1
        if not self.config.leasing_enabled or self.leases is None:
            self.send(envelope.src, protocol.RENEW_ACK, payload)
            return
        if self.shard.active() and payload.lease_id.startswith("shard:"):
            # The service published through us while we were not in the
            # advertisement's replica set: relay the renewal to the
            # replicas actually holding the leases.
            self._shard_renew_relay(envelope.src, payload)
            return
        try:
            lease = self.leases.renew(payload.lease_id)
        except Exception:
            # Unknown/expired lease: the service must republish (§4.8).
            self.send(envelope.src, protocol.RENEW_NACK, payload)
            return
        self.send(envelope.src, protocol.RENEW_ACK, payload)
        if payload.ad_id in self.store:
            self.antientropy.note_stored(payload.ad_id, self._lease_epoch())
            self.durability.log_renew(
                payload.ad_id, expires_at=lease.expires_at,
                origin_epoch=self._lease_epoch(),
            )
        if self.config.cooperation == COOPERATION_REPLICATE_ADS and payload.ad_id in self.store:
            if self.shard.active():
                # Refresh only the other replicas of this ad's shard —
                # a compact SHARD_RENEW, not a full-store flood.
                self._shard_refresh(payload.ad_id)
            else:
                # Refresh replicas: the lease epoch advances the dedup
                # key so the push floods through.
                self._push_ad(self.store.get(payload.ad_id), exclude=set())

    def handle_remove(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.RemovePayload):
            return
        if self.shard.active():
            self._shard_remove(envelope.src, payload)
            return
        removed = self.store.discard(payload.ad_id)
        if self.leases is not None:
            self.leases.cancel_for_ad(payload.ad_id)
        if removed is not None:
            self.rim.removals += 1
            # Tombstone the removal so a stale replica cannot resurrect
            # the advertisement through anti-entropy reconciliation.
            self.antientropy.note_removed(payload.ad_id, removed.version)
            self.durability.log_remove(payload.ad_id, removed.version)
        self.send(envelope.src, protocol.REMOVE_ACK, payload)

    def _purge(self) -> None:
        """Expire lapsed leases/subscriptions and drop their state."""
        if self.leases is not None:
            for ad_id in self.leases.expired_ads():
                if self.store.discard(ad_id) is not None:
                    self.rim.removals += 1
                    self.antientropy.note_dropped(ad_id)
                    self.durability.log_expire(ad_id)
        now = self.sim.now
        lapsed = [sid for sid, sub in self._subscriptions.items()
                  if now >= sub.expires_at]
        for sub_id in lapsed:
            del self._subscriptions[sub_id]

    # -- subscriptions / notifications ------------------------------------------

    def handle_subscribe(self, envelope: Envelope) -> None:
        """Register (or refresh) a standing query.

        Re-subscribing with the same ``sub_id`` extends the expiry — the
        subscription analogue of a lease renewal.
        """
        payload = envelope.payload
        if not isinstance(payload, protocol.SubscribePayload):
            return
        if not self.models.supports(payload.model_id):
            self.models.discarded_payloads += 1
            return
        expires_at = self.sim.now + payload.duration
        self._subscriptions[payload.sub_id] = _Subscription(
            sub_id=payload.sub_id,
            subscriber=envelope.src,
            model_id=payload.model_id,
            query=payload.query,
            expires_at=expires_at,
        )
        self.send(
            envelope.src,
            protocol.SUBSCRIBE_ACK,
            protocol.SubscribeAck(sub_id=payload.sub_id, expires_at=expires_at),
        )

    def handle_unsubscribe(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, protocol.UnsubscribePayload):
            self._subscriptions.pop(payload.sub_id, None)

    def _notify_subscribers(self, ad: Advertisement) -> None:
        """Push a freshly stored advertisement to matching subscribers."""
        if not self._subscriptions or not self.models.supports(ad.model_id):
            return
        model = self.models.get(ad.model_id)
        if not model.can_evaluate():
            return
        for sub in sorted(self._subscriptions.values(), key=lambda s: s.sub_id):
            if sub.model_id != ad.model_id:
                continue
            verdict = model.evaluate(ad.description, sub.query)
            if not verdict.matched:
                continue
            self.notifications_sent += 1
            self.send(
                sub.subscriber,
                protocol.NOTIFY,
                protocol.NotifyPayload(
                    sub_id=sub.sub_id,
                    hit=QueryHit(advertisement=ad, degree=verdict.degree,
                                 score=verdict.score),
                ),
            )

    def on_neighbor_added(self, neighbor: str) -> None:
        """A federation link formed: synchronize state over it.

        In replicate-advertisements cooperation, a new link triggers
        anti-entropy: with reconciliation enabled, the two sides exchange
        a compact store digest and delta-pull only the missing or stale
        advertisements — so members joining (or re-joining after a crash
        or partition heal) catch up within one round-trip without either
        waiting for the next lease refresh or re-shipping the whole
        store. With reconciliation disabled, the pre-digest behavior
        remains: every stored advertisement is pushed to the new
        neighbor. Independently, repository artifacts the neighbor
        advertises and we lack are fetched (§4.6), so ontologies spread
        through the registry network without any Internet dependency.
        """
        if self.config.artifact_sync:
            known = self.federation.known.get(neighbor)
            if known is not None:
                for name in known.artifact_names:
                    if name not in self.repository:
                        self.send(
                            neighbor,
                            protocol.ARTIFACT_REQUEST,
                            protocol.ArtifactRequestPayload(artifact_name=name),
                        )
        if self.config.cooperation != COOPERATION_REPLICATE_ADS:
            return
        self.shard.peer_alive(neighbor)
        if self.antientropy.enabled():
            self.antientropy.sync_with(neighbor)
            return
        if self.shard.active():
            # Without reconciliation, hinted handoff and rebalancing are
            # the only repair channels — never ship the whole (sharded)
            # store to a neighbor that mostly does not own it.
            return
        epoch = self._lease_epoch()
        for ad in self.store.all():
            payload = protocol.AdForwardPayload(
                advertisement=ad,
                lease_duration=self.config.lease_duration,
                epoch=epoch,
            )
            self._seen_ad_pushes.add(payload.dedup_key())
            self.send(neighbor, protocol.AD_FORWARD, payload)

    def handle_artifact_reply(self, envelope: Envelope) -> None:
        """An artifact arrived from a peer: host it, and use it.

        Ontologies are attached to our semantic model immediately, turning
        a registry that could not evaluate semantic queries into one that
        can (experiment E12).
        """
        payload = envelope.payload
        if not isinstance(payload, protocol.ArtifactReplyPayload) or not payload.found:
            return
        self.repository.store(payload.artifact_name, payload.artifact)
        from repro.descriptions.semantic import SemanticModel
        from repro.semantics.ontology import Ontology

        if isinstance(payload.artifact, Ontology) and self.models.supports("semantic"):
            model = self.models.get("semantic")
            if isinstance(model, SemanticModel) and not model.can_evaluate():
                model.attach_ontology(payload.artifact)

    # -- replication cooperation ---------------------------------------------------

    def _lease_epoch(self) -> int:
        """Monotone epoch advancing once per renew interval."""
        return int(self.sim.now / max(self.config.renew_interval, 1e-9))

    def _push_ad(self, ad: Advertisement, *, exclude: set[str]) -> None:
        payload = protocol.AdForwardPayload(
            advertisement=ad,
            lease_duration=self.config.lease_duration,
            epoch=self._lease_epoch(),
        )
        self._seen_ad_pushes.add(payload.dedup_key())
        for neighbor in self.federation.forward_targets(exclude):
            self.send(neighbor, protocol.AD_FORWARD, payload)

    def _absorb_replica(self, payload: protocol.AdForwardPayload) -> bool:
        """Integrate one replicated advertisement into the local store.

        Shared by the ``AD_FORWARD`` flood and anti-entropy sync; returns
        True when the advertisement was stored (or refreshed). Tombstoned
        advertisements are never resurrected; the store's version guard
        rejects stale copies on its own.
        """
        ad = payload.advertisement
        if self.antientropy.blocked(ad.ad_id, ad.version):
            self.antientropy.resurrections_blocked += 1
            if self.network is not None:
                self.network.stats.record_recovery("resurrection-blocked")
            return False
        over_capacity = (
            self.capacity is not None
            and len(self.store) >= self.capacity
            and ad.ad_id not in self.store
        )
        if not self.models.supports(ad.model_id) or over_capacity:
            self.models.discarded_payloads += 1
            return False
        fresh = ad.ad_id not in self.store
        self.store.put(ad)
        self.antientropy.note_stored(ad.ad_id, payload.epoch)
        lease_id = ""
        duration = payload.lease_duration
        expires_at = float("inf")
        if self.config.leasing_enabled and self.leases is not None:
            lease = self.leases.grant(ad.ad_id, payload.lease_duration)
            lease_id = lease.lease_id
            duration = lease.duration
            expires_at = lease.expires_at
        self.durability.log_store(
            ad, lease_id=lease_id, duration=duration, expires_at=expires_at,
            origin_epoch=payload.epoch,
        )
        if fresh:
            self._notify_subscribers(ad)
        return True

    def handle_ad_forward(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.AdForwardPayload):
            return
        if self._fence_stale(envelope):
            return
        key = payload.dedup_key()
        if key in self._seen_ad_pushes:
            return
        self._seen_ad_pushes.add(key)
        if self.shard.active():
            # Defensive: replication under sharding travels via
            # SHARD_STORE/SHARD_TRANSFER; a stray flood push must not
            # violate placement or re-fan out to every neighbor.
            if self.shard.owns_local(payload.advertisement.ad_id):
                self._absorb_replica(payload)
            return
        self._absorb_replica(payload)
        # Flood onward regardless of local support — we may bridge two
        # capable registries.
        for neighbor in self.federation.forward_targets({envelope.src}):
            self.send(neighbor, protocol.AD_FORWARD, payload)

    # -- sharded federation (quorum replication) -----------------------------------

    def _shard_publish(self, requester: str, payload: protocol.PublishPayload) -> None:
        """Coordinate a quorum write for one publish (sharding on).

        The advertisement's replica set comes from the consistent-hash
        ring; this registry stores a copy only if it is *in* that set.
        The service is acked once W replicas confirmed; a replica that
        stays silent past the quorum timeout gets the write buffered as
        a hint and replayed on its next proof of life.
        """
        ad_id = payload.ad_id or new_uuid("ad")
        replicas = self.shard.replicas_for(ad_id)
        me = self.node_id
        epoch = self._lease_epoch()
        existing = self.store.get(ad_id) if ad_id in self.store else None
        version = existing.version + 1 if existing is not None else 1
        ad = Advertisement(
            ad_id=ad_id,
            service_node=payload.service_node,
            service_name=payload.service_name,
            endpoint=payload.endpoint,
            model_id=payload.model_id,
            description=payload.description,
            version=version,
            published_at=self.sim.now,
            home_registry=me,
        )
        self.rim.publishes += 1
        acked = 0
        lease_id = f"shard:{ad_id}"
        duration = payload.lease_duration or self.config.lease_duration
        if me in replicas:
            if (
                self.capacity is not None
                and len(self.store) >= self.capacity
                and ad_id not in self.store
            ):
                self.send(
                    requester,
                    protocol.PUBLISH_NACK,
                    protocol.PublishNack(ad_id=ad_id, model_id=payload.model_id),
                )
                return
            self.store.put(ad)
            self.antientropy.note_stored(ad_id, epoch)
            expires_at = float("inf")
            if self.config.leasing_enabled and self.leases is not None:
                lease = self.leases.grant(ad_id, payload.lease_duration)
                lease_id = lease.lease_id
                duration = lease.duration
                expires_at = lease.expires_at
            self.durability.log_store(
                ad, lease_id=lease_id, duration=duration,
                expires_at=expires_at, origin_epoch=epoch,
            )
            self._notify_subscribers(ad)
            acked = 1

        def on_success() -> None:
            self.send(
                requester,
                protocol.PUBLISH_ACK,
                protocol.PublishAck(
                    ad_id=ad_id, lease_id=lease_id,
                    lease_duration=duration, model_id=payload.model_id,
                ),
            )

        def on_failure() -> None:
            self.send(
                requester,
                protocol.PUBLISH_NACK,
                protocol.PublishNack(
                    ad_id=ad_id, model_id=payload.model_id, reason="quorum",
                ),
            )

        others = [r for r in replicas if r != me]
        needed = min(self.shard.cfg.write_quorum, max(len(replicas), 1))
        if not others:
            on_success() if acked >= needed else on_failure()
            return
        entry = protocol.AdForwardPayload(
            advertisement=ad, lease_duration=duration, epoch=epoch,
        )
        request_id = self.shard.begin_write(
            ad_id=ad_id, targets=others, needed=needed, acked=acked,
            on_success=on_success, on_failure=on_failure,
        )
        # The hint copy carries no request id — replays need no ack.
        self.shard.park_hint_payload(
            request_id, protocol.SHARD_STORE,
            protocol.ShardStorePayload(request_id="", entry=entry),
        )
        store_payload = protocol.ShardStorePayload(request_id=request_id, entry=entry)
        for target in others:
            self.send(target, protocol.SHARD_STORE, store_payload)

    def _shard_renew_relay(self, requester: str, payload: protocol.RenewPayload) -> None:
        """Relay a renewal for an advertisement we do not replicate."""
        ad_id = payload.ad_id
        replicas = [r for r in self.shard.replicas_for(ad_id) if r != self.node_id]
        if not replicas:
            self.send(requester, protocol.RENEW_NACK, payload)
            return

        def on_success() -> None:
            self.send(requester, protocol.RENEW_ACK, payload)

        def on_failure() -> None:
            # No replica still holds the lease: the service republishes.
            self.send(requester, protocol.RENEW_NACK, payload)

        request_id = self.shard.begin_write(
            ad_id=ad_id, targets=tuple(replicas), needed=1,
            on_success=on_success, on_failure=on_failure,
        )
        renew = protocol.ShardRenewPayload(
            request_id=request_id, ad_id=ad_id,
            epoch=self._lease_epoch(), duration=self.config.lease_duration,
        )
        for target in replicas:
            self.send(target, protocol.SHARD_RENEW, renew)

    def _shard_refresh(self, ad_id: str) -> None:
        """Fire-and-forget replica-lease refresh after a local renewal."""
        renew = protocol.ShardRenewPayload(
            request_id="", ad_id=ad_id,
            epoch=self._lease_epoch(), duration=self.config.lease_duration,
        )
        for target in self.shard.replicas_for(ad_id):
            if target != self.node_id:
                self.send(target, protocol.SHARD_RENEW, renew)

    def _shard_remove(self, requester: str, payload: protocol.RemovePayload) -> None:
        """Quorum remove: tombstone the ad across its replica set.

        The service is always acked (removal is idempotent and leases
        expire regardless); the quorum machinery still tracks W acks so
        silent replicas get a tombstone hint replayed later instead of
        resurrecting the ad through anti-entropy.
        """
        ad_id = payload.ad_id
        replicas = self.shard.replicas_for(ad_id)
        me = self.node_id
        acked = 0
        removed = self.store.discard(ad_id)
        if self.leases is not None:
            self.leases.cancel_for_ad(ad_id)
        if removed is not None:
            self.rim.removals += 1
            self.antientropy.note_removed(ad_id, removed.version)
            self.durability.log_remove(ad_id, removed.version)
        if me in replicas:
            acked = 1
        self.send(requester, protocol.REMOVE_ACK, payload)
        others = [r for r in replicas if r != me]
        if not others:
            return
        needed = min(self.shard.cfg.write_quorum, max(len(replicas), 1))
        request_id = self.shard.begin_write(
            ad_id=ad_id, targets=others, needed=needed, acked=acked,
            on_success=lambda: None, on_failure=lambda: None,
        )
        self.shard.park_hint_payload(
            request_id, protocol.SHARD_REMOVE,
            protocol.ShardRemovePayload(request_id="", ad_id=ad_id),
        )
        remove = protocol.ShardRemovePayload(request_id=request_id, ad_id=ad_id)
        for target in others:
            self.send(target, protocol.SHARD_REMOVE, remove)

    def handle_shard_store(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ShardStorePayload):
            return
        if self._fence_stale(envelope):
            return
        absorbed = self._absorb_replica(payload.entry)
        ad_id = payload.entry.advertisement.ad_id
        held = ad_id in self.store
        if payload.request_id:
            self.send(
                envelope.src,
                protocol.SHARD_STORE_ACK,
                protocol.ShardAckPayload(
                    request_id=payload.request_id,
                    ad_id=ad_id,
                    # Holding an equal-or-newer copy satisfies the write
                    # even when the incoming version was stale.
                    found=absorbed or held,
                    version=self.store.get(ad_id).version if held else 0,
                ),
            )
        self.shard.publish_gauges()

    def handle_shard_store_ack(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ShardAckPayload):
            return
        if self._fence_stale(envelope):
            return
        self.shard.on_ack(payload.request_id, envelope.src, ok=payload.found)
        # An ack is proof of life: flush any hints parked for the peer.
        self.shard.peer_alive(envelope.src)

    def handle_shard_renew(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ShardRenewPayload):
            return
        if self._fence_stale(envelope):
            return
        found = payload.ad_id in self.store
        if found:
            if self.config.leasing_enabled and self.leases is not None:
                lease = self.leases.grant(payload.ad_id, payload.duration)
                self.durability.log_renew(
                    payload.ad_id, expires_at=lease.expires_at,
                    origin_epoch=payload.epoch,
                )
            self.antientropy.note_stored(payload.ad_id, payload.epoch)
        if payload.request_id:
            version = self.store.get(payload.ad_id).version if found else 0
            self.send(
                envelope.src,
                protocol.SHARD_RENEW_ACK,
                protocol.ShardAckPayload(
                    request_id=payload.request_id, ad_id=payload.ad_id,
                    found=found, version=version,
                ),
            )

    def handle_shard_renew_ack(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ShardAckPayload):
            return
        if self._fence_stale(envelope):
            return
        self.shard.on_ack(payload.request_id, envelope.src, ok=payload.found)
        self.shard.peer_alive(envelope.src)

    def handle_shard_remove(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ShardRemovePayload):
            return
        if self._fence_stale(envelope):
            return
        removed = self.store.discard(payload.ad_id)
        if self.leases is not None:
            self.leases.cancel_for_ad(payload.ad_id)
        if removed is not None:
            self.rim.removals += 1
            self.antientropy.note_removed(payload.ad_id, removed.version)
            self.durability.log_remove(payload.ad_id, removed.version)
        if payload.request_id:
            self.send(
                envelope.src,
                protocol.SHARD_REMOVE_ACK,
                protocol.ShardAckPayload(
                    request_id=payload.request_id, ad_id=payload.ad_id,
                ),
            )

    def handle_shard_remove_ack(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ShardAckPayload):
            return
        if self._fence_stale(envelope):
            return
        self.shard.on_ack(payload.request_id, envelope.src, ok=payload.found)
        self.shard.peer_alive(envelope.src)

    def handle_shard_transfer(self, envelope: Envelope) -> None:
        """Bulk key movement from a rebalancing peer: absorb, don't flood."""
        payload = envelope.payload
        if not isinstance(payload, protocol.SyncAdsPayload):
            return
        if self._fence_stale(envelope):
            return
        for entry in payload.ads:
            if self._absorb_replica(entry):
                self.shard.ads_moved_in += 1
        self.shard.publish_gauges()

    def on_registry_observed(self, description: RegistryDescription) -> None:
        """Federation learned of a registry: place it on the shard ring."""
        self.shard.note_member(
            description.registry_id,
            description.ring_id or description.registry_id,
            at=description.issued_at,
        )

    def on_peer_departed(self, peer: str, *, left_ring: bool = False) -> None:
        """A federation member left gracefully or was declared dead.

        In-flight aggregations waiting on it drain immediately (an empty
        answer) so queries re-resolve to surviving replicas instead of
        riding out the timeout against a tombstoned member, and the
        router forgets its health/cooldown state. Only a *graceful*
        departure shrinks the shard ring — a crash is masked by replica
        selection and hinted handoff, so flapping cannot thrash keys.
        """
        self.router.forget(peer)
        for pending in list(self._pending.values()):
            pending.drain_target(peer)
        if left_ring:
            self.shard.drop_member(peer)

    def on_departing(self) -> None:
        """We are leaving the federation: answer what we can, now."""
        for pending in list(self._pending.values()):
            pending.flush()

    # -- anti-entropy reconciliation ----------------------------------------------

    def handle_antientropy_digest(self, envelope: Envelope) -> None:
        if self._fence_stale(envelope):
            return
        if isinstance(envelope.payload, protocol.DigestPayload):
            # A digest is direct proof of life: replay any hinted writes
            # before reconciling, so the peer's digest round converges on
            # the post-handoff store.
            self.shard.peer_alive(envelope.src)
            self.antientropy.handle_digest(envelope.src, envelope.payload)

    def handle_antientropy_pull(self, envelope: Envelope) -> None:
        if self._fence_stale(envelope):
            return
        if isinstance(envelope.payload, protocol.DigestPullPayload):
            self.antientropy.handle_pull(envelope.src, envelope.payload)

    def handle_antientropy_ads(self, envelope: Envelope) -> None:
        if self._fence_stale(envelope):
            return
        if isinstance(envelope.payload, protocol.SyncAdsPayload):
            self.antientropy.handle_ads(envelope.src, envelope.payload)

    # -- observability hooks ------------------------------------------------------

    def _lease_event(self, kind: str, lease: Lease) -> None:
        """Lease lifecycle callback: mirror into metrics and the trace."""
        if self.network is None:
            return
        self.network.metrics.counter(f"lease.{kind}").inc()
        if self.network.health.active:
            self.network.health.feed_lease(kind, self.node_id)
        trace = self.trace
        if trace is not None:
            trace.event(
                f"lease.{kind}",
                node=self.node_id,
                ctx=self._trace_ctx,
                attrs={
                    "ad": trace.alias(lease.ad_id),
                    "lease": trace.alias(lease.lease_id),
                },
            )

    def _query_span(self, name: str, envelope: Envelope, payload: protocol.QueryPayload) -> Span | None:
        """Open a processing span for a (non-duplicate) query envelope.

        The span continues the envelope's trace (or roots a new one for
        untraced senders) and becomes this dispatch's active context, so
        synchronous child sends parent to it automatically. The span is
        closed by :meth:`_respond` when the answer leaves.
        """
        trace = self.trace
        if trace is None:
            return None
        span = trace.start_span(
            name,
            node=self.node_id,
            ctx=TraceRecorder.extract(envelope.headers),
            attrs={
                "query": trace.alias(payload.query_id),
                "from": envelope.src,
                "ttl": payload.ttl,
            },
        )
        self._trace_ctx = span.context
        return span

    # -- querying ----------------------------------------------------------------------

    def _query_in_flight(self, query_id: str) -> bool:
        """Whether a query id still has live aggregation/walk state.

        Used as the :class:`SeenQueries` eviction guard: a flood filling
        the loop-avoidance table must not evict an in-flight id, or a
        late duplicate would re-enter the fan-out and double-count hits
        in the pending aggregation.
        """
        return query_id in self._pending or query_id in self._walks

    def _local_hits(
        self, payload: protocol.QueryPayload, *, parent: Span | None = None
    ) -> list[QueryHit]:
        before = self.evaluator.descriptions_evaluated
        hits = self.evaluator.evaluate(
            payload.model_id, payload.query, max_results=payload.max_results
        )
        if self.network is not None:
            evaluated = self.evaluator.descriptions_evaluated - before
            self.network.metrics.histogram(
                "matchmaker.evals_per_query", buckets=COUNT_BUCKETS
            ).observe(evaluated)
            ctx = parent.context if parent is not None else self._trace_ctx
            trace = self.trace
            if ctx is not None and trace is not None:
                trace.event(
                    "registry.match",
                    node=self.node_id,
                    ctx=ctx,
                    attrs={"evaluated": evaluated, "hits": len(hits)},
                )
        return hits

    def _respond(
        self,
        dst: str,
        query_id: str,
        hits: list[QueryHit],
        responders: int,
        *,
        span: Span | None = None,
        degraded: bool = False,
    ) -> None:
        """Answer ``dst``; with ``span``, the response rides (and closes)
        that span's trace — needed for completions that fire from timers,
        where no envelope context is active."""
        self.responses_sent += 1
        headers: dict[str, Any] | None = None
        if span is not None:
            headers = {}
            TraceRecorder.inject(headers, span.context)
        self.send(
            dst,
            protocol.QUERY_RESPONSE,
            protocol.ResponsePayload(
                query_id=query_id, hits=tuple(hits), responders=responders,
                degraded=degraded,
                # Piggyback our admission-queue depth: free load signal
                # for the receiver's router (rides in the fixed payload
                # overhead, so wire size — and delivery time — is
                # unchanged).
                queue_depth=self.admission.depth,
            ),
            headers=headers,
        )
        if span is not None and self.trace is not None:
            self.trace.end_span(
                span, attrs={"hits": len(hits), "responders": responders}
            )

    def _overload_shortcut(
        self,
        requester: str,
        payload: protocol.QueryPayload,
        span: Span | None,
    ) -> bool:
        """Degraded mode: past the threshold, skip WAN fan-out entirely.

        A saturated registry stops multiplying its own load through the
        federation — it serves whatever its local store holds and marks
        the answer ``degraded=True`` so the client knows coverage was
        sacrificed for latency. Returns True when the query was answered
        here.
        """
        if not self.admission.overloaded:
            return False
        local = self._local_hits(payload, parent=span)
        if self.network is not None:
            self.network.metrics.counter("admission.degraded").inc()
        trace = self.trace
        if trace is not None:
            trace.event(
                "admission.degraded",
                node=self.node_id,
                ctx=span.context if span is not None else self._trace_ctx,
                attrs={"query": trace.alias(payload.query_id),
                       "depth": self.admission.depth},
            )
        self._respond(requester, payload.query_id, local, 1, span=span,
                      degraded=True)
        return True

    def handle_busy(self, envelope: Envelope) -> None:
        """A peer registry shed our forwarded work.

        Persistent BUSY is treated like suspicion: it feeds the same
        circuit breaker as missed pongs and aggregation timeouts, so a
        chronically saturated neighbor drops out of the fan-out until it
        recovers. The pending aggregation drains immediately with an
        empty answer instead of riding out the timeout.
        """
        payload = envelope.payload
        if not isinstance(payload, protocol.BusyPayload):
            return
        self.federation.record_neighbor_failure(envelope.src)
        self.router.on_busy(
            envelope.src,
            retry_after=payload.retry_after,
            queue_depth=payload.queue_depth,
        )
        if self.network is not None:
            self.network.metrics.counter("admission.busy_received").inc()
        pending = self._pending.get(payload.request_id)
        if pending is not None:
            pending.add_response(
                protocol.ResponsePayload(
                    query_id=payload.request_id, hits=(), responders=0
                ),
                src=envelope.src,
            )
            return
        walk = self._walks.get(payload.request_id)
        if walk is not None:
            walk.walk_ended()

    def handle_query(self, envelope: Envelope) -> None:
        """A client query: this registry is the entry point/coordinator."""
        payload = envelope.payload
        if not isinstance(payload, protocol.QueryPayload):
            return
        assert self._seen is not None
        self.rim.queries_served += 1
        if self._query_in_flight(payload.query_id):
            # Belt and braces against loop-table eviction: a duplicate of
            # a query we are still aggregating must never restart it.
            return
        if not self._seen.check_and_mark(payload.query_id):
            return
        client = envelope.src
        span = self._query_span("registry.query", envelope, payload)
        if self._overload_shortcut(client, payload, span):
            return
        if self.shard.active():
            # Sharded federation: contact one healthy member per replica
            # group instead of flooding every neighbor.
            self._start_shard_query(client, payload, span=span)
            return
        if self.config.strategy == STRATEGY_EXPANDING_RING:
            self._start_ring(client, payload, span=span)
        elif self.config.strategy == STRATEGY_RANDOM_WALK:
            self._start_walk(client, payload, span=span)
        elif self.config.strategy == STRATEGY_INFORMED:
            self._start_informed(client, payload, span=span)
        else:
            self._start_flood(client, payload, span=span)

    # .. sharded replica reads ..............................................

    def _start_shard_query(
        self, client: str, payload: protocol.QueryPayload, *, span: Span | None = None
    ) -> None:
        """Bounded scatter-gather over a replica-group cover set.

        Advertisements are sharded by ``ad_id``, which a query does not
        know — so full coverage needs one live replica of *every* shard.
        The cover is ~S/R registries (vs all S under flooding), chosen
        health-first so fail-stopped replicas are masked; a chosen
        replica that stays silent is retried once on a sibling replica
        before the aggregation gives up on its groups.
        """
        local = self._local_hits(payload, parent=span)
        self.shard.observe_read(payload.query_id, self.node_id, local)
        targets = self.shard.read_cover()
        if not targets:
            self.shard.end_read(payload.query_id)
            self._respond(client, payload.query_id, local, 1, span=span)
            return
        self._fan_out(
            payload.with_ttl(0),
            targets,
            local,
            on_complete=lambda hits, responders: self._respond(
                client, payload.query_id, hits, responders, span=span
            ),
            parent=span,
            retarget_planner=self._shard_retarget_planner(),
        )

    def _shard_retarget_planner(self):
        """Alternate-replica picker for fan-out targets that stay silent."""
        if not self.shard.cfg.read_retry:
            return None

        def plan(failed: list[str], contacted: set[str]) -> list[str]:
            replacements: list[str] = []
            used = set(contacted)
            for target in failed:
                alternate = self.shard.alternate_for(target, used)
                if alternate is not None:
                    replacements.append(alternate)
                    used.add(alternate)
                    self.shard.read_retries += 1
                    if self.network is not None:
                        self.network.metrics.counter("shard.read_retries").inc()
            return replacements

        return plan

    # .. flooding ..........................................................

    def _start_flood(
        self, client: str, payload: protocol.QueryPayload, *, span: Span | None = None
    ) -> None:
        local = self._local_hits(payload, parent=span)
        ttl = payload.ttl
        targets = self.federation.forward_targets({client}) if ttl > 0 else []
        if not targets:
            self._respond(client, payload.query_id, local, 1, span=span)
            return
        self._fan_out(
            payload.with_ttl(ttl - 1),
            targets,
            local,
            on_complete=lambda hits, responders: self._respond(
                client, payload.query_id, hits, responders, span=span
            ),
            parent=span,
        )

    def _fan_out(
        self,
        forwarded: protocol.QueryPayload,
        targets: list[str],
        local: list[QueryHit],
        *,
        on_complete,
        parent: Span | None = None,
        hops: int = 1,
        retarget_planner=None,
    ) -> None:
        """Forward to ``targets`` and aggregate their responses.

        Targets whose circuit breaker is open are skipped entirely — not
        sent to, and not counted as outstanding — so a degraded-mode
        query completes as soon as the healthy neighbors answer instead
        of riding out the aggregation timeout for a suspected-dead peer.
        """
        query_id = forwarded.query_id
        allowed = [t for t in targets if self.federation.breaker_allows(t)]
        skipped = len(targets) - len(allowed)
        if skipped and self.network is not None:
            self.network.stats.record_recovery("breaker-skip", skipped)
        if allowed and self.router.adaptive:
            # Best-first ordering; cooldown-failover may additionally skip
            # targets still cooling off after a BUSY/timeout (never all —
            # coverage beats caution when everyone looks sick).
            allowed, cooled = self.router.usable(allowed)
            if cooled and self.network is not None:
                self.network.stats.record_recovery("routing-cooldown-skip", cooled)
        if not allowed:
            on_complete(
                QueryEvaluator.merge([local], max_results=forwarded.max_results), 1
            )
            return

        trace = self.trace
        fanout: Span | None = None
        if trace is not None:
            fanout = trace.start_span(
                "registry.fanout",
                node=self.node_id,
                ctx=parent.context if parent is not None else self._trace_ctx,
                attrs={
                    "query": trace.alias(query_id),
                    "targets": len(allowed),
                    "skipped": skipped,
                    "ttl": forwarded.ttl,
                },
            )

        def complete(hits: list[QueryHit], responders: int) -> None:
            self._pending.pop(query_id, None)
            self.shard.end_read(query_id)
            if fanout is not None and trace is not None:
                trace.end_span(
                    fanout, attrs={"hits": len(hits), "responders": responders}
                )
            on_complete(hits, responders)

        headers: dict[str, Any] | None = None
        if fanout is not None:
            headers = {}
            TraceRecorder.inject(headers, fanout.context)

        on_retarget = None
        if retarget_planner is not None:
            def on_retarget(failed: list[str], contacted: tuple[str, ...]) -> list[str]:
                replacements = retarget_planner(failed, set(contacted))
                for alternate in replacements:
                    self.send(
                        alternate, protocol.QUERY_FORWARD, forwarded,
                        headers=headers, hops=hops,
                    )
                    self.rim.queries_forwarded += 1
                return replacements

        # The timeout must cover the *downstream* aggregation chain: a
        # child forwarding with TTL t may itself wait ~t units for its own
        # dead branches before answering. A flat per-hop timeout would
        # fire before deep responses arrive and silently drop them.
        timeout = self.config.aggregation_timeout * (forwarded.ttl + 1)
        self._pending[query_id] = PendingAggregation(
            self,
            query_id=query_id,
            local_hits=local,
            targets=tuple(allowed),
            timeout=timeout,
            max_results=forwarded.max_results,
            on_complete=complete,
            on_target_timeout=self._forward_target_timeout,
            trace_ctx=fanout.context if fanout is not None else None,
            on_retarget=on_retarget,
        )
        for target in allowed:
            self.send(
                target, protocol.QUERY_FORWARD, forwarded, headers=headers, hops=hops
            )
            self.rim.queries_forwarded += 1

    def _forward_target_timeout(self, target: str) -> None:
        """A fan-out target stayed silent: suspicion for breaker + router."""
        self.federation.record_neighbor_failure(target)
        self.router.on_timeout(target)

    def handle_query_forward(self, envelope: Envelope) -> None:
        """A peer registry forwarded a query to us."""
        payload = envelope.payload
        if not isinstance(payload, protocol.QueryPayload):
            return
        assert self._seen is not None
        parent = envelope.src
        if self._query_in_flight(payload.query_id):
            # Belt and braces against loop-table eviction: we are still
            # aggregating this id — answer empty (draining the parent's
            # outstanding counter) instead of re-entering the fan-out.
            self._respond(parent, payload.query_id, [], 0)
            return
        if not self._seen.check_and_mark(payload.query_id):
            # Duplicate via another path: answer empty so the parent's
            # outstanding counter drains without waiting for the timeout.
            self._respond(parent, payload.query_id, [], 0)
            return
        span = self._query_span("registry.forward", envelope, payload)
        if self._overload_shortcut(parent, payload, span):
            return
        local = self._local_hits(payload, parent=span)
        targets = self.federation.forward_targets({parent}) if payload.ttl > 0 else []
        if not targets:
            self._respond(parent, payload.query_id, local, 1, span=span)
            return
        self._fan_out(
            payload.with_ttl(payload.ttl - 1),
            targets,
            local,
            on_complete=lambda hits, responders: self._respond(
                parent, payload.query_id, hits, responders, span=span
            ),
            parent=span,
            hops=envelope.hops + 1,
        )

    def handle_query_response(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.ResponsePayload):
            return
        # Any answer is proof of life, even a late one.
        self.federation.record_neighbor_success(envelope.src)
        trace = self.trace
        pending = self._pending.get(payload.query_id)
        if pending is not None:
            self.router.on_response(
                envelope.src,
                rtt=self.sim.now - pending.started_at,
                queue_depth=payload.queue_depth,
            )
        else:
            # No round-trip to attribute, but the depth is still fresh.
            self.router.on_response(envelope.src, queue_depth=payload.queue_depth)
        if pending is None:
            # The aggregation already completed (timeout or duplicate):
            # the response's work is wasted — count it so experiments can
            # report how much the timeout threw away.
            self.late_responses += 1
            if self.network is not None:
                self.network.stats.record_recovery("late-response")
            if trace is not None and self._trace_ctx is not None:
                # The response envelope still carries the original trace,
                # so late work stays attributable to the query that paid
                # for it.
                trace.event(
                    "late-response",
                    node=self.node_id,
                    ctx=self._trace_ctx,
                    attrs={
                        "from": envelope.src,
                        "query": trace.alias(payload.query_id),
                        "hits": len(payload.hits),
                    },
                )
            return
        if trace is not None and self._trace_ctx is not None:
            trace.event(
                "aggregation.response",
                node=self.node_id,
                ctx=self._trace_ctx,
                attrs={"from": envelope.src, "hits": len(payload.hits)},
            )
        # Read repair: compare this replica's answer versions against the
        # freshest seen so far, pushing the newer copy to stale holders.
        self.shard.observe_read(payload.query_id, envelope.src, payload.hits)
        pending.add_response(payload, src=envelope.src)

    # .. summary-informed routing ............................................

    def _start_informed(
        self, client: str, payload: protocol.QueryPayload, *, span: Span | None = None
    ) -> None:
        """Route the query directly to summary-matching registries.

        Content summaries learned through gossip tell us *which* known
        registries plausibly hold matches; each gets the query with TTL 0
        (evaluate-locally-and-answer). Registries without summary overlap
        are never bothered — the bandwidth win over flooding; a stale or
        missing summary is the recall risk (measured in E13).
        """
        local = self._local_hits(payload, parent=span)
        terms = self._query_terms(payload)
        candidates = [
            rid
            for rid, desc in sorted(self.federation.known.items())
            if rid != self.node_id and desc.summary_terms
            and terms & frozenset(desc.summary_terms)
        ]
        if not candidates:
            self._respond(client, payload.query_id, local, 1, span=span)
            return
        self._fan_out(
            payload.with_ttl(0),
            candidates,
            local,
            on_complete=lambda hits, responders: self._respond(
                client, payload.query_id, hits, responders, span=span
            ),
            parent=span,
        )

    # .. expanding ring ......................................................

    def _start_ring(
        self, client: str, payload: protocol.QueryPayload, *, span: Span | None = None
    ) -> None:
        ring = RingController(payload=payload, ttls=self.config.ring_ttls)
        self._run_ring_round(client, ring, span)

    def _run_ring_round(
        self, client: str, ring: RingController, span: Span | None
    ) -> None:
        ttl = ring.current_ttl()
        round_payload = protocol.QueryPayload(
            query_id=ring.round_query_id(),
            model_id=ring.payload.model_id,
            query=ring.payload.query,
            max_results=ring.payload.max_results,
            ttl=max(ttl - 1, 0),
        )
        local = self._local_hits(ring.payload, parent=span)
        targets = self.federation.forward_targets({client}) if ttl > 0 else []
        if not targets:
            ring.record_round(local)
            self._ring_round_done(client, ring, span)
            return
        self._fan_out(
            round_payload,
            targets,
            local,
            on_complete=lambda hits, _responders: (
                ring.record_round(hits),
                self._ring_round_done(client, ring, span),
            ),
            parent=span,
        )

    def _ring_round_done(
        self, client: str, ring: RingController, span: Span | None
    ) -> None:
        if ring.satisfied() or not ring.advance():
            self._respond(
                client, ring.payload.query_id, ring.merged(), ring.rounds_run,
                span=span,
            )
            return
        self._run_ring_round(client, ring, span)

    # .. random walk ...........................................................

    def _start_walk(
        self, client: str, payload: protocol.QueryPayload, *, span: Span | None = None
    ) -> None:
        local = self._local_hits(payload, parent=span)
        target_count = payload.max_results if payload.max_results is not None else 1
        targets = self.federation.forward_targets({client})
        if len(local) >= target_count or not targets or self.config.walk_length <= 1:
            self._respond(client, payload.query_id, local, 1, span=span)
            return

        def complete(hits: list[QueryHit], responders: int) -> None:
            self._walks.pop(payload.query_id, None)
            self._respond(client, payload.query_id, hits, responders, span=span)

        self._walks[payload.query_id] = WalkCoordinator(
            self,
            query_id=payload.query_id,
            local_hits=local,
            timeout=self.config.aggregation_timeout * self.config.walk_length,
            max_results=payload.max_results,
            on_complete=complete,
        )
        next_hop = self.router.pick_walk(targets, rng=self.sim.rng)
        self.send(
            next_hop,
            protocol.WALK,
            protocol.WalkPayload(
                query_id=payload.query_id,
                model_id=payload.model_id,
                query=payload.query,
                coordinator=self.node_id,
                remaining=self.config.walk_length - 1,
                visited=(self.node_id,),
                max_results=payload.max_results,
            ),
            hops=1,
        )
        self.rim.queries_forwarded += 1

    def handle_walk(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if not isinstance(payload, protocol.WalkPayload):
            return
        query = protocol.QueryPayload(
            query_id=payload.query_id,
            model_id=payload.model_id,
            query=payload.query,
            max_results=payload.max_results,
        )
        local = self._local_hits(query)
        if local:
            self.send(
                payload.coordinator,
                protocol.WALK_HITS,
                protocol.ResponsePayload(
                    query_id=payload.query_id, hits=tuple(local), responders=1
                ),
            )
        visited = set(payload.visited) | {self.node_id}
        candidates = [
            t for t in self.federation.forward_targets({envelope.src}) if t not in visited
        ]
        if payload.remaining <= 1 or not candidates:
            self.send(
                payload.coordinator,
                protocol.WALK_END,
                protocol.ResponsePayload(query_id=payload.query_id, hits=(), responders=0),
            )
            return
        next_hop = self.router.pick_walk(candidates, rng=self.sim.rng)
        self.send(
            next_hop,
            protocol.WALK,
            protocol.WalkPayload(
                query_id=payload.query_id,
                model_id=payload.model_id,
                query=payload.query,
                coordinator=payload.coordinator,
                remaining=payload.remaining - 1,
                visited=tuple(sorted(visited)),
                max_results=payload.max_results,
            ),
            hops=envelope.hops + 1,
        )
        self.rim.queries_forwarded += 1

    def handle_walk_hits(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, protocol.ResponsePayload):
            walk = self._walks.get(payload.query_id)
            if walk is not None:
                walk.add_hits(payload.hits)

    def handle_walk_end(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, protocol.ResponsePayload):
            walk = self._walks.get(payload.query_id)
            if walk is not None:
                walk.walk_ended()

    # .. decentralized LAN mode (Fig. 3 fallback) ...............................

    def handle_decentral_query(self, envelope: Envelope) -> None:
        """Registries answer fallback multicasts too — they are LAN nodes."""
        payload = envelope.payload
        if not isinstance(payload, protocol.QueryPayload):
            return
        hits = self._local_hits(payload)
        if hits:
            self.send(
                envelope.src,
                protocol.DECENTRAL_RESPONSE,
                protocol.ResponsePayload(
                    query_id=payload.query_id, hits=tuple(hits), responders=1
                ),
            )
