"""Mediator selection and light service composition.

§4.3: "To reduce the load on limited devices, service selection, mediator
selection, composition and reasoning support in registries may be needed"
and §2: "new functionality such as mediation between different
vocabularies may introduce additional queries or hints by the discovery
service. This could be the case when an interesting service is found, but
an additional translation or mediation service may be needed to use it."

The planner implements exactly the "additional queries" reading: when a
direct query yields nothing, it

1. discovers the deployed *translators* (one category query),
2. searches backwards from each desired output through chains of up to
   ``max_depth`` translators (concept-level reasoning over the translator
   profiles' inputs/outputs),
3. discovers *producers* for each chain's input concept (one query per
   distinct concept, memoized), constrained to inputs the client can
   actually supply,
4. returns ranked :class:`MediationPlan`s:
   producer → translator₁ → … → translatorₙ → client.

Semantic descriptions make this possible at all: the planner reasons over
the input/output concepts in the discovered profiles, which URI/keyword
advertisements do not expose. Works over any deployment, WAN included,
because each step is an ordinary discovery query. Translators with more
than one input are used only as the *final* hop of a depth-1 plan (their
other inputs must be client-suppliable), keeping the search tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client_node import ClientNode
from repro.core.system import DiscoverySystem
from repro.registry.matching import QueryHit
from repro.semantics.matchmaker import DegreeOfMatch, Matchmaker
from repro.semantics.profiles import ServiceProfile, ServiceRequest
from repro.semantics.reasoner import Reasoner


@dataclass(frozen=True)
class MediationPlan:
    """A plan: invoke ``producer``, then apply ``translators`` in order."""

    produces: str
    producer: QueryHit
    translators: tuple[QueryHit, ...]
    score: float

    @property
    def translator(self) -> QueryHit:
        """The final translator (the one yielding the requested concept)."""
        return self.translators[-1]

    @property
    def depth(self) -> int:
        """Number of translation steps."""
        return len(self.translators)

    def describe(self) -> str:
        """Human-readable plan summary, e.g. ``"a -> t1 -> t2"``."""
        names = [self.producer.advertisement.service_name]
        names.extend(t.advertisement.service_name for t in self.translators)
        return " -> ".join(names)


@dataclass
class MediatedResult:
    """Outcome of a mediation-aware discovery."""

    request: ServiceRequest
    direct_hits: list[QueryHit] = field(default_factory=list)
    plans: list[MediationPlan] = field(default_factory=list)
    extra_queries: int = 0

    @property
    def satisfied(self) -> bool:
        """Whether every desired output is met, directly or via plans."""
        if self.direct_hits:
            return True
        if not self.plans:
            return False
        covered = {plan.produces for plan in self.plans}
        return set(self.request.desired_outputs) <= covered


class MediationPlanner:
    """Plans mediated discovery for one client.

    Parameters
    ----------
    system:
        The deployment (provides the synchronous discovery wrapper and
        the shared ontology for concept reasoning).
    translator_category:
        Ontology concept identifying translation/mediation services
        (e.g. ``"ems:TranslationService"``).
    """

    def __init__(self, system: DiscoverySystem, *, translator_category: str) -> None:
        self.system = system
        self.translator_category = translator_category
        self._matchmaker = (
            Matchmaker(Reasoner(system.ontology))
            if system.ontology is not None else None
        )

    # -- public API ---------------------------------------------------------

    def discover(
        self,
        client: ClientNode,
        request: ServiceRequest,
        *,
        max_plans: int = 5,
        max_depth: int = 2,
        timeout: float = 30.0,
    ) -> MediatedResult:
        """Direct discovery first; chain planning only when it comes up empty."""
        result = MediatedResult(request=request)
        direct = self.system.discover(client, request, timeout=timeout)
        result.direct_hits = list(direct.hits)
        if result.direct_hits or not request.desired_outputs:
            return result

        translators = self._all_translators(client, result, timeout)
        if not translators:
            return result
        producer_cache: dict[str, list[QueryHit]] = {}
        for goal in request.desired_outputs:
            result.plans.extend(
                self._plan_chains(client, request, goal, translators,
                                  producer_cache, result, max_depth, timeout)
            )
        result.plans.sort(key=lambda p: (p.depth, -p.score, p.describe()))
        seen: set[str] = set()
        unique: list[MediationPlan] = []
        for plan in result.plans:
            key = f"{plan.produces}|{plan.describe()}"
            if key not in seen:
                seen.add(key)
                unique.append(plan)
        result.plans = unique[:max_plans]
        return result

    # -- building blocks --------------------------------------------------------

    def _degree(self, requested: str, advertised: str) -> DegreeOfMatch:
        if self._matchmaker is not None:
            return self._matchmaker.concept_degree(requested, advertised)
        return DegreeOfMatch.EXACT if requested == advertised \
            else DegreeOfMatch.FAIL

    def _is_translator(self, category: str) -> bool:
        """Strict test: the category is the translator concept or below it.

        Deliberately *not* the degree-of-match (whose direct-subclass
        "exact" rule would also flag the translator category's parent —
        e.g. a generic information service).
        """
        if self._matchmaker is not None:
            return self._matchmaker.reasoner.subsumes(
                self.translator_category, category
            )
        return category == self.translator_category

    def _all_translators(self, client, result: MediatedResult,
                         timeout: float) -> list[QueryHit]:
        """Every deployed translator, in one category query."""
        call = self.system.discover(
            client,
            ServiceRequest.build(self.translator_category),
            timeout=timeout,
        )
        result.extra_queries += 1
        return [
            hit for hit in call.hits
            if isinstance(hit.advertisement.description, ServiceProfile)
            and hit.advertisement.description.inputs
        ]

    def _translators_producing(self, concept: str,
                               translators: list[QueryHit]) -> list[QueryHit]:
        return [
            hit for hit in translators
            if any(
                self._degree(concept, out) > DegreeOfMatch.FAIL
                for out in hit.advertisement.description.outputs
            )
        ]

    def _find_producers(self, client, concept: str, request: ServiceRequest,
                        cache: dict[str, list[QueryHit]],
                        result: MediatedResult, timeout: float) -> list[QueryHit]:
        """Non-translator services producing ``concept`` the client can feed."""
        if concept not in cache:
            producer_request = ServiceRequest.build(
                None,
                outputs=[concept],
                inputs=list(request.provided_inputs),
            )
            call = self.system.discover(client, producer_request,
                                        timeout=timeout)
            result.extra_queries += 1
            cache[concept] = [
                hit for hit in call.hits
                if not isinstance(hit.advertisement.description, ServiceProfile)
                or not self._is_translator(hit.advertisement.description.category)
            ]
        return cache[concept]

    def _plan_chains(self, client, request: ServiceRequest, goal: str,
                     translators: list[QueryHit],
                     producer_cache: dict[str, list[QueryHit]],
                     result: MediatedResult, max_depth: int,
                     timeout: float) -> list[MediationPlan]:
        """Backward search: goal <- translator chain <- producer."""
        plans: list[MediationPlan] = []
        # Frontier entries: (needed concept, chain applied after it).
        frontier: list[tuple[str, tuple[QueryHit, ...]]] = [(goal, ())]
        visited: set[str] = {goal}
        for _depth in range(max_depth):
            next_frontier: list[tuple[str, tuple[QueryHit, ...]]] = []
            for needed, chain in frontier:
                for translator in self._translators_producing(needed, translators):
                    profile = translator.advertisement.description
                    if translator.advertisement.service_name in {
                        t.advertisement.service_name for t in chain
                    }:
                        continue  # no translator twice in one chain
                    if len(profile.inputs) > 1 and chain:
                        # Multi-input translators only as the final hop.
                        continue
                    new_chain = (translator, *chain)
                    input_concept = profile.inputs[0]
                    producers = self._find_producers(
                        client, input_concept, request, producer_cache,
                        result, timeout,
                    )
                    for producer in producers:
                        if producer.advertisement.service_name in {
                            t.advertisement.service_name for t in new_chain
                        }:
                            continue
                        plans.append(MediationPlan(
                            produces=goal,
                            producer=producer,
                            translators=new_chain,
                            score=(
                                producer.score
                                + sum(t.score for t in new_chain)
                            ) / (1 + len(new_chain)),
                        ))
                    if not producers and input_concept not in visited:
                        visited.add(input_concept)
                        next_frontier.append((input_concept, new_chain))
            frontier = next_frontier
            if not frontier:
                break
        return plans
