"""Adaptive load-aware query routing: pluggable target-selection strategies.

The paper's dynamic-environment premise is that registries appear,
overload, and vanish mid-conversation; a fixed attachment plus circuit
breakers reacts to *death* but not to *load*. This module adds the
missing policy layer: a :class:`Router` facade every protocol agent can
consult when it has several plausible targets (sibling registries at
failover, WAN fan-out neighbors, random-walk next hops), with the
selection policy pluggable through :class:`RoutingConfig`.

The health signals are **passive** — nothing here sends a probe. The
protocol already produces everything an informed choice needs:

* query/renew response round-trips → per-target EWMA latency
  (:class:`PassiveHealthTracker`), mirrored into the obs metrics facade
  as the ``routing.rtt`` histogram;
* ``BUSY`` rejections and the admission-queue depth registries piggyback
  on ``RESPONSE``/``BUSY`` payloads → per-target queue depth;
* BUSY and aggregation timeouts → a decaying per-target cooldown
  (:class:`CooldownManager`), so a just-saturated target is not
  immediately re-picked.

Strategies:

``static``
    Today's behavior, the default: selection returns the caller's own
    (hash-spread or sorted) choice, ordering is the identity, and the
    observation hooks are inert no-ops. A deployment that never sets
    ``DiscoveryConfig.routing`` is bit-identical to one built before
    this module existed.
``nearest-latency``
    Prefer the target with the lowest EWMA response latency; targets
    with no sample yet sort after measured ones.
``least-loaded``
    Prefer the target with the shallowest last-seen admission queue;
    unseen targets count as idle (depth 0) so new capacity gets tried.
    Depth ties break toward the caller's default (preserving the
    hash-spread even distribution on cold start), then lowest EWMA.
``cooldown-failover``
    Keep the caller's order but move targets in cooldown to the back
    (soonest-to-expire first); fan-outs may skip cooled targets
    entirely while healthy ones remain.

Every strategy is deterministic: decisions depend only on observed
sim-time signals and stable tie-breaks, never on fresh randomness — a
fixed seed still fully determines a run under any strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Node

#: Strategy names accepted by :class:`RoutingConfig`.
ROUTING_STATIC = "static"
ROUTING_NEAREST_LATENCY = "nearest-latency"
ROUTING_LEAST_LOADED = "least-loaded"
ROUTING_COOLDOWN_FAILOVER = "cooldown-failover"

_ROUTING_STRATEGIES = frozenset({
    ROUTING_STATIC, ROUTING_NEAREST_LATENCY, ROUTING_LEAST_LOADED,
    ROUTING_COOLDOWN_FAILOVER,
})


@dataclass(frozen=True)
class RoutingConfig:
    """Routing strategy selection plus its tunables.

    Attributes
    ----------
    strategy:
        One of ``static`` (default), ``nearest-latency``,
        ``least-loaded``, ``cooldown-failover``.
    ewma_alpha:
        Weight of the newest latency sample in the per-target EWMA.
    cooldown_base:
        First cooldown after a failure signal (seconds).
    cooldown_factor:
        Cooldown growth per *consecutive* failure of the same target.
    cooldown_max:
        Upper bound on one cooldown interval (seconds).
    """

    strategy: str = ROUTING_STATIC
    ewma_alpha: float = 0.3
    cooldown_base: float = 0.5
    cooldown_factor: float = 2.0
    cooldown_max: float = 10.0

    def __post_init__(self) -> None:
        if self.strategy not in _ROUTING_STRATEGIES:
            raise ReproError(
                f"unknown routing strategy {self.strategy!r}; "
                f"choose from {sorted(_ROUTING_STRATEGIES)}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ReproError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.cooldown_base <= 0:
            raise ReproError(f"cooldown_base must be positive, got {self.cooldown_base}")
        if self.cooldown_factor < 1.0:
            raise ReproError(f"cooldown_factor must be >= 1, got {self.cooldown_factor}")
        if self.cooldown_max < self.cooldown_base:
            raise ReproError(
                f"cooldown_max {self.cooldown_max} must be >= "
                f"cooldown_base {self.cooldown_base}"
            )


class PassiveHealthTracker:
    """Per-target EWMA response latency and last-seen queue depth.

    Fed opportunistically from traffic the node exchanges anyway; a
    target nobody has talked to recently simply has no entry.
    """

    def __init__(self, *, alpha: float) -> None:
        self.alpha = alpha
        self._ewma: dict[str, float] = {}
        self._depth: dict[str, int] = {}
        self.samples = 0

    def observe_latency(self, target: str, rtt: float) -> None:
        """Fold one response round-trip into the target's EWMA."""
        if rtt < 0:
            return
        self.samples += 1
        previous = self._ewma.get(target)
        if previous is None:
            self._ewma[target] = rtt
        else:
            self._ewma[target] = previous + self.alpha * (rtt - previous)

    def observe_queue_depth(self, target: str, depth: int) -> None:
        """Record the admission-queue depth a target reported."""
        self._depth[target] = max(0, int(depth))

    def latency(self, target: str) -> float | None:
        """EWMA response latency, or None with no samples yet."""
        return self._ewma.get(target)

    def queue_depth(self, target: str) -> int | None:
        """Last piggybacked queue depth, or None if never reported."""
        return self._depth.get(target)

    def forget(self, target: str) -> None:
        """Drop all state about a target (it left / was excluded)."""
        self._ewma.pop(target, None)
        self._depth.pop(target, None)


class CooldownManager:
    """Decaying per-target cooldown after BUSY/timeout signals.

    Each consecutive failure of the same target grows its cooldown
    geometrically (``base * factor^(streak-1)``, capped at ``maximum``);
    any success clears the streak. While a target is cooling, adaptive
    strategies deprioritize (or skip) it.
    """

    def __init__(
        self,
        clock,
        *,
        base: float,
        factor: float,
        maximum: float,
    ) -> None:
        self._clock = clock
        self.base = base
        self.factor = factor
        self.maximum = maximum
        self._until: dict[str, float] = {}
        self._streak: dict[str, int] = {}
        self.cooldowns_started = 0

    def record_failure(self, target: str) -> float:
        """One failure signal; returns the cooldown length armed."""
        streak = self._streak.get(target, 0) + 1
        self._streak[target] = streak
        length = min(self.maximum, self.base * self.factor ** (streak - 1))
        self._until[target] = self._clock() + length
        self.cooldowns_started += 1
        return length

    def record_success(self, target: str) -> None:
        """Proof of health: clear the streak and any active cooldown."""
        self._streak.pop(target, None)
        self._until.pop(target, None)

    def in_cooldown(self, target: str) -> bool:
        until = self._until.get(target)
        return until is not None and self._clock() < until

    def remaining(self, target: str) -> float:
        """Seconds of cooldown left (0.0 when not cooling)."""
        until = self._until.get(target)
        if until is None:
            return 0.0
        return max(0.0, until - self._clock())

    def forget(self, target: str) -> None:
        self._until.pop(target, None)
        self._streak.pop(target, None)


class RoutingStrategy:
    """Base strategy: rank candidate targets given passive health state.

    ``sort_key(target, index)`` returns a comparison tuple; lower sorts
    first. The shared ranking moves targets in cooldown behind healthy
    ones regardless of strategy, so a just-BUSY target never outranks a
    quiet one on a stale latency/depth sample.
    """

    name = ROUTING_STATIC

    def __init__(self, health: PassiveHealthTracker, cooldowns: CooldownManager) -> None:
        self.health = health
        self.cooldowns = cooldowns

    def sort_key(self, target: str, index: int):
        return (index,)

    def order(self, candidates: Sequence[str]) -> list[str]:
        """Candidates best-first; ties keep the caller's order."""
        return sorted(
            candidates,
            key=lambda t: (
                1 if self.cooldowns.in_cooldown(t) else 0,
                self.cooldowns.remaining(t),
                *self.sort_key(t, candidates.index(t)),
            ),
        )

    def select(self, candidates: Sequence[str], default: str | None = None) -> str | None:
        """The best candidate; ``default`` wins among top-ranked ties."""
        if not candidates:
            return None
        ordered = self.order(list(candidates))
        best = ordered[0]
        if default is not None and default in candidates:
            best_key = self._full_key(best, list(candidates))
            if self._full_key(default, list(candidates))[:-1] == best_key[:-1]:
                # The caller's (hash-spread) choice is among the tied
                # best: keep it, preserving the even cold-start spread.
                return default
        return best

    def _full_key(self, target: str, candidates: list[str]):
        return (
            1 if self.cooldowns.in_cooldown(target) else 0,
            self.cooldowns.remaining(target),
            *self.sort_key(target, candidates.index(target)),
        )


class StaticOrder(RoutingStrategy):
    """Today's behavior: selection defers entirely to the caller."""

    name = ROUTING_STATIC

    def order(self, candidates: Sequence[str]) -> list[str]:
        return list(candidates)

    def select(self, candidates: Sequence[str], default: str | None = None) -> str | None:
        if default is not None:
            return default
        return candidates[0] if candidates else None


class NearestLatency(RoutingStrategy):
    """Prefer the lowest EWMA response latency; unmeasured targets last."""

    name = ROUTING_NEAREST_LATENCY

    def sort_key(self, target: str, index: int):
        ewma = self.health.latency(target)
        if ewma is None:
            return (1, 0.0, index)
        return (0, ewma, index)


class LeastLoaded(RoutingStrategy):
    """Prefer the shallowest last-seen admission queue.

    Unseen targets count as idle (depth 0), so fresh capacity gets
    tried; depth ties break by EWMA latency (measured first), then the
    caller's order — the tie-break chain the unit tests pin down.
    """

    name = ROUTING_LEAST_LOADED

    def sort_key(self, target: str, index: int):
        depth = self.health.queue_depth(target)
        ewma = self.health.latency(target)
        return (
            depth if depth is not None else 0,
            1 if ewma is None else 0,
            ewma if ewma is not None else 0.0,
            index,
        )


class CooldownFailover(RoutingStrategy):
    """Keep the caller's order, but cooled targets go to the back."""

    name = ROUTING_COOLDOWN_FAILOVER

    # The shared cooldown-aware ranking in the base class is exactly
    # this strategy; only fan-out *skipping* (Router.usable) differs.


_STRATEGY_CLASSES = {
    ROUTING_STATIC: StaticOrder,
    ROUTING_NEAREST_LATENCY: NearestLatency,
    ROUTING_LEAST_LOADED: LeastLoaded,
    ROUTING_COOLDOWN_FAILOVER: CooldownFailover,
}


class Router:
    """Target-selection facade for one protocol agent.

    Owns the passive health state and the configured strategy; the
    owning node reports response round-trips, BUSY rejections, piggy-
    backed queue depths, and timeouts through the ``on_*`` hooks and
    asks for decisions through :meth:`order`, :meth:`select`,
    :meth:`usable`, and :meth:`pick_walk`.

    With the default ``static`` strategy every hook is an inert no-op
    and every decision returns the caller's own choice — the router is
    pure pass-through, preserving bit-identical runs.
    """

    def __init__(self, config: RoutingConfig, node: "Node") -> None:
        self.config = config
        self._node = node
        self.health = PassiveHealthTracker(alpha=config.ewma_alpha)
        self.cooldowns = CooldownManager(
            self._now,
            base=config.cooldown_base,
            factor=config.cooldown_factor,
            maximum=config.cooldown_max,
        )
        self.strategy: RoutingStrategy = _STRATEGY_CLASSES[config.strategy](
            self.health, self.cooldowns
        )
        #: Times an adaptive selection deviated from the caller's default.
        self.reroutes = 0

    def _now(self) -> float:
        if self._node.network is None:
            return 0.0
        return self._node.sim.now

    @property
    def adaptive(self) -> bool:
        """True for every strategy except the static pass-through."""
        return self.config.strategy != ROUTING_STATIC

    # -- decisions --------------------------------------------------------

    def order(self, candidates: Sequence[str]) -> list[str]:
        """Candidates best-first (identity order under ``static``)."""
        if not self.adaptive:
            return list(candidates)
        return self.strategy.order(candidates)

    def select(self, candidates: Sequence[str], default: str | None = None) -> str | None:
        """One target from ``candidates`` (``default`` under ``static``)."""
        if not candidates:
            return default
        choice = self.strategy.select(candidates, default=default)
        if self.adaptive and default is not None and choice != default:
            self.reroutes += 1
            metrics = self._metrics()
            if metrics is not None:
                metrics.counter("routing.reroutes").inc()
        return choice

    def usable(self, targets: Sequence[str]) -> tuple[list[str], int]:
        """Fan-out gating: ``(kept, skipped_count)``.

        Only ``cooldown-failover`` skips targets (those in cooldown),
        and never all of them — with every target cooling, the full
        ordered list is kept so queries are not black-holed. Other
        strategies reorder but always keep the whole set: fan-out width
        is a coverage decision, not a load decision.
        """
        if not self.adaptive:
            return list(targets), 0
        ordered = self.strategy.order(targets)
        if self.config.strategy != ROUTING_COOLDOWN_FAILOVER:
            return ordered, 0
        kept = [t for t in ordered if not self.cooldowns.in_cooldown(t)]
        if not kept:
            return ordered, 0
        return kept, len(ordered) - len(kept)

    def pick_walk(self, candidates: Sequence[str], rng) -> str:
        """Random-walk next hop.

        Static keeps the historical uniform ``rng.choice`` — consuming
        the simulator RNG stream exactly as before this module existed —
        while adaptive strategies pick deterministically by rank.
        """
        if not self.adaptive:
            return rng.choice(list(candidates))
        choice = self.strategy.select(candidates)
        assert choice is not None
        return choice

    # -- passive observation hooks ----------------------------------------

    def on_response(
        self,
        target: str,
        *,
        rtt: float | None = None,
        queue_depth: int | None = None,
    ) -> None:
        """A target answered: feed latency/depth, clear its cooldown."""
        if not self.adaptive:
            return
        if rtt is not None:
            self.health.observe_latency(target, rtt)
            metrics = self._metrics()
            if metrics is not None:
                metrics.histogram("routing.rtt").observe(rtt)
        if queue_depth is not None:
            self.health.observe_queue_depth(target, queue_depth)
        self.cooldowns.record_success(target)

    def on_busy(
        self,
        target: str,
        *,
        retry_after: float | None = None,
        queue_depth: int | None = None,
    ) -> None:
        """A target shed our work: record its depth, start a cooldown.

        The cooldown is at least the server's ``retry_after`` hint —
        re-picking the target before it asked to be retried would just
        earn another BUSY.
        """
        if not self.adaptive:
            return
        if queue_depth is not None:
            self.health.observe_queue_depth(target, queue_depth)
        length = self.cooldowns.record_failure(target)
        if retry_after is not None and retry_after > length:
            self.cooldowns._until[target] = self._now() + retry_after
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("routing.busy_observed").inc()

    def on_timeout(self, target: str) -> None:
        """A target went silent: start/extend its cooldown."""
        if not self.adaptive:
            return
        self.cooldowns.record_failure(target)
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("routing.timeouts_observed").inc()

    def forget(self, target: str) -> None:
        """Drop all health state about a departed target."""
        self.health.forget(target)
        self.cooldowns.forget(target)

    def _metrics(self):
        network = self._node.network
        return network.metrics if network is not None else None
