"""High-level facade: build and run a discovery deployment in a few lines.

:class:`DiscoverySystem` wires the simulator, network, ontology, and the
three node roles together, and provides synchronous helpers so examples
and experiments read naturally::

    system = DiscoverySystem(seed=7, ontology=emergency_ontology())
    system.add_lan("hq")
    system.add_registry("hq")
    system.add_service("hq", profile)
    client = system.add_client("hq")
    system.run(until=2.0)                      # bootstrap settles
    call = system.discover(client, request)    # runs until completion
    print(call.service_names())
"""

from __future__ import annotations

import itertools

from repro.core.client_node import ClientNode, DiscoveryCall
from repro.core.config import DiscoveryConfig
from repro.core.registry_node import RegistryNode
from repro.core.service_node import ServiceNode
from repro.descriptions.base import DescriptionModel
from repro.descriptions.semantic import SemanticModel
from repro.descriptions.template import TemplateModel
from repro.descriptions.uri import UriModel
from repro.errors import ReproError
from repro.netsim.messages import SizeModel
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.obs.health import HealthMonitor
from repro.registry.advertisements import reset_uuids
from repro.semantics.ontology import Ontology
from repro.semantics.profiles import ServiceProfile, ServiceRequest

#: Model sets selectable by name when building nodes.
ALL_MODEL_IDS = ("uri", "template", "semantic")


def make_models(
    ontology: Ontology | None,
    include: tuple[str, ...] = ALL_MODEL_IDS,
    *,
    with_ontology: bool = True,
) -> list[DescriptionModel]:
    """Fresh description-model plug-ins for one node.

    Each node gets its own instances (so per-node counters stay separate)
    while semantic models share the same :class:`Ontology` object.
    ``with_ontology=False`` builds a semantic model that cannot evaluate
    until it fetches the ontology from the registry network (E12).
    """
    models: list[DescriptionModel] = []
    for model_id in include:
        if model_id == "uri":
            models.append(UriModel())
        elif model_id == "template":
            models.append(TemplateModel())
        elif model_id == "semantic":
            models.append(SemanticModel(ontology if with_ontology else None))
        else:
            raise ReproError(f"unknown description model {model_id!r}")
    return models


class DiscoverySystem:
    """Builder and runner for one simulated discovery deployment."""

    def __init__(
        self,
        *,
        seed: int = 0,
        config: DiscoveryConfig | None = None,
        ontology: Ontology | None = None,
        size_model: SizeModel | None = None,
        loss_rate: float = 0.0,
    ) -> None:
        reset_uuids()  # ids restart per system: same seed ⇒ same ad ids
        self.config = config or DiscoveryConfig()
        self.ontology = ontology
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim, size_model=size_model, loss_rate=loss_rate
        )
        self.network.health.configure(self.config.health)
        if self.network.health.active:
            self.network.health.attach(self.sim)
        self.registries: list[RegistryNode] = []
        self.services: list[ServiceNode] = []
        self.clients: list[ClientNode] = []
        self._counters = {"registry": itertools.count(), "svc": itertools.count(),
                          "client": itertools.count()}
        self._started = False

    @property
    def health(self) -> "HealthMonitor":
        """The run's health monitor (inert unless ``config.health`` enables it)."""
        return self.network.health

    # -- topology ------------------------------------------------------------

    def add_lan(self, name: str, *, wan_connected: bool = True) -> str:
        """Create a LAN segment; returns its name."""
        self.network.add_lan(name, wan_connected=wan_connected)
        return name

    def add_registry(
        self,
        lan: str,
        *,
        node_id: str | None = None,
        model_ids: tuple[str, ...] = ALL_MODEL_IDS,
        seeds: tuple[str, ...] = (),
        with_ontology: bool = True,
        capacity: int | None = None,
    ) -> RegistryNode:
        """Add a registry node on ``lan``; ``seeds`` are WAN federation peers.

        ``with_ontology=False`` models a registry deployed without the
        shared ontology: it cannot evaluate semantic queries (and hosts no
        ontology artifact) until federation artifact sync delivers one
        (experiment E12). ``capacity`` bounds stored advertisements
        (asymmetric device resources); publishes beyond it are NACKed.
        """
        node_id = node_id or f"registry-{next(self._counters['registry']):02d}"
        registry = RegistryNode(
            node_id,
            self.config,
            make_models(self.ontology, model_ids, with_ontology=with_ontology),
            seeds=seeds,
            capacity=capacity,
        )
        self.network.add_node(registry, lan)
        self.registries.append(registry)
        if self.ontology is not None and with_ontology:
            registry.store_artifact(self.ontology.name, self.ontology)
        self._schedule_start(registry)
        return registry

    def add_standby_registry(
        self,
        lan: str,
        *,
        node_id: str | None = None,
        model_ids: tuple[str, ...] = ALL_MODEL_IDS,
        lan_target: int = 1,
        seeds: tuple[str, ...] = (),
    ):
        """Add a dormant standby registry implementing the LAN quota policy
        ("try to maintain N registries on each LAN" — §4.9).

        ``seeds`` are WAN federation peers the standby joins *if* it is
        ever promoted — and, with warm sync enabled, the peers it
        anti-entropy-pulls its initial store from.
        """
        from repro.core.standby import StandbyRegistry

        node_id = node_id or f"standby-{next(self._counters['registry']):02d}"
        standby = StandbyRegistry(
            node_id,
            self.config,
            make_models(self.ontology, model_ids),
            lan_target=lan_target,
            seeds=seeds,
        )
        self.network.add_node(standby, lan)
        self.registries.append(standby)
        if self.ontology is not None:
            standby.store_artifact(self.ontology.name, self.ontology)
        self._schedule_start(standby)
        return standby

    def add_service(
        self,
        lan: str,
        profile: ServiceProfile,
        *,
        node_id: str | None = None,
        model_ids: tuple[str, ...] = ALL_MODEL_IDS,
    ) -> ServiceNode:
        """Add a service node hosting ``profile`` on ``lan``."""
        node_id = node_id or f"svc-node-{next(self._counters['svc']):03d}"
        service = ServiceNode(
            node_id,
            self.config,
            profile,
            make_models(self.ontology, model_ids),
        )
        self.network.add_node(service, lan)
        self.services.append(service)
        self._schedule_start(service)
        return service

    def add_client(
        self,
        lan: str,
        *,
        node_id: str | None = None,
        model_ids: tuple[str, ...] = ALL_MODEL_IDS,
        with_ontology: bool = True,
    ) -> ClientNode:
        """Add a client node on ``lan``."""
        node_id = node_id or f"client-{next(self._counters['client']):03d}"
        client = ClientNode(
            node_id,
            self.config,
            make_models(self.ontology, model_ids, with_ontology=with_ontology),
        )
        self.network.add_node(client, lan)
        self.clients.append(client)
        self._schedule_start(client)
        return client

    def federate(self, a: RegistryNode, b: RegistryNode) -> None:
        """Manually seed a WAN federation link between two registries.

        The link is recorded as *seed configuration* on both ends (the
        paper's "manual configuration, or seeding"), so a registry that
        crashes and restarts re-joins its seeded peers instead of staying
        isolated from the WAN.
        """
        a.seeds = tuple(sorted(set(a.seeds) | {b.node_id}))
        b.seeds = tuple(sorted(set(b.seeds) | {a.node_id}))
        self.sim.schedule(0.0, lambda: a.federation.join(b.node_id))

    def federate_chain(self, registries: list[RegistryNode] | None = None) -> None:
        """Seed a line topology across the given (default: all) registries."""
        nodes = registries if registries is not None else self.registries
        for left, right in zip(nodes, nodes[1:]):
            self.federate(left, right)

    def federate_ring(self, registries: list[RegistryNode] | None = None) -> None:
        """Seed a ring topology (a chain plus the closing link)."""
        nodes = registries if registries is not None else self.registries
        self.federate_chain(nodes)
        if len(nodes) > 2:
            self.federate(nodes[-1], nodes[0])

    def federate_mesh(self, registries: list[RegistryNode] | None = None) -> None:
        """Seed a full mesh among the given (default: all) registries."""
        nodes = registries if registries is not None else self.registries
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                self.federate(left, right)

    def _schedule_start(self, node) -> None:
        self.sim.schedule(0.0, node.start)

    def move(self, node, new_lan: str) -> None:
        """Roam a client or service node to another LAN (mobility).

        The node re-bootstraps there: clients re-probe and re-attach;
        services republish locally while their old advertisements lapse
        with their leases.
        """
        self.network.move_node(node.node_id, new_lan)

    # -- running -----------------------------------------------------------------

    def run(self, until: float) -> float:
        """Advance the simulation to absolute time ``until``."""
        return self.sim.run(until=until)

    def run_for(self, duration: float) -> float:
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def discover(
        self,
        client: ClientNode,
        request: ServiceRequest,
        *,
        model_id: str = "semantic",
        ttl: int | None = None,
        timeout: float = 30.0,
    ) -> DiscoveryCall:
        """Issue a query and run the simulator until it completes.

        The synchronous convenience wrapper around
        :meth:`ClientNode.discover` used by examples and experiments.
        """
        call = client.discover(request, model_id=model_id, ttl=ttl)
        deadline = self.sim.now + timeout
        while not call.completed and self.sim.step(until=deadline):
            pass
        if not call.completed:
            # Timed out: no event at or before the deadline can complete
            # the call. Clamp the clock to the deadline (events beyond it
            # stay queued) instead of running arbitrarily far past it.
            call.timed_out = True
            self.sim.advance_to(deadline)
        return call

    # -- reporting ------------------------------------------------------------------

    @property
    def trace(self):
        """This run's :class:`~repro.obs.tracing.TraceRecorder`."""
        return self.sim.trace

    @property
    def metrics(self):
        """This run's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.network.metrics

    def traffic(self) -> dict[str, int]:
        """Global traffic counters so far."""
        return self.network.stats.snapshot()

    def alive_services(self) -> list[ServiceNode]:
        """Service nodes currently up."""
        return [s for s in self.services if s.alive]
