"""Deployment configuration.

The paper insists the knobs "could even be made configurable on an
individual deployment basis. Other configurable parameters could be the
interval between registry beacons, the number of registry nodes to
traverse for a query, and the advertisement lease period." Every such knob
lives here, with defaults chosen so a LAN-scale scenario behaves sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.core.admission import AdmissionPolicy
from repro.core.durability import DurabilityConfig
from repro.core.retry import RetryPolicy
from repro.core.routing import RoutingConfig
from repro.core.sharding import ShardingConfig
from repro.obs.health import HealthConfig

#: Query forwarding strategies (§4.9: "increasing the reach of a query
#: gradually in several rounds, random walks, or broadcasting in the
#: registry network").
STRATEGY_FLOODING = "flooding"
STRATEGY_EXPANDING_RING = "expanding-ring"
STRATEGY_RANDOM_WALK = "random-walk"
#: Summary-informed routing: registries gossip content summaries ("send
#: out summary information about the advertisements present in a
#: registry") and queries go directly to the registries whose summaries
#: match.
STRATEGY_INFORMED = "informed"

_STRATEGIES = frozenset({
    STRATEGY_FLOODING, STRATEGY_EXPANDING_RING, STRATEGY_RANDOM_WALK,
    STRATEGY_INFORMED,
})

#: Registry cooperation strategies (§4.9 forwarding vs replication — the
#: "push or pull advertisements between registries" design choice).
COOPERATION_FORWARD_QUERIES = "forward-queries"
COOPERATION_REPLICATE_ADS = "replicate-ads"

_COOPERATION = frozenset({COOPERATION_FORWARD_QUERIES, COOPERATION_REPLICATE_ADS})


@dataclass(frozen=True)
class DiscoveryConfig:
    """All tunables of the discovery architecture.

    Attributes are grouped by the paper's three operation categories.
    """

    # -- registry network maintenance ------------------------------------
    #: Seconds between registry beacon multicasts (passive registry
    #: discovery); ``None`` disables beacons.
    beacon_interval: float | None = 5.0
    #: How long a prober waits for REGISTRY-PROBE replies before deciding.
    probe_timeout: float = 0.5
    #: Seconds between aliveness pings among federated registries.
    ping_interval: float = 5.0
    #: Missed pongs before a neighbor is declared dead.
    ping_failure_threshold: int = 2
    #: Seconds between registry-list gossip rounds among neighbors
    #: (registry signalling); ``None`` disables signalling.
    signalling_interval: float | None = 10.0
    #: Whether same-LAN registries elect a single WAN gateway.
    gateway_election: bool = True
    #: Whether registries fetch missing repository artifacts (ontologies,
    #: schemas) from newly joined neighbors (§4.6).
    artifact_sync: bool = True
    #: Whether registry descriptions carry content summaries (index terms
    #: of stored advertisements). Enabled implicitly by the "informed"
    #: strategy; costs larger beacons/gossip.
    content_summaries: bool = False

    def summaries_enabled(self) -> bool:
        """Content summaries are on explicitly or via the informed strategy."""
        return self.content_summaries or self.strategy == STRATEGY_INFORMED

    # -- publishing -------------------------------------------------------
    #: Advertisement lease duration granted by registries (seconds).
    lease_duration: float = 60.0
    #: Service nodes renew after ``lease_duration * renew_fraction``.
    renew_fraction: float = 0.4
    #: Seconds between registry purge sweeps of expired leases.
    purge_interval: float = 5.0
    #: Whether leasing is enabled at all. Disabling reproduces the UDDI
    #: shortcoming ("neither UDDI nor ebXML use leasing") inside our own
    #: architecture for the E4 ablation.
    leasing_enabled: bool = True
    #: Cooperation strategy between registries.
    cooperation: str = COOPERATION_FORWARD_QUERIES

    # -- querying ---------------------------------------------------------
    #: Forwarding strategy for WAN queries.
    strategy: str = STRATEGY_FLOODING
    #: Max registry-network hops for a query (the "number of registry
    #: nodes to traverse").
    default_ttl: int = 4
    #: Seconds a registry waits for forwarded-query responses before
    #: answering upstream.
    aggregation_timeout: float = 1.0
    #: Seconds a client waits for its registry's response before declaring
    #: the query failed (and trying an alternative registry). Must exceed
    #: ``aggregation_timeout * default_ttl`` or slow dead-branch waits get
    #: misread as registry death.
    query_timeout: float = 6.0
    #: Expanding-ring TTL schedule.
    ring_ttls: tuple[int, ...] = (0, 1, 2, 4)
    #: Random-walk length (registries visited).
    walk_length: int = 6
    #: Whether clients fall back to decentralized LAN multicast discovery
    #: when no registry is reachable (Fig. 3 right-hand mode).
    fallback_enabled: bool = True
    #: Seconds a client collects decentralized responses before reporting.
    fallback_timeout: float = 0.5

    # -- self-healing -------------------------------------------------------
    #: Seconds between anti-entropy digest rounds among replicating
    #: neighbors; ``None`` disables the periodic rounds (join-time and
    #: promotion-time digest sync are disabled with it). Only effective
    #: under ``COOPERATION_REPLICATE_ADS`` — forwarding registries hold
    #: disjoint stores by design, so there is nothing to reconcile.
    antientropy_interval: float | None = 10.0
    #: Whether a promoting standby registry bootstraps its store with an
    #: anti-entropy pull from known peers instead of activating empty.
    standby_warm_sync: bool = True
    #: Whether per-neighbor circuit breakers gate query fan-out.
    breaker_enabled: bool = True
    #: Consecutive failures (missed pongs, aggregation timeouts) that trip
    #: a neighbor's breaker from closed to open.
    breaker_failure_threshold: int = 3
    #: Seconds an open breaker waits before allowing a half-open probe.
    breaker_reset_timeout: float = 10.0
    #: Upper bound on retained anti-entropy tombstones. Under
    #: remove-heavy churn the tombstone map would otherwise grow without
    #: limit; past the cap, tombstones older than the resurrection-safe
    #: floor (``lease_duration + 2 * purge_interval`` — see
    #: :meth:`~repro.core.antientropy.AntiEntropy._prune_tombstones`)
    #: are evicted oldest-first. ``None`` disables the size cap (the
    #: ``2 * lease_duration`` age prune still applies).
    antientropy_tombstone_cap: int | None = 4096

    def antientropy_enabled(self) -> bool:
        """Anti-entropy runs only for replicating registries."""
        return (
            self.antientropy_interval is not None
            and self.cooperation == COOPERATION_REPLICATE_ADS
        )

    # -- overload protection ----------------------------------------------
    #: Per-registry admission control: service-time costs per message
    #: class, bounded priority queue, BUSY shedding. The default policy
    #: has every cost at 0.0, so admission control is inert unless a
    #: deployment opts in (behavior-preserving for existing scenarios).
    admission: AdmissionPolicy = AdmissionPolicy()

    # -- routing -----------------------------------------------------------
    #: Adaptive target selection (sibling failover, WAN fan-out ordering,
    #: walk next hops) driven by passive health signals. The default
    #: ``static`` strategy is a pure pass-through: selection defers to the
    #: caller's historical choice and the observation hooks are no-ops, so
    #: existing deployments are bit-identical.
    routing: RoutingConfig = RoutingConfig()

    # -- durability ---------------------------------------------------------
    #: Crash recovery from a per-node WAL + snapshot (see
    #: :mod:`repro.core.durability`). The default has durability off and
    #: is fully inert: no disk is attached, no message grows a header,
    #: and event timing is bit-identical to a memory-only deployment.
    durability: DurabilityConfig = DurabilityConfig()

    # -- sharded federation --------------------------------------------------
    #: Consistent-hash partitioning with quorum writes and replica-set
    #: query routing (see :mod:`repro.core.sharding`). The default has
    #: sharding off and fully inert: replicate-ads cooperation keeps its
    #: replicate-everywhere flood and traces stay byte-identical to a
    #: pre-sharding deployment.
    sharding: ShardingConfig = ShardingConfig()

    # -- runtime health ------------------------------------------------------
    #: Flight recorders, windowed SLO tracking, and anomaly watchdogs
    #: (see :mod:`repro.obs.health`). The default has the layer off and
    #: fully inert: no periodic tick is scheduled, no trace observer is
    #: registered, and every run is byte-identical to a pre-health
    #: deployment.
    health: HealthConfig = HealthConfig()

    # -- recovery / retries ------------------------------------------------
    #: Backoff between client query attempts (failover retries). The
    #: attempt budget replaces the old fixed MAX_ATTEMPTS constant.
    query_retry: RetryPolicy = RetryPolicy(
        base=0.2, factor=2.0, cap=2.0, max_attempts=3, jitter=0.1
    )
    #: Retransmission of unacked publishes (lost on a lossy link).
    publish_retry: RetryPolicy = RetryPolicy(
        base=1.0, factor=2.0, cap=8.0, max_attempts=4, jitter=0.1
    )
    #: Retransmission of unacked lease renewals. Keeping this shorter than
    #: the renew interval lets a transiently lost RENEW recover without
    #: tripping the registry-death failover heuristic.
    renew_retry: RetryPolicy = RetryPolicy(
        base=1.0, factor=2.0, cap=6.0, max_attempts=3, jitter=0.1
    )

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ReproError(f"unknown strategy {self.strategy!r}; choose from {sorted(_STRATEGIES)}")
        if self.cooperation not in _COOPERATION:
            raise ReproError(
                f"unknown cooperation {self.cooperation!r}; choose from {sorted(_COOPERATION)}"
            )
        if not 0.0 < self.renew_fraction < 1.0:
            raise ReproError(f"renew_fraction must be in (0, 1), got {self.renew_fraction}")
        if self.lease_duration <= 0:
            raise ReproError(f"lease_duration must be positive, got {self.lease_duration}")
        if self.default_ttl < 0:
            raise ReproError(f"default_ttl must be >= 0, got {self.default_ttl}")
        if self.antientropy_interval is not None and self.antientropy_interval <= 0:
            raise ReproError(
                f"antientropy_interval must be positive or None, "
                f"got {self.antientropy_interval}"
            )
        if self.breaker_failure_threshold < 1:
            raise ReproError(
                f"breaker_failure_threshold must be >= 1, "
                f"got {self.breaker_failure_threshold}"
            )
        if self.breaker_reset_timeout <= 0:
            raise ReproError(
                f"breaker_reset_timeout must be positive, got {self.breaker_reset_timeout}"
            )
        if self.antientropy_tombstone_cap is not None and self.antientropy_tombstone_cap < 1:
            raise ReproError(
                f"antientropy_tombstone_cap must be >= 1 or None, "
                f"got {self.antientropy_tombstone_cap}"
            )

    @property
    def renew_interval(self) -> float:
        """Seconds between lease renewals by service nodes."""
        return self.lease_duration * self.renew_fraction
