"""Registry admission control: bounded service queues and load shedding.

E1 shows the registry is where the paper's load concentrates ("the load
on the single node may become high"), yet an unmodelled registry serves
every message in zero time and can never be overwhelmed. This module
gives each registry a *bounded service model*: every admitted message
costs configurable service time, waits in a bounded priority queue, and
— when the queue is full — the lowest-priority work is **shed** with an
explicit ``BUSY(retry_after)`` answer instead of a silent drop.

The priority order encodes the soft-state survival argument: lease
RENEWs keep the store truthful and are cheapest to serve, so they jump
the queue; PUBLISHes come next; a client's own QUERY beats a forwarded
one (serve your LAN before the WAN's); anti-entropy and replication
traffic is pure background. Under a query flood a prioritized registry
therefore sacrifices query goodput first and lease aliveness last —
experiment E17 measures exactly that, against a shed-less FIFO baseline
whose renews drown behind the flood and whose leases collapse.

``retry_after`` grows linearly with the queue depth at shed time, so the
BUSY stream is a deterministic, *monotone* congestion signal clients and
services can back off on (server hint beats their own exponential
backoff — see :meth:`repro.core.retry.RetryPolicy.delay`).

Determinism: service completions are ordinary node timers on the
simulator heap, and shedding decisions depend only on arrival order and
the policy — a fixed seed still fully determines a run. With every cost
at its 0.0 default the controller intercepts nothing and the registry
behaves exactly as before.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core import protocol
from repro.errors import ReproError
from repro.netsim.messages import Envelope
from repro.obs.tracing import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.node import Node

#: Admission classes, in shedding-priority order (lower = served first,
#: shed last).
CLASS_RENEW = "renew"
CLASS_PUBLISH = "publish"
CLASS_QUERY = "query"
CLASS_FORWARD = "forward"
CLASS_SYNC = "sync"

#: Priority rank per class (lower rank = higher priority).
PRIORITY: dict[str, int] = {
    CLASS_RENEW: 0,
    CLASS_PUBLISH: 1,
    CLASS_QUERY: 2,
    CLASS_FORWARD: 3,
    CLASS_SYNC: 4,
}

#: Which protocol messages fall under which admission class. Everything
#: *not* listed here — probes, beacons, pings, federation handshakes,
#: query responses, artifact transfers — is control plane: it is never
#: queued or shed, because delaying it would blind the very failure
#: detectors overload protection leans on.
MESSAGE_CLASS: dict[str, str] = {
    protocol.RENEW: CLASS_RENEW,
    protocol.PUBLISH: CLASS_PUBLISH,
    protocol.REMOVE: CLASS_PUBLISH,
    protocol.SUBSCRIBE: CLASS_PUBLISH,
    protocol.UNSUBSCRIBE: CLASS_PUBLISH,
    protocol.QUERY: CLASS_QUERY,
    protocol.DECENTRAL_QUERY: CLASS_QUERY,
    protocol.QUERY_FORWARD: CLASS_FORWARD,
    protocol.WALK: CLASS_FORWARD,
    protocol.AD_FORWARD: CLASS_SYNC,
    protocol.ANTIENTROPY_DIGEST: CLASS_SYNC,
    protocol.ANTIENTROPY_PULL: CLASS_SYNC,
    protocol.ANTIENTROPY_ADS: CLASS_SYNC,
}


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-registry overload-protection knobs.

    Attributes
    ----------
    enabled:
        Master switch. Disabled, every message dispatches instantly.
    renew_cost, publish_cost, query_cost, forward_cost, sync_cost:
        Service time (seconds) per message of that class. A class with
        cost 0.0 bypasses the queue entirely — the default for *every*
        class, so admission control is opt-in per deployment.
    queue_limit:
        Maximum queued messages (excluding the one in service); ``None``
        = unbounded (the shed-less baseline of E17).
    prioritized:
        True serves the queue in class-priority order and sheds the
        lowest-priority entry on overflow; False is a plain FIFO with
        tail drop — the "fair" queue whose renews drown behind floods.
    degrade_at:
        Fraction of ``queue_limit`` at which the registry enters
        *degraded mode*: WAN fan-out is skipped and queries are answered
        from the local store with ``degraded=True``.
    retry_after_base:
        The BUSY hint is ``retry_after_base * (1 + queue_depth)`` —
        deterministic and monotone in the backlog, so repeated BUSYs
        push clients off a saturated registry progressively harder.
    """

    enabled: bool = True
    renew_cost: float = 0.0
    publish_cost: float = 0.0
    query_cost: float = 0.0
    forward_cost: float = 0.0
    sync_cost: float = 0.0
    queue_limit: int | None = 64
    prioritized: bool = True
    degrade_at: float = 0.5
    retry_after_base: float = 0.25

    def __post_init__(self) -> None:
        for name in ("renew_cost", "publish_cost", "query_cost",
                     "forward_cost", "sync_cost"):
            value = getattr(self, name)
            if value < 0:
                raise ReproError(f"{name} must be >= 0, got {value}")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ReproError(
                f"queue_limit must be >= 1 or None, got {self.queue_limit}"
            )
        if not 0.0 < self.degrade_at <= 1.0:
            raise ReproError(f"degrade_at must be in (0, 1], got {self.degrade_at}")
        if self.retry_after_base <= 0:
            raise ReproError(
                f"retry_after_base must be positive, got {self.retry_after_base}"
            )

    def cost_for(self, admission_class: str) -> float:
        """Service time for one message of ``admission_class``."""
        return getattr(self, f"{admission_class}_cost")

    def classify(self, msg_type: str) -> str | None:
        """The admission class of ``msg_type`` (None = control plane)."""
        return MESSAGE_CLASS.get(msg_type)

    def active(self) -> bool:
        """Whether any class actually pays service time."""
        return self.enabled and any(
            self.cost_for(cls) > 0 for cls in PRIORITY
        )

    def retry_after(self, queue_depth: int) -> float:
        """The BUSY back-off hint for a shed at ``queue_depth``."""
        return self.retry_after_base * (1 + queue_depth)


@dataclass
class _Ticket:
    """One intercepted message waiting for (or receiving) service."""

    seq: int
    envelope: Envelope
    admission_class: str
    cost: float
    priority: int


def request_id_of(envelope: Envelope) -> str:
    """The correlation id a BUSY should echo for ``envelope``.

    Chosen so the original sender can find its own bookkeeping: the wire
    query id for queries/walks, the lease id for renewals, the
    advertisement id for (re)publishes and removals.
    """
    payload = envelope.payload
    if isinstance(payload, (protocol.QueryPayload, protocol.WalkPayload)):
        return payload.query_id
    if isinstance(payload, protocol.RenewPayload):
        return payload.lease_id
    if isinstance(payload, (protocol.PublishPayload, protocol.RemovePayload)):
        return payload.ad_id
    if isinstance(payload, (protocol.SubscribePayload, protocol.UnsubscribePayload)):
        return payload.sub_id
    return ""


class AdmissionController:
    """The bounded single-server queue in front of one registry.

    :meth:`intercept` is called from :meth:`~repro.netsim.node.Node.receive`
    before dispatch. Messages whose class carries a positive cost are
    queued (or shed with a BUSY); a service timer dispatches the head of
    the queue after its cost elapses. Everything else — and everything
    when the policy is inert — flows through untouched.

    Accounting is exhaustive so the queue-drain invariant can audit it:
    every intercepted message is eventually *dispatched*, *shed* (with
    exactly one BUSY), or *lost to a crash*; no message is ever both
    shed and dispatched.
    """

    def __init__(self, node: "Node", policy: AdmissionPolicy) -> None:
        self.node = node
        self.policy = policy
        self._queue: list[tuple[int, int, _Ticket]] = []
        self._in_service: _Ticket | None = None
        self._next_seq = 0
        # -- accounting (audited by core.invariants) ---------------------
        self.intercepted = 0
        self.dispatched = 0
        self.shed = 0
        self.busy_sent = 0
        self.lost_on_crash = 0
        self.max_depth = 0
        self.shed_by_class: dict[str, int] = {}
        #: ``(queue_depth, retry_after)`` per shed, in shed order — the
        #: overload smoke asserts retry_after is monotone in depth.
        self.shed_log: list[tuple[int, float]] = []
        self._shed_ids: set[int] = set()
        self._dispatched_ids: set[int] = set()

    # -- queue state -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Messages currently held: queued plus the one in service."""
        return len(self._queue) + (1 if self._in_service is not None else 0)

    @property
    def pending(self) -> int:
        """Alias of :attr:`depth` for the invariant sweep."""
        return self.depth

    @property
    def backlog_cost(self) -> float:
        """Seconds of service time currently committed."""
        queued = sum(entry[2].cost for entry in self._queue)
        if self._in_service is not None:
            queued += self._in_service.cost
        return queued

    @property
    def overloaded(self) -> bool:
        """Whether the degraded-mode threshold has been crossed.

        Only a *bounded* queue can be overloaded: the unbounded baseline
        never degrades (and never sheds) — it just falls behind.
        """
        if not self.policy.active() or self.policy.queue_limit is None:
            return False
        return self.depth >= self.policy.degrade_at * self.policy.queue_limit

    # -- interception ----------------------------------------------------

    def intercept(self, envelope: Envelope) -> bool:
        """Take charge of ``envelope`` if its class pays service time.

        Returns True when the controller queued (or shed) the message;
        False tells the caller to dispatch it synchronously as before.
        """
        policy = self.policy
        if not policy.enabled:
            return False
        admission_class = policy.classify(envelope.msg_type)
        if admission_class is None:
            return False
        cost = policy.cost_for(admission_class)
        if cost <= 0:
            return False
        self.intercepted += 1
        ticket = _Ticket(
            seq=self._next_seq,
            envelope=envelope,
            admission_class=admission_class,
            cost=cost,
            priority=PRIORITY[admission_class] if policy.prioritized else 0,
        )
        self._next_seq += 1
        if self._in_service is None and not self._queue:
            self._begin_service(ticket)
            return True
        limit = policy.queue_limit
        if limit is not None and len(self._queue) >= limit:
            worst = self._queue[-1][2]
            if (ticket.priority, ticket.seq) >= (worst.priority, worst.seq):
                # The newcomer is the lowest-priority work in sight
                # (always true in FIFO mode: tail drop).
                self._shed(ticket)
                return True
            self._queue.pop()
            self._shed(worst)
        bisect.insort(self._queue, (ticket.priority, ticket.seq, ticket))
        self._touch()
        return True

    # -- service ---------------------------------------------------------

    def _begin_service(self, ticket: _Ticket) -> None:
        self._in_service = ticket
        self._touch()
        self.node.after(ticket.cost, lambda: self._finish(ticket))

    def _finish(self, ticket: _Ticket) -> None:
        if self._in_service is not ticket:
            # A crash reset the server while this timer was pending.
            return
        self._in_service = None
        self.dispatched += 1
        self._dispatched_ids.add(ticket.seq)
        self.node.dispatch(ticket.envelope)
        self._serve_next()
        self._touch()

    def _serve_next(self) -> None:
        if self._in_service is None and self._queue:
            _, _, ticket = self._queue.pop(0)
            self._begin_service(ticket)

    # -- shedding --------------------------------------------------------

    def _shed(self, ticket: _Ticket) -> None:
        """Reject ``ticket`` with an explicit BUSY carrying the back-off
        hint — never a silent drop."""
        envelope = ticket.envelope
        depth = self.depth
        retry_after = self.policy.retry_after(depth)
        self.shed += 1
        self.shed_by_class[ticket.admission_class] = (
            self.shed_by_class.get(ticket.admission_class, 0) + 1
        )
        self._shed_ids.add(ticket.seq)
        self.shed_log.append((depth, retry_after))
        self.busy_sent += 1
        headers: dict[str, object] = {}
        ctx = TraceRecorder.extract(envelope.headers)
        if ctx is not None:
            TraceRecorder.inject(headers, ctx)
        self.node.send(
            envelope.src,
            protocol.BUSY,
            protocol.BusyPayload(
                request_id=request_id_of(envelope),
                msg_type=envelope.msg_type,
                retry_after=retry_after,
                queue_depth=depth,
            ),
            headers=headers or None,
        )
        network = self.node.network
        if network is not None:
            network.metrics.counter("admission.shed").inc()
            network.metrics.counter(
                f"admission.shed.{ticket.admission_class}"
            ).inc()
            network.metrics.counter("admission.busy").inc()
        trace = self.node.trace
        if trace is not None:
            trace.event(
                "admission.shed",
                node=self.node.node_id,
                ctx=ctx,
                attrs={
                    "type": envelope.msg_type,
                    "depth": depth,
                    "retry_after": retry_after,
                },
            )
        self._touch()

    # -- lifecycle -------------------------------------------------------

    def on_crash(self) -> None:
        """The node died: queued and in-service work is lost with it.

        The node's crash already cancelled the service timer; here we
        only settle the books so the drain invariant stays exact.
        """
        self.lost_on_crash += self.depth
        self._queue.clear()
        self._in_service = None
        self._touch()

    # -- observability / auditing ----------------------------------------

    def _touch(self) -> None:
        depth = self.depth
        if depth > self.max_depth:
            self.max_depth = depth
        network = self.node.network
        if network is not None:
            network.metrics.gauge("registry.queue_depth").set(
                depth, now=network.sim.now
            )

    def counters(self) -> dict[str, int]:
        """A plain snapshot for experiment rows."""
        return {
            "intercepted": self.intercepted,
            "dispatched": self.dispatched,
            "shed": self.shed,
            "busy_sent": self.busy_sent,
            "lost_on_crash": self.lost_on_crash,
            "pending": self.pending,
            "max_depth": self.max_depth,
        }

    def audit(self) -> list[str]:
        """The queue-drain invariant: exhaustive, non-overlapping fates.

        * conservation — every intercepted message is dispatched, shed,
          lost to a crash, or still pending (nothing vanishes);
        * one BUSY per shed — rejected work is always *answered*;
        * disjoint fates — no message is both shed and dispatched.
        """
        violations: list[str] = []
        accounted = self.dispatched + self.shed + self.lost_on_crash + self.pending
        if accounted != self.intercepted:
            violations.append(
                f"admission conservation broken: intercepted={self.intercepted} "
                f"but dispatched={self.dispatched} + shed={self.shed} + "
                f"lost={self.lost_on_crash} + pending={self.pending} = {accounted}"
            )
        if self.busy_sent != self.shed:
            violations.append(
                f"shed work not answered: shed={self.shed} "
                f"but busy_sent={self.busy_sent}"
            )
        overlap = self._shed_ids & self._dispatched_ids
        if overlap:
            violations.append(
                f"{len(overlap)} messages both shed and dispatched "
                f"(seqs {sorted(overlap)[:5]})"
            )
        return violations
