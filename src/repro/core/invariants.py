"""Post-scenario invariant checking.

Fault scenarios exercise recovery code paths (retry, failover, fallback,
lease expiry) whose bugs are silent: a stale wire-id entry or a lease
outliving its advertisement does not crash anything, it just skews the
next measurement. :func:`check_invariants` sweeps a quiesced
:class:`~repro.core.system.DiscoverySystem` for the three classes of
bookkeeping rot the recovery paths can leave behind:

* **single completion** — no discovery call ever completes twice;
* **wire-id drain** — no client keeps a wire-id entry for a completed
  call (after every call has resolved, the maps are empty);
* **lease/store agreement** — no lease outlives its advertisement, and
  the lease manager's two maps mirror each other exactly;
* **queue drain** — every message a registry's admission controller
  intercepted was either dispatched, explicitly shed with exactly one
  BUSY, lost to a crash, or is still pending — and no message was both
  shed and dispatched.

Run it after every fault scenario (the experiment helpers in
:mod:`repro.experiments` do); :func:`assert_invariants` raises
:class:`~repro.errors.InvariantError` listing every violation at once.

:func:`check_convergence` adds a fourth, replication-specific sweep:
after a quiesced anti-entropy cycle every live active registry in a
replicate-ads deployment must hold the same ``(ad_id, version)`` set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import DiscoverySystem


def check_invariants(system: "DiscoverySystem") -> list[str]:
    """Sweep ``system`` for bookkeeping violations; returns descriptions.

    Intended for a *quiesced* system (no in-flight calls); clients with
    still-pending calls are allowed matching wire-id entries, so running
    mid-flight only reports genuine rot, never transients.
    """
    violations: list[str] = []

    for client in system.clients:
        for call in getattr(client, "calls", ()):
            if call.completions > 1:
                violations.append(
                    f"{client.node_id}: call {call.query_id} completed "
                    f"{call.completions} times"
                )
            if call.completed and call.completions == 0:
                violations.append(
                    f"{client.node_id}: call {call.query_id} marked completed "
                    f"without passing through _complete"
                )
        for wire_id, call in getattr(client, "_by_wire_id", {}).items():
            if call.completed:
                violations.append(
                    f"{client.node_id}: stale wire-id {wire_id!r} for "
                    f"completed call {call.query_id}"
                )
        # Routing bookkeeping must drain in lock-step with the wire-id
        # map: a route-meta entry without a live wire id is rot.
        live_wire_ids = set(getattr(client, "_by_wire_id", {}))
        for wire_id in getattr(client, "_route_meta", {}):
            if wire_id not in live_wire_ids:
                violations.append(
                    f"{client.node_id}: stale route-meta {wire_id!r} with "
                    f"no in-flight wire id"
                )

    for registry in system.registries:
        leases = getattr(registry, "leases", None)
        store = getattr(registry, "store", None)
        if leases is None or store is None:
            continue
        for lease in leases._by_lease.values():
            if lease.ad_id not in store:
                violations.append(
                    f"{registry.node_id}: lease {lease.lease_id} outlives "
                    f"advertisement {lease.ad_id}"
                )
            if leases._by_ad.get(lease.ad_id) != lease.lease_id:
                violations.append(
                    f"{registry.node_id}: lease {lease.lease_id} missing from "
                    f"the per-advertisement map"
                )
        for ad_id, lease_id in leases._by_ad.items():
            if lease_id not in leases._by_lease:
                violations.append(
                    f"{registry.node_id}: advertisement {ad_id} maps to "
                    f"dropped lease {lease_id}"
                )

    for registry in system.registries:
        admission = getattr(registry, "admission", None)
        if admission is None:
            continue
        violations.extend(
            f"{registry.node_id}: {violation}"
            for violation in admission.audit()
        )

    return violations


def assert_invariants(system: "DiscoverySystem") -> None:
    """Raise :class:`InvariantError` listing every violation found."""
    violations = check_invariants(system)
    if violations:
        if system.network.health.active:
            # Capture flight-recorder dumps before raising: the rings hold
            # the last events leading up to the rot.
            system.network.health.on_invariant_violation("; ".join(violations))
        raise InvariantError(
            "invariant violations:\n  " + "\n  ".join(violations)
        )


def check_convergence(system: "DiscoverySystem") -> list[str]:
    """Replica agreement sweep for replicate-ads deployments.

    After a quiesced anti-entropy cycle, every *live, active* registry
    should hold the same advertisement set at the same versions — the
    bounded-round convergence the reconciliation protocol promises. Each
    disagreeing registry yields one violation naming its surplus and
    missing ``(ad_id, version)`` pairs against the majority view. Under
    forwarding cooperation stores are disjoint by design, so the check is
    vacuously clean.
    """
    from repro.core.config import COOPERATION_REPLICATE_ADS

    if system.config.cooperation != COOPERATION_REPLICATE_ADS:
        return []
    members = [
        r for r in system.registries
        if r.alive and getattr(r, "active", True)
    ]
    if len(members) < 2:
        return []
    if system.config.sharding.enabled:
        return _check_sharded_convergence(system, members)
    views = {
        r.node_id: frozenset((ad.ad_id, ad.version) for ad in r.store.all())
        for r in members
    }
    if len(set(views.values())) <= 1:
        return []
    # Majority (ties broken toward the larger set) as the reference view.
    counts: dict[frozenset, int] = {}
    for view in views.values():
        counts[view] = counts.get(view, 0) + 1
    reference = max(counts, key=lambda v: (counts[v], len(v)))
    violations = []
    for node_id, view in sorted(views.items()):
        if view == reference:
            continue
        extra = sorted(view - reference)
        missing = sorted(reference - view)
        violations.append(
            f"{node_id}: store diverges from majority view "
            f"(extra={extra[:5]}, missing={missing[:5]})"
        )
    return violations


def _canonical_ring(system: "DiscoverySystem", members):
    """The ring implied by the live active registries' ring identities.

    Crashed registries are *kept* on the live rings by design (replica
    selection and hinted handoff mask them; only a graceful leave shrinks
    the ring), so the canonical ring also includes any member a live
    registry still has on its own ring — with the ring identity that
    registry records for it. A gracefully-departed member appears on no
    live ring and therefore stays excluded.
    """
    from repro.core.sharding import ConsistentHashRing

    cfg = system.config.sharding
    ring = ConsistentHashRing(virtual_nodes=cfg.virtual_nodes, seed=cfg.ring_seed)
    for registry in members:
        ring.add(registry.node_id, getattr(registry, "ring_identity", registry.node_id))
    for registry in sorted(members, key=lambda r: r.node_id):
        live = getattr(registry, "shard", None)
        if live is None or not live.configured():
            continue
        for member in sorted(live.ring.members()):
            if member not in ring:
                ring.add(member, live.ring.ring_id_of(member))
    return ring


def _check_sharded_convergence(system: "DiscoverySystem", members) -> list[str]:
    """Per-replica-set agreement: under sharding only the R assigned
    replicas of an advertisement must agree — the global identical-store
    comparison would flag correct partitioning as divergence."""
    ring = _canonical_ring(system, members)
    r = system.config.sharding.replication_factor
    holders: dict[str, dict[str, int]] = {}
    for registry in members:
        for ad in registry.store.all():
            holders.setdefault(ad.ad_id, {})[registry.node_id] = ad.version
    alive = {registry.node_id for registry in members}
    violations = []
    for ad_id in sorted(holders):
        assigned = [m for m in ring.replicas_for(ad_id, r) if m in alive]
        versions = {m: holders[ad_id].get(m) for m in assigned}
        present = {v for v in versions.values() if v is not None}
        if len(present) > 1 or (present and None in versions.values()):
            detail = ", ".join(
                f"{m}={'-' if v is None else v}" for m, v in sorted(versions.items())
            )
            violations.append(
                f"shard replicas diverge on {ad_id}: {detail}"
            )
    return violations


def check_shard_placement(system: "DiscoverySystem") -> list[str]:
    """Placement sweep for sharded deployments.

    After quiescing (rebalances drained), every stored advertisement must
    sit inside its assigned replica range on the canonical ring — the
    ring implied by the live active registries' ring identities — and
    every live advertisement must still have at least one alive assigned
    replica holding it. Vacuous when sharding is off.
    """
    from repro.core.config import COOPERATION_REPLICATE_ADS

    if (
        not system.config.sharding.enabled
        or system.config.cooperation != COOPERATION_REPLICATE_ADS
    ):
        return []
    members = [
        r for r in system.registries
        if r.alive and getattr(r, "active", True)
    ]
    if not members:
        return []
    ring = _canonical_ring(system, members)
    r = system.config.sharding.replication_factor
    violations: list[str] = []
    live_ads: set[str] = set()
    for registry in members:
        for ad in registry.store.all():
            live_ads.add(ad.ad_id)
            if not ring.owns(registry.node_id, ad.ad_id, r):
                violations.append(
                    f"{registry.node_id}: holds {ad.ad_id} outside its "
                    f"assigned replica set {ring.replicas_for(ad.ad_id, r)}"
                )
    held_by = {
        registry.node_id: {ad.ad_id for ad in registry.store.all()}
        for registry in members
    }
    for ad_id in sorted(live_ads):
        assigned = [m for m in ring.replicas_for(ad_id, r) if m in held_by]
        if assigned and not any(ad_id in held_by[m] for m in assigned):
            violations.append(
                f"{ad_id}: no alive assigned replica ({assigned}) holds it"
            )
    return violations


def assert_shard_placement(system: "DiscoverySystem") -> None:
    """Raise :class:`InvariantError` on shard-placement violations."""
    violations = check_shard_placement(system)
    if violations:
        raise InvariantError(
            "shard placement violations:\n  " + "\n  ".join(violations)
        )


def assert_convergence(system: "DiscoverySystem") -> None:
    """Raise :class:`InvariantError` when replicated stores disagree."""
    violations = check_convergence(system)
    if violations:
        raise InvariantError(
            "store convergence violations:\n  " + "\n  ".join(violations)
        )


def store_snapshot(registry) -> dict[str, tuple[int, float]]:
    """Capture ``{ad_id: (version, lease_expires_at)}`` for one registry.

    Take this *before* a crash; feed it to :func:`check_recovery` after
    the restart. Advertisements without a lease (leasing disabled) carry
    ``float('inf')`` as their expiry.
    """
    leases = getattr(registry, "leases", None)
    snapshot: dict[str, tuple[int, float]] = {}
    for ad in registry.store.all():
        expires_at = float("inf")
        if leases is not None:
            lease = leases.lease_for_ad(ad.ad_id)
            if lease is not None:
                expires_at = lease.expires_at
        snapshot[ad.ad_id] = (ad.version, expires_at)
    return snapshot


def check_recovery(
    registry,
    pre_crash: dict[str, tuple[int, float]],
    *,
    now: float | None = None,
) -> list[str]:
    """The durable-recovery invariant for one restarted registry.

    The replayed store must equal the pre-crash store **minus the leases
    that expired during the outage**: every pre-crash advertisement whose
    lease outlived the downtime must be back at (at least) its pre-crash
    version, every advertisement whose lease lapsed while the registry
    was down must be gone, and nothing the registry never held may
    appear out of thin air (anti-entropy repair runs *after* recovery,
    so run this check before the first delta round — or accept repaired
    entries by passing the union of peer snapshots as ``pre_crash``).
    """
    if now is None:
        now = registry.sim.now
    violations: list[str] = []
    held = {ad.ad_id: ad.version for ad in registry.store.all()}
    for ad_id, (version, expires_at) in sorted(pre_crash.items()):
        if expires_at <= now:
            if ad_id in held:
                violations.append(
                    f"{registry.node_id}: recovered {ad_id} whose lease "
                    f"expired at {expires_at:g} (now={now:g})"
                )
        elif ad_id not in held:
            violations.append(
                f"{registry.node_id}: lost {ad_id} whose lease was still "
                f"live (expires {expires_at:g}, now={now:g})"
            )
        elif held[ad_id] < version:
            violations.append(
                f"{registry.node_id}: recovered {ad_id} at stale version "
                f"{held[ad_id]} < pre-crash {version}"
            )
    for ad_id in sorted(set(held) - set(pre_crash)):
        violations.append(
            f"{registry.node_id}: recovered {ad_id} the registry never "
            f"held before the crash"
        )
    return violations


def assert_recovery(
    registry,
    pre_crash: dict[str, tuple[int, float]],
    *,
    now: float | None = None,
) -> None:
    """Raise :class:`InvariantError` when replay diverges from pre-crash."""
    violations = check_recovery(registry, pre_crash, now=now)
    if violations:
        raise InvariantError(
            "recovery violations:\n  " + "\n  ".join(violations)
        )
