"""Post-scenario invariant checking.

Fault scenarios exercise recovery code paths (retry, failover, fallback,
lease expiry) whose bugs are silent: a stale wire-id entry or a lease
outliving its advertisement does not crash anything, it just skews the
next measurement. :func:`check_invariants` sweeps a quiesced
:class:`~repro.core.system.DiscoverySystem` for the three classes of
bookkeeping rot the recovery paths can leave behind:

* **single completion** — no discovery call ever completes twice;
* **wire-id drain** — no client keeps a wire-id entry for a completed
  call (after every call has resolved, the maps are empty);
* **lease/store agreement** — no lease outlives its advertisement, and
  the lease manager's two maps mirror each other exactly.

Run it after every fault scenario (the experiment helpers in
:mod:`repro.experiments` do); :func:`assert_invariants` raises
:class:`~repro.errors.InvariantError` listing every violation at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import DiscoverySystem


def check_invariants(system: "DiscoverySystem") -> list[str]:
    """Sweep ``system`` for bookkeeping violations; returns descriptions.

    Intended for a *quiesced* system (no in-flight calls); clients with
    still-pending calls are allowed matching wire-id entries, so running
    mid-flight only reports genuine rot, never transients.
    """
    violations: list[str] = []

    for client in system.clients:
        for call in getattr(client, "calls", ()):
            if call.completions > 1:
                violations.append(
                    f"{client.node_id}: call {call.query_id} completed "
                    f"{call.completions} times"
                )
            if call.completed and call.completions == 0:
                violations.append(
                    f"{client.node_id}: call {call.query_id} marked completed "
                    f"without passing through _complete"
                )
        for wire_id, call in getattr(client, "_by_wire_id", {}).items():
            if call.completed:
                violations.append(
                    f"{client.node_id}: stale wire-id {wire_id!r} for "
                    f"completed call {call.query_id}"
                )

    for registry in system.registries:
        leases = getattr(registry, "leases", None)
        store = getattr(registry, "store", None)
        if leases is None or store is None:
            continue
        for lease in leases._by_lease.values():
            if lease.ad_id not in store:
                violations.append(
                    f"{registry.node_id}: lease {lease.lease_id} outlives "
                    f"advertisement {lease.ad_id}"
                )
            if leases._by_ad.get(lease.ad_id) != lease.lease_id:
                violations.append(
                    f"{registry.node_id}: lease {lease.lease_id} missing from "
                    f"the per-advertisement map"
                )
        for ad_id, lease_id in leases._by_ad.items():
            if lease_id not in leases._by_lease:
                violations.append(
                    f"{registry.node_id}: advertisement {ad_id} maps to "
                    f"dropped lease {lease_id}"
                )

    return violations


def assert_invariants(system: "DiscoverySystem") -> None:
    """Raise :class:`InvariantError` listing every violation found."""
    violations = check_invariants(system)
    if violations:
        raise InvariantError(
            "invariant violations:\n  " + "\n  ".join(violations)
        )
