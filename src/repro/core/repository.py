"""The artifact repository hosted by registry nodes (§4.6).

"We cannot rely on WWW and DNS availability in dynamic environments …
regular XML Schema and ontology import mechanisms may have to be bypassed.
To remove dependency on Internet availability, a repository for ontologies
and XML Schemas is needed. Our registry network could fill this role."

Artifacts are named blobs; ontologies are the artifact type the semantic
description model actually needs (experiment E12 shows discovery failing
without it). The repository also accepts opaque artifacts (schemas,
transformations) as sized byte strings.
"""

from __future__ import annotations

from typing import Any

from repro.netsim.messages import estimate_payload_size


class ArtifactRepository:
    """Named artifact storage inside one registry node."""

    def __init__(self) -> None:
        self._artifacts: dict[str, Any] = {}
        self.requests_served = 0
        self.requests_missed = 0

    def __len__(self) -> int:
        return len(self._artifacts)

    def __contains__(self, name: str) -> bool:
        return name in self._artifacts

    def store(self, name: str, artifact: Any) -> None:
        """Store or replace an artifact under ``name``."""
        self._artifacts[name] = artifact

    def fetch(self, name: str) -> Any | None:
        """Return the artifact, or ``None``; updates hit/miss counters."""
        artifact = self._artifacts.get(name)
        if artifact is None:
            self.requests_missed += 1
        else:
            self.requests_served += 1
        return artifact

    def names(self) -> list[str]:
        """All stored artifact names, sorted."""
        return sorted(self._artifacts)

    def total_bytes(self) -> int:
        """Modelled storage footprint of all artifacts."""
        return sum(estimate_payload_size(a) for a in self._artifacts.values())

    def replicate_to(self, other: "ArtifactRepository") -> int:
        """Copy every artifact into another repository; returns the count.

        Registries joining a federation can mirror artifacts so clients
        can fetch from their local registry.
        """
        count = 0
        for name, artifact in self._artifacts.items():
            if name not in other:
                other.store(name, artifact)
                count += 1
        return count

    def clear(self) -> None:
        """Drop all artifacts (registry crash loses volatile state)."""
        self._artifacts.clear()
