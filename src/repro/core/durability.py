"""Durable crash recovery: WAL + snapshot persistence with epoch fencing.

The paper treats registry content as soft state — "should a service
crash … the service description would be purged" — but the *registry's
own* crash is a different failure mode: a correlated outage (whole-LAN
blackout, rolling restart of every replica) loses every advertisement
and lease until each service's next renew cycle notices and republishes.
Directory-based discovery must keep registry state available across
registry failure, not only across network faults. This module gives a
registry exactly that, without giving up determinism:

* every store mutation (publish/absorb, renew, explicit remove, lease
  expiry) appends a **checksummed record** to an append-only WAL;
* a periodic **compacting snapshot** rewrites the full state and
  truncates the WAL, bounding replay work;
* both are written through a small **storage port** — the default
  backend is the :class:`~repro.netsim.disk.SimDisk` the network keeps
  per node id (zero simulated time, survives crash/restart, reachable
  by fault injection), and :class:`FileDisk` provides a real-filesystem
  backend behind the same port for deployments outside the simulator;
* on restart the registry **replays** snapshot+WAL, drops leases that
  expired while it was down, bumps a persisted **incarnation epoch** so
  peers fence its stale pre-crash messages, and lets the ordinary
  join-time anti-entropy digest run as a *delta* repair round instead
  of a cold bootstrap.

Torn tail writes stop replay at the damaged frame; records whose CRC
fails are skipped and counted (``durability.corrupt_skipped``) — the
next anti-entropy round repairs whatever a skipped record lost.

The all-off default (``DurabilityConfig()``) is fully inert: no disk is
ever attached, no header is added to any message, and event timing is
bit-identical to a build without this module.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core import protocol
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.registry_node import RegistryNode

#: Envelope header carrying the sender's persisted incarnation epoch.
#: Only present when the sender has durability enabled; receivers track
#: the highest epoch seen per peer and drop lower-stamped replication
#: traffic ("a message from a previous life of this registry").
INCARNATION_HEADER = "x-incarnation"

#: Message types stamped with (and fenced by) the incarnation header:
#: replication and reconciliation traffic, where a stale pre-crash write
#: could undo post-recovery state, plus the federation handshake so
#: peers learn a restarted registry's new epoch immediately on rejoin.
FENCED_MSG_TYPES = frozenset({
    protocol.AD_FORWARD,
    protocol.ANTIENTROPY_DIGEST,
    protocol.ANTIENTROPY_PULL,
    protocol.ANTIENTROPY_ADS,
    protocol.FEDERATION_JOIN,
    protocol.FEDERATION_JOIN_ACK,
    # Sharded-federation quorum traffic: a pre-crash write or ack from a
    # replica's previous incarnation must not land after recovery.
    protocol.SHARD_STORE,
    protocol.SHARD_STORE_ACK,
    protocol.SHARD_RENEW,
    protocol.SHARD_RENEW_ACK,
    protocol.SHARD_REMOVE,
    protocol.SHARD_REMOVE_ACK,
    protocol.SHARD_TRANSFER,
})

#: WAL/snapshot file names on the per-node disk.
WAL_FILE = "wal"
SNAPSHOT_FILE = "snap"
META_FILE = "meta"

#: Sanity bound on a single framed record; a length prefix beyond this
#: means the framing itself was destroyed and the rest of the log is
#: unparseable (dropped as a corrupt tail).
_MAX_RECORD = 1 << 24


@dataclass(frozen=True)
class DurabilityConfig:
    """Per-deployment durability tunables.

    The default (``enabled=False``) is fully inert — behavior- and
    byte-identical to a deployment without durability, like the inert
    defaults of :class:`~repro.core.admission.AdmissionPolicy` and
    :class:`~repro.core.routing.RoutingConfig`.
    """

    #: Master switch. Off: no disk attached, no WAL, no headers.
    enabled: bool = False
    #: Seconds between periodic compacting snapshots; ``None`` disables
    #: the periodic task (snapshots still happen on the record cap and
    #: at recovery).
    snapshot_interval: float | None = 30.0
    #: Compact as soon as this many WAL records accumulated since the
    #: last snapshot; ``None`` disables the count trigger.
    max_wal_records: int | None = 512
    #: Root directory for the real-file backend. ``None`` (default)
    #: uses the network's in-memory :class:`~repro.netsim.disk.SimDisk`;
    #: a path stores each node's files under ``<directory>/<node_id>/``.
    directory: str | None = None

    def __post_init__(self) -> None:
        if self.snapshot_interval is not None and self.snapshot_interval <= 0:
            raise ReproError(
                f"snapshot_interval must be positive or None, "
                f"got {self.snapshot_interval}"
            )
        if self.max_wal_records is not None and self.max_wal_records < 1:
            raise ReproError(
                f"max_wal_records must be >= 1 or None, got {self.max_wal_records}"
            )


class FileDisk:
    """Real-filesystem backend implementing the SimDisk storage port.

    One directory per node; each named blob is a file. Provides the same
    fault-injection operations as :class:`~repro.netsim.disk.SimDisk` so
    recovery tests run identically against both backends.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._last_write: dict[str, int] = {}
        self.torn_writes = 0
        self.corruptions = 0

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def read(self, name: str) -> bytes | None:
        try:
            with open(self._path(name), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def write(self, name: str, data: bytes) -> None:
        # Atomic replace so a crash mid-rewrite never leaves a half
        # snapshot: the old file stays intact until the rename.
        tmp = self._path(name) + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, self._path(name))
        self._last_write[name] = len(data)

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as fh:
            fh.write(data)
        self._last_write[name] = len(data)

    def delete(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass
        self._last_write.pop(name, None)

    def names(self) -> list[str]:
        return sorted(
            n for n in os.listdir(self.directory)
            if not n.endswith(".tmp")
        )

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except OSError:
            return 0

    def tear_tail(self, name: str) -> int:
        data = self.read(name)
        if not data:
            return 0
        last = self._last_write.get(name) or len(data)
        cut = min(len(data), max(1, (last + 1) // 2))
        self.write(name, data[: len(data) - cut])
        self.torn_writes += 1
        return cut

    def corrupt(self, name: str) -> bool:
        data = self.read(name)
        if not data:
            return False
        mid = len(data) // 2
        self.write(name, data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:])
        self.corruptions += 1
        return True


# -- record framing -----------------------------------------------------------

def frame_record(payload_obj: Any) -> bytes:
    """Serialize one record as ``[length:4][crc32:4][pickle payload]``."""
    payload = pickle.dumps(payload_obj)
    return struct.pack("<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF) \
        + payload


def scan_records(data: bytes | None) -> tuple[list[Any], int, bool]:
    """Parse framed records; never raises.

    Returns ``(records, corrupt_skipped, torn)``:

    * a frame whose payload fails its CRC (or does not unpickle) is
      *skipped and counted* — the scan resumes at the next frame;
    * an incomplete final frame (torn tail write) or a destroyed length
      prefix stops the scan (``torn=True``) — everything before it is
      kept, everything after is unparseable.
    """
    records: list[Any] = []
    corrupt = 0
    torn = False
    if not data:
        return records, corrupt, torn
    offset, total = 0, len(data)
    while offset < total:
        if total - offset < 8:
            torn = True
            break
        length, crc = struct.unpack_from("<II", data, offset)
        if length > _MAX_RECORD:
            corrupt += 1
            torn = True
            break
        if offset + 8 + length > total:
            torn = True
            break
        payload = data[offset + 8: offset + 8 + length]
        offset += 8 + length
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            corrupt += 1
            continue
        try:
            records.append(pickle.loads(payload))
        except Exception:
            corrupt += 1
    return records, corrupt, torn


# -- the manager --------------------------------------------------------------

class DurabilityManager:
    """WAL + snapshot persistence and recovery for one registry.

    Record shapes (pickled tuples, tagged by their first element):

    * ``("store", ad, lease_id, duration, expires_at, origin_epoch)`` —
      an advertisement entered or refreshed the store (publish, replica
      absorb); carries the lease coordinates so recovery can restore the
      *original* lease id and expiry (services keep renewing the same
      lease across the outage — zero re-publish traffic).
    * ``("renew", ad_id, expires_at, origin_epoch)`` — a lease renewal
      (much smaller than re-logging the advertisement).
    * ``("remove", ad_id, version, noted_at)`` — an explicit removal;
      replayed as a tombstone so recovery cannot resurrect it.
    * ``("expire", ad_id)`` — the purge task dropped a lapsed lease.

    The snapshot file holds one framed ``("snapshot", entries,
    tombstones, taken_at)`` record; the meta file one framed
    ``("meta", incarnation)`` record.
    """

    def __init__(self, registry: "RegistryNode", config: DurabilityConfig) -> None:
        self.registry = registry
        self.config = config
        #: Persisted restart counter ("which life of this registry"),
        #: bumped on every recovery and carried on replication traffic
        #: so peers can fence stale pre-crash writes.
        self.incarnation = 0
        self.wal_appends = 0
        self.replayed = 0
        self.corrupt_skipped = 0
        self.recoveries = 0
        self.snapshots = 0
        self.fenced = 0
        self._records_since_snapshot = 0
        self._port: Any = None
        self._meta_loaded = False

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def port(self) -> Any:
        """The storage backend for this node (resolved lazily)."""
        if self._port is None:
            if self.config.directory is not None:
                self._port = FileDisk(
                    os.path.join(self.config.directory, self.registry.node_id)
                )
            else:
                self._port = self.registry.network.disk(self.registry.node_id)
        return self._port

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Load persisted meta and arm the periodic snapshot (if enabled)."""
        if not self.enabled:
            return
        if not self._meta_loaded:
            self._meta_loaded = True
            records, _corrupt, _torn = scan_records(self.port().read(META_FILE))
            for record in records:
                if record and record[0] == "meta":
                    self.incarnation = max(self.incarnation, int(record[1]))
        if self.config.snapshot_interval is not None:
            self.registry.every(self.config.snapshot_interval, self.snapshot)

    def discard(self) -> None:
        """Drop persisted store state (a standby giving up the role).

        The incarnation meta survives: the *next* promotion of this node
        must still fence any stragglers from its previous active life.
        """
        if not self.enabled:
            return
        port = self.port()
        port.write(WAL_FILE, b"")
        port.write(SNAPSHOT_FILE, b"")
        self._records_since_snapshot = 0

    # -- logging (called by the registry on every store mutation) ----------

    def _append(self, record: tuple) -> None:
        self.port().append(WAL_FILE, frame_record(record))
        self.wal_appends += 1
        self._records_since_snapshot += 1
        if self.registry.network is not None:
            self.registry.network.metrics.counter("durability.wal_appends").inc()
        if (
            self.config.max_wal_records is not None
            and self._records_since_snapshot >= self.config.max_wal_records
        ):
            self.snapshot()

    def log_store(
        self,
        ad: Any,
        *,
        lease_id: str,
        duration: float,
        expires_at: float,
        origin_epoch: int,
    ) -> None:
        """An advertisement was stored or refreshed (publish/absorb)."""
        if self.enabled:
            self._append(
                ("store", ad, lease_id, duration, expires_at, origin_epoch)
            )

    def log_renew(self, ad_id: str, *, expires_at: float, origin_epoch: int) -> None:
        """A lease renewal extended an advertisement's expiry."""
        if self.enabled:
            self._append(("renew", ad_id, expires_at, origin_epoch))

    def log_remove(self, ad_id: str, version: int) -> None:
        """An advertisement was explicitly removed (tombstoned)."""
        if self.enabled:
            self._append(("remove", ad_id, version, self.registry.sim.now))

    def log_expire(self, ad_id: str) -> None:
        """The purge task dropped an advertisement whose lease lapsed."""
        if self.enabled:
            self._append(("expire", ad_id))

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> None:
        """Write a full-state snapshot and truncate the WAL (compaction)."""
        if not self.enabled:
            return
        registry = self.registry
        entries = []
        for ad in sorted(registry.store.all(), key=lambda a: a.ad_id):
            lease_id = ""
            duration = self.registry.config.lease_duration
            expires_at = float("inf")
            if registry.config.leasing_enabled and registry.leases is not None:
                lease = registry.leases.lease_for_ad(ad.ad_id)
                if lease is None:
                    # Lease already lapsed but the purge sweep has not
                    # run yet; the snapshot must not immortalize the ad.
                    continue
                lease_id = lease.lease_id
                duration = lease.duration
                expires_at = lease.expires_at
            entries.append(
                (ad, lease_id, duration, expires_at,
                 registry.antientropy.epochs.get(ad.ad_id, 0))
            )
        record = (
            "snapshot",
            tuple(entries),
            dict(registry.antientropy.tombstones),
            registry.sim.now,
        )
        port = self.port()
        # Snapshot first, then truncate: a crash between the two leaves
        # the old WAL alongside the new snapshot, and replaying those
        # records over the snapshotted state is idempotent.
        port.write(SNAPSHOT_FILE, frame_record(record))
        port.write(WAL_FILE, b"")
        self._records_since_snapshot = 0
        self.snapshots += 1
        if registry.network is not None:
            registry.network.metrics.counter("durability.snapshots").inc()

    # -- recovery ----------------------------------------------------------

    def _load_state(self) -> tuple[dict, dict, int]:
        """Replay snapshot+WAL into ``(ads, tombstones, corrupt)``.

        ``ads`` maps ad_id to ``[ad, lease_id, duration, expires_at,
        origin_epoch]``; ``tombstones`` maps ad_id to ``(version,
        noted_at)``.
        """
        port = self.port()
        ads: dict[str, list] = {}
        tombstones: dict[str, tuple[int, float]] = {}
        corrupt = 0

        snap_records, snap_corrupt, _torn = scan_records(port.read(SNAPSHOT_FILE))
        corrupt += snap_corrupt
        for record in snap_records:
            if not record or record[0] != "snapshot":
                corrupt += 1
                continue
            _tag, entries, snap_tombs, _taken_at = record
            for ad, lease_id, duration, expires_at, origin_epoch in entries:
                ads[ad.ad_id] = [ad, lease_id, duration, expires_at, origin_epoch]
            tombstones.update(snap_tombs)

        wal_records, wal_corrupt, _torn = scan_records(port.read(WAL_FILE))
        corrupt += wal_corrupt
        for record in wal_records:
            tag = record[0] if record else None
            if tag == "store":
                _tag, ad, lease_id, duration, expires_at, origin_epoch = record
                ads[ad.ad_id] = [ad, lease_id, duration, expires_at, origin_epoch]
                tombstones.pop(ad.ad_id, None)
            elif tag == "renew":
                _tag, ad_id, expires_at, origin_epoch = record
                entry = ads.get(ad_id)
                if entry is not None:
                    entry[3] = expires_at
                    entry[4] = max(entry[4], origin_epoch)
            elif tag == "remove":
                _tag, ad_id, version, noted_at = record
                ads.pop(ad_id, None)
                tombstones[ad_id] = (version, noted_at)
            elif tag == "expire":
                ads.pop(record[1], None)
            else:
                corrupt += 1
        return ads, tombstones, corrupt

    def recover(self) -> dict[str, int] | None:
        """Replay persisted state into the (freshly started) registry.

        Must run *after* :meth:`RegistryNode.start` re-created the lease
        manager and scheduled the seed joins: the joins' acks arrive as
        later events, so by the time the join-time anti-entropy digest
        fires, the store is already warm and the digest exchange is a
        pure delta repair round. Leases that expired in simulated time
        while the registry was down are dropped (with their ads) rather
        than resurrected. Bumps and persists the incarnation epoch so
        peers fence this registry's stale pre-crash messages.
        """
        if not self.enabled:
            return None
        registry = self.registry
        trace = registry.trace
        span = None
        if trace is not None:
            span = trace.start_span(
                "registry.recover", node=registry.node_id,
                attrs={"incarnation": self.incarnation + 1},
            )
        ads, tombstones, corrupt = self._load_state()
        now = registry.sim.now
        replayed = 0
        dropped_expired = 0
        for ad_id in sorted(ads):
            ad, lease_id, duration, expires_at, origin_epoch = ads[ad_id]
            if registry.config.leasing_enabled and expires_at <= now:
                dropped_expired += 1
                continue
            registry.store.put(ad)
            registry.antientropy.note_stored(ad_id, origin_epoch)
            if (
                registry.config.leasing_enabled
                and registry.leases is not None
                and lease_id
            ):
                registry.leases.restore(
                    ad_id, lease_id=lease_id, duration=duration,
                    expires_at=expires_at,
                )
            replayed += 1
        for ad_id in sorted(tombstones):
            registry.antientropy.tombstones[ad_id] = tombstones[ad_id]

        self.incarnation += 1
        self.recoveries += 1
        self.replayed += replayed
        self.corrupt_skipped += corrupt
        self.port().write(META_FILE, frame_record(("meta", self.incarnation)))
        # Compact immediately: recovery itself is the best snapshot point.
        self.snapshot()

        counts = {
            "replayed": replayed,
            "dropped_expired": dropped_expired,
            "corrupt_skipped": corrupt,
            "tombstones": len(tombstones),
            "incarnation": self.incarnation,
        }
        if registry.network is not None:
            metrics = registry.network.metrics
            metrics.counter("durability.replayed").inc(replayed)
            if corrupt:
                metrics.counter("durability.corrupt_skipped").inc(corrupt)
            registry.network.stats.record_recovery("durability-recover")
        if trace is not None and span is not None:
            trace.end_span(span, attrs=dict(counts))
        return counts

    # -- fencing -----------------------------------------------------------

    def stamp(self, headers: dict[str, Any] | None) -> dict[str, Any]:
        """Add the incarnation header to an outgoing fenced message."""
        out = dict(headers or {})
        out.setdefault(INCARNATION_HEADER, self.incarnation)
        return out

    # -- reporting ---------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Durability counters for experiment rows."""
        return {
            "wal_appends": self.wal_appends,
            "replayed": self.replayed,
            "corrupt_skipped": self.corrupt_skipped,
            "recoveries": self.recoveries,
            "snapshots": self.snapshots,
            "fenced": self.fenced,
            "incarnation": self.incarnation,
        }
