"""repro — semantic service discovery in dynamic environments.

A complete implementation and experimental reproduction of:

    T. Gagnes, T. Plagemann, E. Munthe-Kaas. "A Conceptual Service
    Discovery Architecture for Semantic Web Services in Dynamic
    Environments." SeNS Workshop, ICDE Workshops, 2006.

Quickstart::

    from repro import DiscoverySystem, ServiceProfile, ServiceRequest
    from repro.semantics import emergency_ontology

    system = DiscoverySystem(seed=1, ontology=emergency_ontology())
    system.add_lan("field-hq")
    system.add_registry("field-hq")
    system.add_service("field-hq", ServiceProfile.build(
        "medevac", "ems:AmbulanceDispatchService",
        outputs=["ems:UnitLocation"]))
    client = system.add_client("field-hq")
    system.run(until=2.0)
    call = system.discover(client, ServiceRequest.build(
        "ems:MedicalService", outputs=["ems:Location"]))
    print(call.service_names())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-claim vs measured results.
"""

from repro.core import (
    ClientNode,
    DiscoveryCall,
    DiscoveryConfig,
    DiscoverySystem,
    MediationPlanner,
    RegistryNode,
    RetryPolicy,
    ServiceNode,
    StandbyRegistry,
    Watch,
    assert_invariants,
    check_invariants,
    make_models,
)
from repro.netsim import FaultPlan
from repro.semantics import (
    Matchmaker,
    Ontology,
    Reasoner,
    ServiceProfile,
    ServiceRequest,
)

__version__ = "1.0.0"

__all__ = [
    "ClientNode",
    "DiscoveryCall",
    "DiscoveryConfig",
    "DiscoverySystem",
    "FaultPlan",
    "Matchmaker",
    "MediationPlanner",
    "Ontology",
    "Reasoner",
    "RegistryNode",
    "RetryPolicy",
    "StandbyRegistry",
    "Watch",
    "ServiceNode",
    "ServiceProfile",
    "ServiceRequest",
    "assert_invariants",
    "check_invariants",
    "make_models",
    "__version__",
]
