"""Scenario builders: populate a discovery deployment from a spec.

A :class:`ScenarioSpec` fixes the topology (LANs, registries per LAN,
services per LAN, clients per LAN), the ontology, and the federation
shape; :func:`build_scenario` instantiates it onto any
:class:`~repro.core.DiscoverySystem`-compatible class so the same workload
runs unchanged on the paper's architecture and on every baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.config import DiscoveryConfig
from repro.core.system import ALL_MODEL_IDS, DiscoverySystem
from repro.errors import WorkloadError
from repro.semantics.generator import ProfileGenerator, battlefield_ontology, emergency_ontology
from repro.semantics.ontology import Ontology
from repro.semantics.profiles import ServiceProfile


@dataclass(frozen=True)
class ScenarioSpec:
    """A reproducible deployment description.

    ``federation`` selects how WAN seeding wires the registries:
    ``"chain"``, ``"ring"``, ``"mesh"``, or ``"none"``.
    """

    name: str
    lan_names: tuple[str, ...]
    ontology_factory: Callable[[], Ontology]
    registries_per_lan: int = 1
    services_per_lan: int = 4
    clients_per_lan: int = 1
    federation: str = "ring"
    model_ids: tuple[str, ...] = ALL_MODEL_IDS
    seed: int = 0

    def total_services(self) -> int:
        return self.services_per_lan * len(self.lan_names)


@dataclass
class BuiltScenario:
    """The instantiated deployment plus its workload materials."""

    spec: ScenarioSpec
    system: DiscoverySystem
    ontology: Ontology
    generator: ProfileGenerator
    profiles: list[ServiceProfile] = field(default_factory=list)

    @property
    def clients(self):
        return self.system.clients

    @property
    def services(self):
        return self.system.services

    @property
    def registries(self):
        return self.system.registries

    def profile_of(self, service_name: str) -> ServiceProfile:
        """Look up a generated profile by its service name."""
        for profile in self.profiles:
            if profile.service_name == service_name:
                return profile
        raise WorkloadError(f"unknown service {service_name!r}")


def build_scenario(
    spec: ScenarioSpec,
    *,
    system: DiscoverySystem | None = None,
    config: DiscoveryConfig | None = None,
    loss_rate: float = 0.0,
    with_registries: bool = True,
) -> BuiltScenario:
    """Instantiate a spec onto a (possibly baseline) system.

    Passing ``system`` reuses a pre-built (baseline) deployment whose LANs
    are not yet created; otherwise a fresh
    :class:`~repro.core.DiscoverySystem` is created. ``with_registries``
    disabled gives the pure decentralized topology (E1).
    """
    ontology = spec.ontology_factory()
    if system is None:
        system = DiscoverySystem(
            seed=spec.seed, config=config, ontology=ontology, loss_rate=loss_rate
        )
    generator = ProfileGenerator(ontology, seed=spec.seed)
    built = BuiltScenario(spec=spec, system=system, ontology=ontology, generator=generator)

    for lan in spec.lan_names:
        if lan not in system.network.lans:
            system.add_lan(lan)
    if with_registries:
        for lan in spec.lan_names:
            for _ in range(spec.registries_per_lan):
                system.add_registry(lan, model_ids=spec.model_ids)
        _federate(system, spec.federation)

    index = 0
    for lan in spec.lan_names:
        for _ in range(spec.services_per_lan):
            profile = generator.random_profile(index, provider=lan)
            built.profiles.append(profile)
            system.add_service(lan, profile, model_ids=spec.model_ids)
            index += 1
    for lan in spec.lan_names:
        for _ in range(spec.clients_per_lan):
            system.add_client(lan, model_ids=spec.model_ids)
    return built


def _federate(system: DiscoverySystem, shape: str) -> None:
    """Seed WAN links between the LAN gateways (first registry per LAN)."""
    if shape == "none" or len(system.registries) < 2:
        return
    # One representative per LAN: the registry with the lowest id there —
    # intra-LAN peers find each other by multicast and need no seeding.
    by_lan: dict[str, list] = {}
    for registry in system.registries:
        by_lan.setdefault(registry.lan_name or "", []).append(registry)
    gateways = [min(group, key=lambda r: r.node_id) for _lan, group in sorted(by_lan.items())]
    if shape == "chain":
        system.federate_chain(gateways)
    elif shape == "ring":
        system.federate_ring(gateways)
    elif shape == "mesh":
        system.federate_mesh(gateways)
    else:
        raise WorkloadError(f"unknown federation shape {shape!r}")


def crisis_scenario(
    *,
    agencies: int = 4,
    services_per_lan: int = 4,
    clients_per_lan: int = 1,
    registries_per_lan: int = 1,
    federation: str = "ring",
    seed: int = 0,
) -> ScenarioSpec:
    """The §1 crisis-management scenario.

    "Members from several agencies, potentially at different locations,
    have to cooperate … These members carry with them various devices
    that spontaneously form a network where application layer services
    are offered." Each agency is one LAN.
    """
    names = ("medical", "fire", "police", "logistics", "sar", "command",
             "shelter", "transport")
    if agencies < 1 or agencies > len(names):
        raise WorkloadError(f"agencies must be in 1..{len(names)}, got {agencies}")
    return ScenarioSpec(
        name="crisis",
        lan_names=tuple(f"agency-{n}" for n in names[:agencies]),
        ontology_factory=emergency_ontology,
        registries_per_lan=registries_per_lan,
        services_per_lan=services_per_lan,
        clients_per_lan=clients_per_lan,
        federation=federation,
        seed=seed,
    )


def battlefield_scenario(
    *,
    units: int = 4,
    services_per_lan: int = 5,
    clients_per_lan: int = 2,
    registries_per_lan: int = 1,
    federation: str = "chain",
    seed: int = 0,
) -> ScenarioSpec:
    """The network-centric battlefield scenario (MILCOM companion paper).

    Each tactical unit runs its own LAN (e.g. a company network); the
    chain federation default matches the paper's observation that "a
    hybrid topology probably maps best to a military organization".
    """
    if units < 1 or units > 26:
        raise WorkloadError(f"units must be in 1..26, got {units}")
    return ScenarioSpec(
        name="battlefield",
        lan_names=tuple(f"unit-{chr(ord('a') + i)}" for i in range(units)),
        ontology_factory=battlefield_ontology,
        registries_per_lan=registries_per_lan,
        services_per_lan=services_per_lan,
        clients_per_lan=clients_per_lan,
        federation=federation,
        seed=seed,
    )
