"""Service churn: the defining property of a dynamic environment.

Thin orchestration over :class:`~repro.netsim.failures.ChurnProcess`
aimed at service nodes, plus helpers the staleness experiments need: the
set of services alive at any instant, and the crash history.
"""

from __future__ import annotations

from repro.core.service_node import ServiceNode
from repro.core.system import DiscoverySystem
from repro.netsim.failures import ChurnProcess


class ServiceChurn:
    """Poisson churn over the service nodes of a deployment.

    Parameters
    ----------
    system:
        The deployment whose services churn.
    rate:
        Expected service crashes per second.
    mean_downtime:
        Mean seconds a crashed service stays down; ``permanent=True``
        makes departures final (nodes "disappear abruptly").
    """

    def __init__(
        self,
        system: DiscoverySystem,
        *,
        rate: float,
        mean_downtime: float = 60.0,
        permanent: bool = False,
    ) -> None:
        self.system = system
        self.process = ChurnProcess(
            system.sim,
            system.network,
            [service.node_id for service in system.services],
            rate=rate,
            mean_downtime=mean_downtime,
            permanent=permanent,
        )

    def start(self) -> "ServiceChurn":
        """Begin churning."""
        self.process.start()
        return self

    def stop(self) -> None:
        """Stop generating crashes (pending restarts still fire)."""
        self.process.stop()

    def alive_service_names(self) -> frozenset[str]:
        """Names of the services whose nodes are currently up."""
        return frozenset(
            service.profile.service_name
            for service in self.system.services
            if service.alive
        )

    def dead_service_names(self) -> frozenset[str]:
        """Names of the services whose nodes are currently down."""
        return frozenset(
            service.profile.service_name
            for service in self.system.services
            if not service.alive
        )

    def crash_count(self) -> int:
        """Crashes generated so far."""
        return self.process.crashes()
