"""Workload generation: scenarios, churn, and query drivers.

The paper motivates the architecture with two concrete dynamic
environments — a multi-agency crisis-management operation (§1) and the
network-centric battlefield (the MILCOM companion paper). Neither has
public traces, so this package generates synthetic but structurally
faithful workloads:

* :mod:`~repro.workloads.scenarios` — deployment builders populating a
  :class:`~repro.core.DiscoverySystem` (or a baseline system) with LANs,
  registries, services drawn from a domain ontology, and clients.
* :mod:`~repro.workloads.churn` — service/registry transience over time.
* :mod:`~repro.workloads.queries` — timed query workloads with
  ontology-derived ground-truth relevance for recall/precision metrics.
"""

from repro.workloads.scenarios import (
    ScenarioSpec,
    battlefield_scenario,
    build_scenario,
    crisis_scenario,
)
from repro.workloads.churn import ServiceChurn
from repro.workloads.queries import QueryDriver, QueryWorkload
from repro.workloads.trace import DynamicsTrace, TraceEvent

__all__ = [
    "DynamicsTrace",
    "QueryDriver",
    "QueryWorkload",
    "ScenarioSpec",
    "ServiceChurn",
    "TraceEvent",
    "battlefield_scenario",
    "build_scenario",
    "crisis_scenario",
]
