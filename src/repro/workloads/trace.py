"""Recorded dynamics traces: identical transience across architectures.

Comparing architectures under churn is only fair if every architecture
sees the *same* crashes at the same instants. Seeding the churn process
identically is not quite enough — different architectures consume the
simulator RNG differently, so the realized event sequences drift apart.

A :class:`DynamicsTrace` fixes the dynamics independently of any
simulator: it is a plain list of timed operations against *service
indexes* (position in the deployment's service list), generated once from
its own RNG and then applied verbatim to any number of deployments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.system import DiscoverySystem
from repro.errors import WorkloadError

#: Supported operations.
OP_CRASH = "crash"
OP_RESTART = "restart"
OP_MOVE = "move"


@dataclass(frozen=True)
class TraceEvent:
    """One timed operation against the service at ``index``."""

    time: float
    op: str
    index: int
    lan: str = ""  # target LAN for moves


@dataclass
class DynamicsTrace:
    """A reproducible sequence of service-population dynamics."""

    events: list[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @staticmethod
    def churn(
        *,
        n_services: int,
        rate: float,
        window: float,
        seed: int = 0,
        mean_downtime: float | None = None,
        start: float = 0.0,
    ) -> "DynamicsTrace":
        """Poisson crash trace over ``n_services`` indexes.

        ``mean_downtime=None`` makes crashes permanent; otherwise each
        crash schedules an exponential-downtime restart.
        """
        if n_services < 1:
            raise WorkloadError("churn trace needs at least one service")
        if rate <= 0:
            raise WorkloadError(f"churn rate must be positive, got {rate}")
        rng = random.Random(seed)
        events: list[TraceEvent] = []
        down: set[int] = set()
        now = start
        while True:
            now += rng.expovariate(rate)
            if now >= start + window:
                break
            alive = [i for i in range(n_services) if i not in down]
            if not alive:
                continue
            victim = rng.choice(alive)
            events.append(TraceEvent(time=now, op=OP_CRASH, index=victim))
            if mean_downtime is None:
                down.add(victim)
            else:
                back = now + rng.expovariate(1.0 / mean_downtime)
                if back < start + window:
                    events.append(TraceEvent(time=back, op=OP_RESTART,
                                             index=victim))
                else:
                    down.add(victim)
        events.sort(key=lambda e: (e.time, e.index, e.op))
        return DynamicsTrace(events=events)

    @staticmethod
    def roaming(
        *,
        n_services: int,
        lans: tuple[str, ...],
        interval: float,
        window: float,
        seed: int = 0,
        start: float = 0.0,
    ) -> "DynamicsTrace":
        """Periodic roaming trace: every ``interval``, one service moves."""
        if len(lans) < 2:
            raise WorkloadError("roaming needs at least two LANs")
        rng = random.Random(seed)
        events = []
        ticks = int(window / interval)
        for tick in range(1, ticks + 1):
            index = rng.randrange(n_services)
            lan = rng.choice(lans)
            events.append(TraceEvent(time=start + tick * interval,
                                     op=OP_MOVE, index=index, lan=lan))
        return DynamicsTrace(events=events)

    # -- application -------------------------------------------------------

    def apply(self, system: DiscoverySystem) -> None:
        """Schedule every event against ``system``'s current service list.

        Call after all services are added; the trace indexes into
        ``system.services`` positionally, so two deployments built from
        the same scenario spec receive byte-identical dynamics.
        """
        services = list(system.services)
        for event in self.events:
            if event.index >= len(services):
                raise WorkloadError(
                    f"trace index {event.index} out of range "
                    f"({len(services)} services)"
                )
            service = services[event.index]
            if event.op == OP_CRASH:
                system.sim.schedule_at(event.time, service.crash)
            elif event.op == OP_RESTART:
                system.sim.schedule_at(event.time, service.restart)
            elif event.op == OP_MOVE:
                lan = event.lan

                def move(service=service, lan=lan) -> None:
                    if service.alive and lan in system.network.lans:
                        system.move(service, lan)

                system.sim.schedule_at(event.time, move)
            else:
                raise WorkloadError(f"unknown trace op {event.op!r}")

    def dead_indexes(self, at: float) -> frozenset[int]:
        """Service indexes down at time ``at`` according to the trace."""
        down: set[int] = set()
        for event in self.events:
            if event.time > at:
                break
            if event.op == OP_CRASH:
                down.add(event.index)
            elif event.op == OP_RESTART:
                down.discard(event.index)
        return frozenset(down)

    def crash_count(self) -> int:
        """Total crash events in the trace."""
        return sum(1 for e in self.events if e.op == OP_CRASH)
