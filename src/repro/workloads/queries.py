"""Query workloads: timed discovery requests with ground truth.

A :class:`QueryWorkload` is a fixed list of labelled requests (request +
the ontology-derived set of relevant service names); a
:class:`QueryDriver` plays a workload against a deployment — issuing each
query from a deterministic-randomly chosen client at a steady rate — and
collects the completed :class:`~repro.core.DiscoveryCall` handles for the
metrics layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.client_node import ClientNode, DiscoveryCall
from repro.core.system import DiscoverySystem
from repro.errors import WorkloadError
from repro.semantics.generator import LabelledRequest, ProfileGenerator
from repro.semantics.matchmaker import DegreeOfMatch
from repro.semantics.profiles import ServiceProfile, ServiceRequest


@dataclass
class QueryWorkload:
    """A reproducible list of labelled discovery requests."""

    labelled: list[LabelledRequest]

    def __len__(self) -> int:
        return len(self.labelled)

    def requests(self) -> list[ServiceRequest]:
        return [item.request for item in self.labelled]

    @staticmethod
    def anchored(
        generator: ProfileGenerator,
        profiles: list[ServiceProfile],
        count: int,
        *,
        generalize: int = 1,
        min_degree: DegreeOfMatch = DegreeOfMatch.SUBSUMES,
        max_results: int | None = None,
    ) -> "QueryWorkload":
        """Requests anchored at random deployed profiles (always satisfiable).

        ``max_results`` applies the response-control cap to every request.
        """
        if not profiles:
            raise WorkloadError("cannot anchor queries on an empty profile set")
        labelled = generator.labelled_requests(
            profiles, count, generalize=generalize, min_degree=min_degree
        )
        if max_results is not None:
            labelled = [
                LabelledRequest(
                    request=ServiceRequest(
                        category=item.request.category,
                        desired_outputs=item.request.desired_outputs,
                        provided_inputs=item.request.provided_inputs,
                        qos_constraints=item.request.qos_constraints,
                        keywords=item.request.keywords,
                        max_results=max_results,
                    ),
                    relevant=item.relevant,
                )
                for item in labelled
            ]
        return QueryWorkload(labelled=labelled)


@dataclass
class IssuedQuery:
    """One query as played: the call handle plus its ground truth."""

    call: DiscoveryCall
    relevant: frozenset[str]
    client: str
    issued_at: float


@dataclass
class QueryDriver:
    """Plays a workload against a deployment at a steady rate.

    Queries are issued round-interval apart, each from a client chosen
    with the *driver's own* seeded RNG (so the schedule does not perturb
    the simulator's RNG stream and stays comparable across architectures).
    """

    system: DiscoverySystem
    workload: QueryWorkload
    model_id: str = "semantic"
    interval: float = 1.0
    seed: int = 0
    issued: list[IssuedQuery] = field(default_factory=list)

    def play(self, *, clients: list[ClientNode] | None = None,
             settle: float = 2.0, drain: float = 10.0) -> list[IssuedQuery]:
        """Issue every request, then run until all calls complete.

        ``settle`` seconds run first so bootstrap (probes, publishes)
        finishes; ``drain`` seconds of slack run after the last issue.
        Returns the issued queries, completed or not.
        """
        pool = clients if clients is not None else self.system.clients
        if not pool:
            raise WorkloadError("deployment has no clients to query from")
        rng = random.Random(self.seed)
        sim = self.system.sim
        self.system.run(until=sim.now + settle)
        for index, item in enumerate(self.workload.labelled):
            client = pool[rng.randrange(len(pool))]
            when = sim.now + index * self.interval

            def issue(client=client, item=item) -> None:
                if not client.alive:
                    return
                call = client.discover(item.request, model_id=self.model_id)
                self.issued.append(
                    IssuedQuery(
                        call=call,
                        relevant=item.relevant,
                        client=client.node_id,
                        issued_at=sim.now,
                    )
                )

            sim.schedule_at(when, issue)
        sim.run(until=sim.now + len(self.workload.labelled) * self.interval + drain)
        return self.issued

    def completed(self) -> list[IssuedQuery]:
        """The issued queries whose calls completed."""
        return [q for q in self.issued if q.call.completed]
